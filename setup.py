"""Packaging entry point.

The environment used for development has no ``wheel`` package available
offline, so PEP 660 editable installs (``pip install -e .`` with build
isolation) cannot build the editable wheel.  This classic setuptools file
keeps the ``pip install -e . --no-build-isolation --no-use-pep517`` path
(setuptools ``develop``) working and declares the runtime dependencies:
``networkx`` for topology/routing graphs and ``numpy`` for the batched
structure-of-arrays simulation engine (:mod:`repro.perf.batch_engine`;
imported lazily, so every other engine works without it).
"""

from setuptools import find_packages, setup

setup(
    name="noc-deadlock",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=[
        "networkx",
        "numpy",
    ],
)
