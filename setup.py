"""Setup shim.

The environment used for development has no ``wheel`` package available
offline, so PEP 660 editable installs (``pip install -e .`` with build
isolation) cannot build the editable wheel.  This shim lets the classic
``pip install -e . --no-build-isolation --no-use-pep517`` path (setuptools
``develop``) work; all project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
