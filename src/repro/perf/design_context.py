"""Per-design cache of expensive derived routing/removal state.

Every stage of the pipeline derives the same handful of structures from a
:class:`~repro.model.design.NocDesign` — the int-relabelled
:class:`~repro.perf.route_engine.SwitchGraph`, the up*/down* BFS
levels/orientation, the interned channel table and the per-flow channel-id
arrays — and before this module each call site rebuilt them from scratch:
every ``compute_routes`` call built a fresh ``SwitchGraph``, every up*/down*
ablation re-derived the orientation, and every cycle break re-scanned the
route set with tuple-of-dataclass comparisons.

:class:`DesignContext` owns that state once per design and keeps it alive
across the many routing and cycle-break iterations of a removal run,
applying *deltas* for the mutations the removal algorithm performs instead
of rebuilding (mirroring how :class:`~repro.perf.cdg_index.CDGIndex`
already treats the CDG):

* duplicating a channel as an extra **VC** changes no physical link, so the
  switch graph survives untouched and only the new channel is interned;
* duplicating a channel as a parallel **physical link** appends one link to
  the switch graph in place (:meth:`SwitchGraph.add_link`), preserving the
  traversal order the routing tie-break depends on;
* re-routing a flow replaces its channel-id array and applies the route
  delta to the underlying :class:`CDGIndex`.

Out-of-band topology edits (anything that changes the link set without
going through :meth:`notify_link_added`) are caught by a cheap link-count
staleness check and answered with a full rebuild, so a stale context can
never serve wrong routes — the context-invalidation tests assert exactly
that.

Contexts attach to the design instance (:meth:`DesignContext.of`), so every
caller holding the same design object shares one context, and
``design.copy()`` — which creates a fresh instance — naturally starts from
a clean slate.  Module-level :data:`counters` aggregate build/reuse events
across all contexts; the benchmark harness reads them to fail loudly when a
code change silently stops reusing cached state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.model.channels import Channel, Link
from repro.model.design import NocDesign
from repro.model.routes import Route
from repro.perf.cdg_index import CDGIndex
from repro.perf.cost_index import CycleCostEngine
from repro.perf.route_engine import IndexedRouter, SwitchGraph

#: Attribute name the per-design context is cached under on the design.
_CONTEXT_ATTR = "_design_context"


@dataclass
class ContextCounters:
    """Build/reuse statistics, aggregated over all :class:`DesignContext`\\ s.

    ``*_builds`` count from-scratch constructions, ``*_reuses`` count cache
    hits and ``graph_deltas`` counts in-place link appends.  The benchmark
    conftest surfaces these so a regression that silently falls back to
    rebuilding per call fails the perf smoke instead of just getting slower.
    """

    contexts_created: int = 0
    contexts_forked: int = 0
    graph_builds: int = 0
    graph_reuses: int = 0
    graph_deltas: int = 0
    updown_builds: int = 0
    updown_reuses: int = 0
    route_deltas: int = 0
    cost_tables_indexed: int = 0
    sim_template_builds: int = 0
    sim_template_reuses: int = 0

    def reset(self) -> None:
        """Zero every counter (one measurement window begins)."""
        for name in self.__dataclass_fields__:
            setattr(self, name, 0)

    def snapshot(self) -> Dict[str, int]:
        """Plain-dict copy of the current counts."""
        return {name: getattr(self, name) for name in self.__dataclass_fields__}


#: Global counters shared by every context (reset via ``counters.reset()``).
counters = ContextCounters()


class DesignContext:
    """Shared routing/removal state for one :class:`NocDesign`.

    Everything is built lazily: a context created for a removal run never
    pays for the up*/down* orientation, and a context created for routing
    never pays for the CDG index.
    """

    def __init__(self, design: NocDesign):
        self.design = design
        counters.contexts_created += 1
        # --- switch graph -------------------------------------------------
        self._graph: Optional[SwitchGraph] = None
        self._graph_link_count: int = -1
        # --- up*/down* state (per resolved root) --------------------------
        self._updown: Dict[str, Tuple[Dict[Link, str], List[bool]]] = {}
        self._updown_link_count: int = -1
        # --- interned routes / CDG ---------------------------------------
        self._cdg: Optional[CDGIndex] = None
        self._cdg_routes_version: int = -1
        self._route_ids: Dict[str, Tuple[int, ...]] = {}
        self._cost_engine: Optional[CycleCostEngine] = None
        # --- compiled-simulation template (set by repro.perf.sim_engine) --
        self.sim_template = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def of(cls, design: NocDesign) -> "DesignContext":
        """The context attached to ``design``, creating it on first use.

        The context is stored on the design instance itself, so distinct
        copies of a design get distinct contexts and the cache dies with
        the design object.
        """
        context = getattr(design, _CONTEXT_ATTR, None)
        if context is None or context.design is not design:
            context = cls(design)
            setattr(design, _CONTEXT_ATTR, context)
        return context

    def fork_to(self, clone_design: NocDesign) -> Optional["DesignContext"]:
        """Seed a fresh context for an identical copy of this design.

        Called by :meth:`repro.model.design.NocDesign.copy`: when the link
        sets are equal and this context holds a CDG index synchronised to
        the source's current routes (which the copy replicates verbatim),
        the copy's context starts from a *cloned* index + id arrays instead
        of rebuilding them from the route set — the per-run rebuild the
        removal engine used to pay on every ``design.copy()``.  Any doubt
        (diverged links, unsynchronised or unbuilt index) returns ``None``
        and the copy lazily builds its own state as before.

        The clone is deep (:meth:`CDGIndex.clone`), so removal mutations on
        the copy never leak back into this context.
        """
        if self._cdg is None or self._cdg_routes_version != self.design.routes.version:
            return None
        if self.design.topology._links != clone_design.topology._links:
            return None
        if len(self.design.routes) != len(clone_design.routes):
            # Cheap sanity token only: the caller contract (copy()) makes the
            # route sets identical, and a deep per-channel comparison here
            # would cancel part of the rebuild savings on the hot path.
            return None
        forked = DesignContext(clone_design)
        forked._cdg = self._cdg.clone()
        forked._route_ids = dict(self._route_ids)
        forked._cdg_routes_version = clone_design.routes.version
        setattr(clone_design, _CONTEXT_ATTR, forked)
        counters.contexts_forked += 1
        return forked

    # ------------------------------------------------------------------
    # switch graph
    # ------------------------------------------------------------------
    def graph(self) -> SwitchGraph:
        """The design's :class:`SwitchGraph`, built once and delta-maintained.

        The graph always comes back with default hop-count weights — a
        previous caller (e.g. a congestion-aware routing pass) may have
        left its weights behind, and handing those to the next caller would
        make routing depend on call history.  Callers needing custom
        weights set them after taking the graph, exactly as with a fresh
        build.

        A mismatch between the recorded and the topology's current link
        count means links were added or removed without
        :meth:`notify_link_added` — the graph is then rebuilt from scratch
        (correctness over cache warmth).
        """
        topology = self.design.topology
        if (
            self._graph is not None
            and self._graph.topology is topology
            and self._graph_link_count == topology.link_count
        ):
            self._graph.set_weights(None)
            counters.graph_reuses += 1
            return self._graph
        self._graph = SwitchGraph(topology)
        self._graph_link_count = topology.link_count
        counters.graph_builds += 1
        return self._graph

    def router(
        self,
        *,
        congestion_factor: float = 0.0,
        total_bandwidth: float = 1.0,
    ) -> IndexedRouter:
        """A congestion-aware :class:`IndexedRouter` over the cached graph.

        The construction point for routing engines on this design: callers
        outside the perf layer take a router from the context instead of
        naming the engine class, so the engine choice and the graph it
        runs on share one owner (and the rest of the tree can honour the
        ``registry-discipline`` lint rule's "no ad-hoc engine
        construction").  Each call returns a fresh router with zeroed
        congestion state over the shared, delta-maintained graph.
        """
        return IndexedRouter(
            self.design.topology,
            congestion_factor=congestion_factor,
            total_bandwidth=total_bandwidth,
            graph=self.graph(),
        )

    def notify_link_added(self, link: Link) -> None:
        """Apply the delta for a link the removal algorithm just added.

        Appends the link to the cached graph in place (when one is built)
        and invalidates the up*/down* caches, whose per-link ``up`` flags
        are positional over the graph's link ids.
        """
        if self._graph is not None and self._graph.topology is self.design.topology:
            self._graph.add_link(link)
            self._graph_link_count = self.design.topology.link_count
            counters.graph_deltas += 1
        self._updown.clear()
        self._updown_link_count = -1

    def notify_topology_changed(self) -> None:
        """Invalidate every structure derived from the physical link set.

        The link-count staleness check in :meth:`graph` cannot see a change
        that removes one link and adds another (the counts alias), so any
        mutation that *removes* links — fault injection degrading the
        topology mid-simulation — must call this instead of relying on it.
        The CDG index survives: it is keyed on the route-set version, and
        route changes caused by the fault flow through the normal route
        APIs.
        """
        self._graph = None
        self._graph_link_count = -1
        self._updown.clear()
        self._updown_link_count = -1
        self.sim_template = None

    def notify_channel_added(self, channel: Channel) -> None:
        """Record a duplicated channel (new VC or a VC of a new link).

        A fresh VC on an existing link changes neither the switch graph nor
        the up*/down* orientation; the channel is merely interned so the
        cost engine can refer to it by id.  A channel whose link is unknown
        to the topology's current graph signals a parallel-link duplicate —
        :meth:`notify_link_added` handles that case.
        """
        if self._cdg is not None:
            self._cdg.intern(channel)

    # ------------------------------------------------------------------
    # up*/down* state
    # ------------------------------------------------------------------
    def updown_state(self, root: Optional[str] = None) -> Tuple[Dict[Link, str], List[bool]]:
        """``(orientation, per-link-id up flags)`` for up*/down* routing.

        Cached per resolved root and invalidated whenever the topology's
        link set changes (the flags are positional over the graph's link
        ids).  The orientation itself is computed by
        :func:`repro.routing.turns.updown_orientation` — imported lazily so
        the two modules can depend on each other without an import cycle.
        """
        from repro.routing.turns import updown_orientation

        topology = self.design.topology
        resolved = root if root is not None else min(topology.switches)
        if self._updown_link_count != topology.link_count:
            self._updown.clear()
            self._updown_link_count = topology.link_count
        cached = self._updown.get(resolved)
        if cached is not None:
            counters.updown_reuses += 1
            return cached
        graph = self.graph()
        orientation = updown_orientation(topology, resolved)
        up_flags = [orientation[link] == "up" for link in graph.links]
        cached = (orientation, up_flags)
        self._updown[resolved] = cached
        counters.updown_builds += 1
        return cached

    # ------------------------------------------------------------------
    # interned routes / CDG / cost tables
    # ------------------------------------------------------------------
    def cdg_index(self) -> CDGIndex:
        """The incrementally maintained CDG of the design's current routes.

        Built from the route set on first access; afterwards every route
        change must flow through :meth:`apply_route_change` to keep it (and
        the per-flow id arrays) exact.  Route changes that did *not* —
        detected by comparing the route set's mutation
        :attr:`~repro.model.routes.RouteSet.version` against the one the
        index was synchronised to — trigger a from-scratch rebuild, so a
        context left attached to a design whose routes were rewritten
        out-of-band (e.g. a ``compute_routes`` call between two in-place
        removal runs) can never serve a stale CDG.
        """
        routes = self.design.routes
        if self._cdg is not None and self._cdg_routes_version != routes.version:
            self._cdg = None
            self._route_ids.clear()
            self._cost_engine = None
        if self._cdg is None:
            self._cdg = CDGIndex()
            for flow_name, route in routes.items():
                self._add_route_ids(flow_name, route)
            self._cdg_routes_version = routes.version
        return self._cdg

    def _add_route_ids(self, flow_name: str, route: Route) -> None:
        cdg = self._cdg
        ids = tuple(cdg.intern(channel) for channel in route.channels)
        cdg.add_route(flow_name, route.channels)
        self._route_ids[flow_name] = ids

    def route_ids(self, flow_name: str) -> Tuple[int, ...]:
        """The flow's route as a tuple of interned channel ids."""
        self.cdg_index()
        return self._route_ids[flow_name]

    def apply_route_change(self, flow_name: str, old_route: Route, new_route: Route) -> None:
        """Replace one flow's route in the CDG index and the id arrays.

        Re-synchronises the recorded route-set version: the caller is
        telling us it accounted for the mutations up to this point, so the
        next :meth:`cdg_index` access must not mistake them for an
        out-of-band change and throw the incremental state away.
        """
        cdg = self._cdg if self._cdg is not None else self.cdg_index()
        cdg.apply_route_change(flow_name, old_route.channels, new_route.channels)
        self._route_ids[flow_name] = tuple(
            cdg.intern(channel) for channel in new_route.channels
        )
        self._cdg_routes_version = self.design.routes.version
        counters.route_deltas += 1

    def flows_creating(self, edge: Tuple[Channel, Channel]) -> List[str]:
        """Names of flows whose route creates the dependency ``edge``, sorted.

        Served from the CDG index's per-edge flow sets in time proportional
        to the answer — the indexed replacement for
        :func:`repro.core.breaker.flows_creating_dependency`, which scans
        every route of the design (the sorted order matches it exactly,
        because :meth:`RouteSet.items` iterates in sorted-name order).
        """
        cdg = self.cdg_index()
        first, second = cdg.intern(edge[0]), cdg.intern(edge[1])
        return sorted(cdg.flows_on_edge(first, second))

    def cost_engine(self) -> CycleCostEngine:
        """The int-indexed cost-table engine bound to this context's index."""
        if self._cost_engine is None:
            self._cost_engine = CycleCostEngine(self.cdg_index(), self._route_ids)
        return self._cost_engine

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DesignContext(design={self.design.name!r}, "
            f"graph={'cached' if self._graph is not None else 'unbuilt'}, "
            f"updown_roots={len(self._updown)}, "
            f"indexed_flows={len(self._route_ids)})"
        )
