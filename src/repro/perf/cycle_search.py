"""Indexed smallest-cycle search with SCC pruning and dirty-region caching.

``GetSmallestCycle`` in the seed implementation BFS-searches from *every*
vertex of the CDG on *every* removal iteration.  Three observations make the
search incremental without changing a single returned cycle:

1. **SCC pruning** — a cycle through ``v`` lies entirely inside ``v``'s
   strongly connected component: every vertex on a path from ``v`` back to
   ``v`` both reaches and is reached from ``v``.  Vertices in trivial SCCs
   (the Kahn-peelable part of the graph) can never yield a cycle, so BFS
   only needs to run from vertices of non-trivial SCCs, restricted to their
   own component.  The same argument shows a BFS tree rooted inside an SCC
   never leaves it, so the restricted BFS discovers the exact same parent
   pointers — and therefore the exact same cycle — as the full-graph BFS.

2. **Per-SCC decomposition of the tie-break** — the seed loop keeps the
   first start vertex (in channel sort order) achieving the minimal cycle
   length.  Because SCCs partition the vertices, that winner is the best
   vertex of the SCC with the lexicographically smallest
   ``(cycle length, start key)`` pair.

3. **Dirty-region reuse** — a break only re-routes a few flows, so most
   SCCs survive an iteration with identical membership and untouched
   adjacency.  Their cached ``(length, start, cycle)`` result is still
   exact; only components containing a *dirty* vertex (adjacency changed
   since the last search, tracked by :class:`~repro.perf.cdg_index.CDGIndex`)
   are re-searched.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, NamedTuple, Optional, Tuple

import networkx as nx

from repro.perf.cdg_index import CDGIndex, ChannelKey
from repro.model.channels import Channel


class SccCycleEntry(NamedTuple):
    """Cached smallest-cycle result for one strongly connected component."""

    length: int
    start_key: ChannelKey
    cycle: Tuple[int, ...]


def tarjan_sccs(vertices: Iterable[int], successors) -> List[List[int]]:
    """Iterative Tarjan strongly-connected components over int vertices.

    ``successors(v)`` must yield the out-neighbours of ``v``.  Components are
    returned as lists of vertex ids; membership (all that matters here) is
    independent of traversal order.
    """
    index_of: Dict[int, int] = {}
    lowlink: Dict[int, int] = {}
    on_stack = set()
    stack: List[int] = []
    sccs: List[List[int]] = []
    counter = 0
    for root in vertices:
        if root in index_of:
            continue
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        work = [(root, iter(successors(root)))]
        while work:
            node, children = work[-1]
            pushed = False
            for child in children:
                if child not in index_of:
                    index_of[child] = lowlink[child] = counter
                    counter += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(successors(child))))
                    pushed = True
                    break
                if child in on_stack and index_of[child] < lowlink[node]:
                    lowlink[node] = index_of[child]
            if pushed:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                if lowlink[node] < lowlink[parent]:
                    lowlink[parent] = lowlink[node]
            if lowlink[node] == index_of[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(component)
    return sccs


class IncrementalCycleSearch:
    """Smallest-cycle oracle over a :class:`CDGIndex` with per-SCC caching.

    One instance lives for one removal run; call :meth:`find_smallest` once
    per iteration, after applying the iteration's route deltas to the index.
    Results are identical to
    :func:`repro.core.cycles.find_smallest_cycle` on a freshly rebuilt CDG.

    ``depth_limited=True`` additionally bounds every BFS after the first
    hit of a component to the depth at which a *strictly shorter* cycle
    could still exist.  The seed tie-break keeps the first start vertex (in
    channel sort order) achieving the minimal length, so a later start only
    matters if it yields a strictly shorter cycle — a cycle of length
    ``L`` through a start is discovered at BFS depth ``L - 1``, hence
    exploring beyond depth ``best - 2`` cannot change the winner.  The
    limited search returns the exact same entry (cycles at or above the
    limit would have been discarded by the strict comparison anyway); the
    flag exists so the ``"incremental"`` engine stays byte-for-byte the
    PR 3 baseline the scaling benchmark compares against.
    """

    def __init__(self, index: CDGIndex, *, depth_limited: bool = False):
        self._index = index
        self._depth_limited = depth_limited
        self._cache: Dict[FrozenSet[int], SccCycleEntry] = {}
        # Epoch-stamped scratch arrays for the depth-limited search: indexed
        # by dense channel id, validity decided by comparing stamps, so a
        # fresh BFS costs one counter bump instead of fresh dicts.
        self._member_stamp: List[int] = []
        self._visit_stamp: List[int] = []
        self._parent: List[int] = []
        self._depth: List[int] = []
        self._stamp = 0

    def find_smallest(self) -> Optional[List[Channel]]:
        """The smallest CDG cycle (ties: smallest start channel), or None."""
        index = self._index
        dirty = index.consume_dirty()
        sccs = tarjan_sccs(index.sorted_vertices(), index.successors)

        new_cache: Dict[FrozenSet[int], SccCycleEntry] = {}
        best: Optional[SccCycleEntry] = None
        for component in sccs:
            if len(component) < 2:
                continue
            key = frozenset(component)
            entry = self._cache.get(key)
            if entry is None or not dirty.isdisjoint(key):
                entry = self._search_component(component)
            new_cache[key] = entry
            if best is None or (entry.length, entry.start_key) < (best.length, best.start_key):
                best = entry
        self._cache = new_cache
        if best is None:
            return None
        return [index.channel_of(i) for i in best.cycle]

    # ------------------------------------------------------------------
    def _ensure_capacity(self, size: int) -> None:
        """Grow the scratch arrays to cover every interned channel id."""
        missing = size - len(self._visit_stamp)
        if missing > 0:
            self._member_stamp.extend([0] * missing)
            self._visit_stamp.extend([0] * missing)
            self._parent.extend([-1] * missing)
            self._depth.extend([0] * missing)

    def _search_component_limited(self, component: List[int]) -> SccCycleEntry:
        """Depth-limited, array-stamped variant of :meth:`_search_component`.

        Same BFS order, same parent pointers, same returned entry — the
        dictionaries of the reference variant are replaced by epoch-stamped
        flat arrays over dense channel ids, and each BFS after the first
        found cycle is bounded to the depth where a strictly shorter cycle
        can still close (see the class docstring for why that preserves the
        winner exactly).
        """
        index = self._index
        self._ensure_capacity(index.interned_count)
        member = self._member_stamp
        visit = self._visit_stamp
        parent = self._parent
        depth = self._depth
        self._stamp += 1
        component_stamp = self._stamp
        for vertex in component:
            member[vertex] = component_stamp
        starts = sorted(component, key=index.key_of)
        best_cycle: Optional[Tuple[int, ...]] = None
        best_start: Optional[int] = None
        sorted_successors = index.sorted_successors
        for start in starts:
            max_depth = None if best_cycle is None else len(best_cycle) - 2
            self._stamp += 1
            bfs_stamp = self._stamp
            visit[start] = bfs_stamp
            parent[start] = -1
            depth[start] = 0
            queue = deque((start,))
            found: Optional[Tuple[int, ...]] = None
            while queue and found is None:
                node = queue.popleft()
                node_depth = depth[node]
                expand = max_depth is None or node_depth < max_depth
                for succ in sorted_successors(node):
                    if succ == start:
                        cycle = [node]
                        current = node
                        while parent[current] != -1:
                            current = parent[current]
                            cycle.append(current)
                        cycle.reverse()
                        found = tuple(cycle)
                        break
                    if (
                        expand
                        and member[succ] == component_stamp
                        and visit[succ] != bfs_stamp
                    ):
                        visit[succ] = bfs_stamp
                        parent[succ] = node
                        depth[succ] = node_depth + 1
                        queue.append(succ)
            if found is None:
                continue
            if best_cycle is None or len(found) < len(best_cycle):
                best_cycle = found
                best_start = start
                if len(best_cycle) == 2:
                    break
        if best_cycle is None:  # pragma: no cover - SCCs of size >= 2 have cycles
            raise AssertionError("non-trivial SCC without a cycle")
        return SccCycleEntry(
            length=len(best_cycle),
            start_key=index.key_of(best_start),
            cycle=best_cycle,
        )

    def _search_component(self, component: List[int]) -> SccCycleEntry:
        """BFS from every component vertex (sorted order), inside the SCC."""
        if self._depth_limited:
            return self._search_component_limited(component)
        index = self._index
        members = frozenset(component)
        starts = sorted(component, key=index.key_of)
        best_cycle: Optional[Tuple[int, ...]] = None
        best_start: Optional[int] = None
        for start in starts:
            cycle = self._shortest_cycle_through(start, members)
            if cycle is None:
                continue
            if best_cycle is None or len(cycle) < len(best_cycle):
                best_cycle = cycle
                best_start = start
                if len(best_cycle) == 2:
                    break
        if best_cycle is None:  # pragma: no cover - SCCs of size >= 2 have cycles
            raise AssertionError("non-trivial SCC without a cycle")
        return SccCycleEntry(
            length=len(best_cycle),
            start_key=index.key_of(best_start),
            cycle=best_cycle,
        )

    def _shortest_cycle_through(
        self, start: int, members: FrozenSet[int]
    ) -> Optional[Tuple[int, ...]]:
        """Int-indexed mirror of ``cycles._shortest_cycle_through``.

        Successors are visited in presorted channel order but restricted to
        the start's SCC, which provably preserves BFS distances and parent
        pointers (see the module docstring).
        """
        index = self._index
        parent: Dict[int, Optional[int]] = {start: None}
        queue = deque((start,))
        while queue:
            node = queue.popleft()
            for succ in index.sorted_successors(node):
                if succ == start:
                    cycle = [node]
                    current = node
                    while parent[current] is not None:
                        current = parent[current]
                        cycle.append(current)
                    cycle.reverse()
                    return tuple(cycle)
                if succ in members and succ not in parent:
                    parent[succ] = node
                    queue.append(succ)
        return None


def count_cycles_indexed(index: CDGIndex, limit: Optional[int] = 10000) -> int:
    """Capped elementary-cycle count over the int-indexed CDG.

    Same contract as :func:`repro.core.cycles.count_cycles` (the count is
    independent of enumeration order), but Johnson's algorithm runs over
    dense integer nodes instead of Channel dataclasses.
    """
    if limit is not None and limit <= 0:
        return 0
    graph = nx.DiGraph()
    graph.add_nodes_from(index.sorted_vertices())
    for node in index.sorted_vertices():
        graph.add_edges_from((node, succ) for succ in index.successors(node))
    count = 0
    for _ in nx.simple_cycles(graph):
        count += 1
        if limit is not None and count >= limit:
            break
    return count
