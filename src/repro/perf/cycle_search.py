"""Indexed smallest-cycle search with SCC pruning and dirty-region caching.

``GetSmallestCycle`` in the seed implementation BFS-searches from *every*
vertex of the CDG on *every* removal iteration.  Three observations make the
search incremental without changing a single returned cycle:

1. **SCC pruning** — a cycle through ``v`` lies entirely inside ``v``'s
   strongly connected component: every vertex on a path from ``v`` back to
   ``v`` both reaches and is reached from ``v``.  Vertices in trivial SCCs
   (the Kahn-peelable part of the graph) can never yield a cycle, so BFS
   only needs to run from vertices of non-trivial SCCs, restricted to their
   own component.  The same argument shows a BFS tree rooted inside an SCC
   never leaves it, so the restricted BFS discovers the exact same parent
   pointers — and therefore the exact same cycle — as the full-graph BFS.

2. **Per-SCC decomposition of the tie-break** — the seed loop keeps the
   first start vertex (in channel sort order) achieving the minimal cycle
   length.  Because SCCs partition the vertices, that winner is the best
   vertex of the SCC with the lexicographically smallest
   ``(cycle length, start key)`` pair.

3. **Dirty-region reuse** — a break only re-routes a few flows, so most
   SCCs survive an iteration with identical membership and untouched
   adjacency.  Their cached ``(length, start, cycle)`` result is still
   exact; only components containing a *dirty* vertex (adjacency changed
   since the last search, tracked by :class:`~repro.perf.cdg_index.CDGIndex`)
   are re-searched.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, NamedTuple, Optional, Tuple

import networkx as nx

from repro.perf.cdg_index import CDGIndex, ChannelKey
from repro.model.channels import Channel


class SccCycleEntry(NamedTuple):
    """Cached smallest-cycle result for one strongly connected component."""

    length: int
    start_key: ChannelKey
    cycle: Tuple[int, ...]


def tarjan_sccs(vertices: Iterable[int], successors) -> List[List[int]]:
    """Iterative Tarjan strongly-connected components over int vertices.

    ``successors(v)`` must yield the out-neighbours of ``v``.  Components are
    returned as lists of vertex ids; membership (all that matters here) is
    independent of traversal order.
    """
    index_of: Dict[int, int] = {}
    lowlink: Dict[int, int] = {}
    on_stack = set()
    stack: List[int] = []
    sccs: List[List[int]] = []
    counter = 0
    for root in vertices:
        if root in index_of:
            continue
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        work = [(root, iter(successors(root)))]
        while work:
            node, children = work[-1]
            pushed = False
            for child in children:
                if child not in index_of:
                    index_of[child] = lowlink[child] = counter
                    counter += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(successors(child))))
                    pushed = True
                    break
                if child in on_stack and index_of[child] < lowlink[node]:
                    lowlink[node] = index_of[child]
            if pushed:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                if lowlink[node] < lowlink[parent]:
                    lowlink[parent] = lowlink[node]
            if lowlink[node] == index_of[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(component)
    return sccs


class IncrementalCycleSearch:
    """Smallest-cycle oracle over a :class:`CDGIndex` with per-SCC caching.

    One instance lives for one removal run; call :meth:`find_smallest` once
    per iteration, after applying the iteration's route deltas to the index.
    Results are identical to
    :func:`repro.core.cycles.find_smallest_cycle` on a freshly rebuilt CDG.
    """

    def __init__(self, index: CDGIndex):
        self._index = index
        self._cache: Dict[FrozenSet[int], SccCycleEntry] = {}

    def find_smallest(self) -> Optional[List[Channel]]:
        """The smallest CDG cycle (ties: smallest start channel), or None."""
        index = self._index
        dirty = index.consume_dirty()
        sccs = tarjan_sccs(index.sorted_vertices(), index.successors)

        new_cache: Dict[FrozenSet[int], SccCycleEntry] = {}
        best: Optional[SccCycleEntry] = None
        for component in sccs:
            if len(component) < 2:
                continue
            key = frozenset(component)
            entry = self._cache.get(key)
            if entry is None or not dirty.isdisjoint(key):
                entry = self._search_component(component)
            new_cache[key] = entry
            if best is None or (entry.length, entry.start_key) < (best.length, best.start_key):
                best = entry
        self._cache = new_cache
        if best is None:
            return None
        return [index.channel_of(i) for i in best.cycle]

    # ------------------------------------------------------------------
    def _search_component(self, component: List[int]) -> SccCycleEntry:
        """BFS from every component vertex (sorted order), inside the SCC."""
        index = self._index
        members = frozenset(component)
        starts = sorted(component, key=index.key_of)
        best_cycle: Optional[Tuple[int, ...]] = None
        best_start: Optional[int] = None
        for start in starts:
            cycle = self._shortest_cycle_through(start, members)
            if cycle is None:
                continue
            if best_cycle is None or len(cycle) < len(best_cycle):
                best_cycle = cycle
                best_start = start
                if len(best_cycle) == 2:
                    break
        if best_cycle is None:  # pragma: no cover - SCCs of size >= 2 have cycles
            raise AssertionError("non-trivial SCC without a cycle")
        return SccCycleEntry(
            length=len(best_cycle),
            start_key=index.key_of(best_start),
            cycle=best_cycle,
        )

    def _shortest_cycle_through(
        self, start: int, members: FrozenSet[int]
    ) -> Optional[Tuple[int, ...]]:
        """Int-indexed mirror of ``cycles._shortest_cycle_through``.

        Successors are visited in presorted channel order but restricted to
        the start's SCC, which provably preserves BFS distances and parent
        pointers (see the module docstring).
        """
        index = self._index
        parent: Dict[int, Optional[int]] = {start: None}
        queue = deque((start,))
        while queue:
            node = queue.popleft()
            for succ in index.sorted_successors(node):
                if succ == start:
                    cycle = [node]
                    current = node
                    while parent[current] is not None:
                        current = parent[current]
                        cycle.append(current)
                    cycle.reverse()
                    return tuple(cycle)
                if succ in members and succ not in parent:
                    parent[succ] = node
                    queue.append(succ)
        return None


def count_cycles_indexed(index: CDGIndex, limit: Optional[int] = 10000) -> int:
    """Capped elementary-cycle count over the int-indexed CDG.

    Same contract as :func:`repro.core.cycles.count_cycles` (the count is
    independent of enumeration order), but Johnson's algorithm runs over
    dense integer nodes instead of Channel dataclasses.
    """
    if limit is not None and limit <= 0:
        return 0
    graph = nx.DiGraph()
    graph.add_nodes_from(index.sorted_vertices())
    for node in index.sorted_vertices():
        graph.add_edges_from((node, succ) for succ in index.successors(node))
    count = 0
    for _ in nx.simple_cycles(graph):
        count += 1
        if limit is not None and count >= limit:
            break
    return count
