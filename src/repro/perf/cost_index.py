"""Int-indexed cost tables — Algorithm 2 over channel-id arrays.

:func:`repro.core.cost.build_cost_table` is exact but pays for its clarity
in the removal hot loop: choosing a break direction builds the forward and
the backward table separately, and each build scans *every* route of the
design with ``Channel in set`` membership tests that hash nested frozen
dataclasses — ``O(flows x route length)`` channel hashes per iteration,
twice.

:class:`CycleCostEngine` produces byte-identical
:class:`~repro.core.cost.CostTable` objects from the state a
:class:`~repro.perf.cdg_index.CDGIndex` already maintains:

* the **rows** of the table are exactly the flows recorded on the cycle's
  dependency edges (a flow contributes a row iff it creates at least one
  cycle dependency, and the index's per-edge flow sets list precisely those
  flows), so only the handful of flows touching the cycle are visited at
  all;
* both directions come out of **one pass** per flow over its interned
  channel-id array: the forward ordinal is a running prefix count of cycle
  members, and the backward ordinal (inclusive suffix count) is recovered
  from it as ``total - prefix + membership`` — no reverse scan, no second
  pass, and int comparisons instead of dataclass hashing throughout.

Equivalence is enforced three ways: the ``cross_check`` flag of the
``"context"`` removal engine compares every produced table against the
reference builder mid-run, the hypothesis suite in
``tests/perf/test_cost_index.py`` replays random topologies through both
paths, and ``benchmarks/bench_removal_scaling.py`` asserts identical
:class:`~repro.core.report.BreakAction` sequences on every SoC benchmark.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from repro.core.cost import BACKWARD, FORWARD, CostTable
from repro.errors import RemovalError
from repro.model.channels import Channel
from repro.model.routes import RouteSet
from repro.perf.cdg_index import CDGIndex


class CycleCostEngine:
    """Builds both cost tables of a cycle in one pass over int arrays.

    Parameters
    ----------
    index:
        The CDG index of the current route set; supplies channel interning
        and the per-edge flow sets that name the table rows.
    route_ids:
        Live mapping ``flow name -> tuple of interned channel ids`` for the
        current routes.  The caller (normally
        :class:`~repro.perf.design_context.DesignContext`) keeps it in sync
        with the index as routes change; the engine only reads it.
    """

    def __init__(self, index: CDGIndex, route_ids: Mapping[str, Tuple[int, ...]]):
        self._index = index
        self._route_ids = route_ids

    # ------------------------------------------------------------------
    @classmethod
    def from_routes(cls, routes: RouteSet) -> "CycleCostEngine":
        """Standalone engine over a plain route set (tests, one-off use)."""
        index = CDGIndex()
        route_ids: Dict[str, Tuple[int, ...]] = {}
        for flow_name, route in routes.items():
            route_ids[flow_name] = tuple(index.intern(c) for c in route.channels)
            index.add_route(flow_name, route.channels)
        return cls(index, route_ids)

    # ------------------------------------------------------------------
    def tables(self, cycle: Sequence[Channel]) -> Tuple[CostTable, CostTable]:
        """The ``(forward, backward)`` cost tables of one cycle.

        Field-for-field equal to two :func:`~repro.core.cost.build_cost_table`
        calls on the current routes (same rows, same entries, same column
        maxima, same best cost/position and tie-breaking).
        """
        from repro.perf.design_context import counters

        index = self._index
        cycle = list(cycle)
        if len(cycle) < 2:
            raise RemovalError("a CDG cycle must contain at least two channels")
        cycle_ids = [index.intern(channel) for channel in cycle]
        edge_ids = list(zip(cycle_ids, cycle_ids[1:]))
        edge_ids.append((cycle_ids[-1], cycle_ids[0]))
        edge_pos = {edge: m for m, edge in enumerate(edge_ids)}
        members = set(cycle_ids)
        n_edges = len(edge_ids)

        # Rows = flows recorded on at least one cycle edge.  Sorted order
        # matches the reference builder, which iterates RouteSet.items()
        # (sorted by name) and keeps only rows that created a dependency.
        row_flows: set = set()
        for first, second in edge_ids:
            row_flows |= index.flows_on_edge(first, second)

        forward_entries: Dict[str, Tuple[int, ...]] = {}
        backward_entries: Dict[str, Tuple[int, ...]] = {}
        for flow_name in sorted(row_flows):
            ids = self._route_ids[flow_name]
            length = len(ids)
            # Forward ordinals: inclusive prefix count of cycle members.
            prefix = [0] * length
            member_at = [False] * length
            count = 0
            for i, channel_id in enumerate(ids):
                if channel_id in members:
                    count += 1
                    member_at[i] = True
                prefix[i] = count
            total = count
            forward_row = [0] * n_edges
            backward_row = [0] * n_edges
            for i in range(length - 1):
                position = edge_pos.get((ids[i], ids[i + 1]))
                if position is None:
                    continue
                if prefix[i] > forward_row[position]:
                    forward_row[position] = prefix[i]
                # Inclusive suffix count at i+1, derived from the prefix.
                backward = total - prefix[i + 1] + (1 if member_at[i + 1] else 0)
                if backward > backward_row[position]:
                    backward_row[position] = backward
            forward_entries[flow_name] = tuple(forward_row)
            backward_entries[flow_name] = tuple(backward_row)

        if not forward_entries:
            raise RemovalError(
                "no flow creates any dependency of the cycle; the cycle does not "
                "belong to this route set"
            )
        counters.cost_tables_indexed += 2
        cycle_tuple = tuple(cycle)
        edges = tuple(zip(cycle_tuple, cycle_tuple[1:])) + ((cycle_tuple[-1], cycle_tuple[0]),)
        return (
            _finish_table(FORWARD, cycle_tuple, edges, forward_entries),
            _finish_table(BACKWARD, cycle_tuple, edges, backward_entries),
        )

    def best_break(
        self, cycle: Sequence[Channel], direction_policy: str = "best"
    ) -> Tuple[str, int, int, CostTable]:
        """``(direction, cost, position, table)`` under a direction policy.

        ``"best"`` compares both directions with forward winning ties (Step
        7 of Algorithm 1); ``"forward"`` / ``"backward"`` force one
        direction.  Either way both tables come from the same single pass.
        """
        forward, backward = self.tables(cycle)
        if direction_policy == FORWARD:
            return FORWARD, forward.best_cost, forward.best_position, forward
        if direction_policy == BACKWARD:
            return BACKWARD, backward.best_cost, backward.best_position, backward
        if forward.best_cost <= backward.best_cost:
            return FORWARD, forward.best_cost, forward.best_position, forward
        return BACKWARD, backward.best_cost, backward.best_position, backward


def _finish_table(
    direction: str,
    cycle: Tuple[Channel, ...],
    edges: Tuple[Tuple[Channel, Channel], ...],
    entries: Dict[str, Tuple[int, ...]],
) -> CostTable:
    """Column maxima + best selection, identical to the reference builder."""
    flow_names = tuple(sorted(entries))
    max_costs = tuple(
        max(entries[name][m] for name in flow_names) for m in range(len(edges))
    )
    best_position = min(range(len(edges)), key=lambda m: (max_costs[m], m))
    return CostTable(
        direction=direction,
        cycle=cycle,
        edges=edges,
        flow_names=flow_names,
        entries=entries,
        max_costs=max_costs,
        best_cost=max_costs[best_position],
        best_position=best_position,
    )


def build_cost_tables(cycle: Sequence[Channel], routes: RouteSet) -> Tuple[CostTable, CostTable]:
    """One-shot ``(forward, backward)`` tables for a cycle and a route set.

    Convenience wrapper over a throwaway :class:`CycleCostEngine`; the
    incremental path (one engine per removal run) is what the removal loop
    uses.
    """
    return CycleCostEngine.from_routes(routes).tables(cycle)
