"""Indexed shortest-path routing engine.

The seed implementation of :func:`repro.routing.shortest_path._legacy_dijkstra`
is a best-first search whose heap entries carry the *full path* — the switch
name sequence (for tie-breaking) plus the link tuple.  Because only strictly
worse entries are pruned, every equal-cost path to every intermediate node is
kept and expanded.  On application-specific topologies that is merely wasteful;
on the regular grids the ``mesh`` synthesis backend generates it is fatal: a
``rows x cols`` mesh has :math:`\\binom{dx+dy}{dx}` equal-hop paths between two
switches, so one corner-to-corner flow of an 8x8 mesh enumerates thousands of
partial paths and route computation dominates the sweep wall-clock.

This module replaces that search with a proper indexed engine, without
changing a single returned route:

* **int relabelling** (:class:`SwitchGraph`) — switches are interned to dense
  integer ids *in sorted name order* and links to dense link ids, the same
  approach :mod:`repro.perf.cycle_search` uses for CDG channels.  Because ids
  are assigned in name order, comparing id tuples is equivalent to comparing
  switch-name tuples, which keeps the legacy tie-break exact while replacing
  string comparisons with int comparisons.
* **predecessor-array Dijkstra** (:meth:`SwitchGraph.shortest_path`) — one
  label per node instead of one heap entry per path.  The label of a node is
  the lexicographically smallest ``(cost, switch-id sequence)`` over all paths
  from the source; ties between parallel links are broken by link order,
  mirroring the heap comparison of the legacy entries.  Each node is expanded
  exactly once, so the search is ``O(E log V)`` label operations instead of
  exponential.
* **incremental congestion reweighting** (:class:`IndexedRouter`) — the
  congestion weight of a link only changes when a routed flow touches it, so
  the per-design router updates just the links of the last committed route
  instead of rebuilding the full ``O(links)`` weight dictionary per flow, and
  the adjacency/weight arrays are built once per design and reused across all
  of its flows.

Equivalence argument (enforced empirically by the ``cross_check`` flag of
:func:`repro.routing.shortest_path.compute_routes`, the six-benchmark byte
equality check in ``benchmarks/bench_routing.py`` and the hypothesis suite in
``tests/routing/test_routing_equivalence.py``): the legacy search returns the
minimum over all enumerated walks of ``(float cost, name sequence)``.  With
positive weights a cheapest walk is a simple path and every prefix of the
winning path is itself the winning label of its end node — if a prefix could
be exchanged for a lexicographically smaller equal-cost one, the exchange
would improve the full path, a contradiction.  Dijkstra over per-node
``(cost, id sequence)`` labels therefore reproduces the legacy selection
exactly, float tie-breaking included, because both accumulate path cost
left-to-right with the same additions.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.errors import RouteError, TopologyError
from repro.model.channels import Channel, Link
from repro.model.routes import Route
from repro.model.topology import Topology


class SwitchGraph:
    """Integer-relabelled, weight-carrying view of a :class:`Topology`.

    Switch ids are assigned in sorted name order (so id-tuple comparisons
    reproduce name-tuple comparisons) and link ids in :class:`Link` sort
    order (so per-node adjacency lists are sorted by ``(dst id, parallel
    index)`` for free).  Weights default to 1.0 — the hop-count metric.
    """

    __slots__ = ("topology", "switches", "id_of", "links", "link_id", "weight", "out")

    def __init__(self, topology: Topology):
        self.topology = topology
        self.switches: List[str] = sorted(topology.switches)
        self.id_of: Dict[str, int] = {name: i for i, name in enumerate(self.switches)}
        self.links: List[Link] = topology.links  # sorted copy
        self.link_id: Dict[Link, int] = {link: i for i, link in enumerate(self.links)}
        self.weight: List[float] = [1.0] * len(self.links)
        out: List[List[Tuple[int, int]]] = [[] for _ in self.switches]
        for lid, link in enumerate(self.links):
            out[self.id_of[link.src]].append((self.id_of[link.dst], lid))
        self.out = out

    # ------------------------------------------------------------------
    @property
    def switch_count(self) -> int:
        """Number of switches (dense id range)."""
        return len(self.switches)

    @property
    def link_count(self) -> int:
        """Number of links (dense link-id range)."""
        return len(self.links)

    def switch_id(self, switch: str) -> int:
        """Dense id of a switch; unknown names raise :class:`TopologyError`."""
        try:
            return self.id_of[switch]
        except KeyError:
            raise TopologyError(f"unknown switch {switch!r}") from None

    def set_weights(
        self, link_weights: Optional[Dict[Link, float]] = None, default: float = 1.0
    ) -> None:
        """Reset every link weight to ``default``, then apply ``link_weights``."""
        weight = self.weight
        for i in range(len(weight)):
            weight[i] = default
        if link_weights:
            link_id = self.link_id
            for link, value in link_weights.items():
                lid = link_id.get(link)
                if lid is not None:
                    weight[lid] = value

    def add_link(self, link: Link) -> int:
        """Append a link the topology gained after this graph was built.

        The delta path of :class:`~repro.perf.design_context.DesignContext`:
        a physical-mode cycle break adds a parallel link, and appending it
        here keeps the shared graph exact without an ``O(switches + links)``
        rebuild.  The new link gets the next dense id (weight 1.0) and is
        spliced into its source's adjacency at the position :class:`Link`
        sort order dictates — traversal order, not id magnitude, is what
        the parallel-link tie-break of :meth:`shortest_path` relies on.
        Both endpoints must already be switches of the graph (the removal
        algorithm never adds switches).
        """
        existing = self.link_id.get(link)
        if existing is not None:
            return existing
        src_id = self.switch_id(link.src)
        dst_id = self.switch_id(link.dst)
        link_id = len(self.links)
        self.links.append(link)
        self.link_id[link] = link_id
        self.weight.append(1.0)
        edges = self.out[src_id]
        position = len(edges)
        for i, (dst, lid) in enumerate(edges):
            if dst > dst_id or (dst == dst_id and link < self.links[lid]):
                position = i
                break
        edges.insert(position, (dst_id, link_id))
        return link_id

    # ------------------------------------------------------------------
    def shortest_path(self, source: int, target: int) -> Optional[List[int]]:
        """Cheapest link-id path ``source -> target`` (``None`` if unreachable).

        Ties are broken by the lexicographic order of the switch-id sequence
        (= switch-name sequence) and then by link order among equal-weight
        parallel links — the exact selection rule of the legacy path-tuple
        search.  Weights must be positive for the per-node label argument to
        hold (all built-in weight modes produce weights >= 1).
        """
        if source == target:
            return []
        out = self.out
        weight = self.weight
        # label[v] = (cost, switch-id sequence); via[v] = (prev node, link id).
        label: Dict[int, Tuple[float, Tuple[int, ...]]] = {source: (0.0, (source,))}
        via: Dict[int, Tuple[int, int]] = {}
        finalized = bytearray(len(self.switches))
        heap: List[Tuple[float, Tuple[int, ...], int]] = [(0.0, (source,), source)]
        while heap:
            cost, seq, node = heapq.heappop(heap)
            if finalized[node] or (cost, seq) != label[node]:
                continue
            if node == target:
                links: List[int] = []
                while node != source:
                    node, lid = via[node]
                    links.append(lid)
                links.reverse()
                return links
            finalized[node] = 1
            edges = out[node]
            i = 0
            n = len(edges)
            while i < n:
                succ, lid = edges[i]
                best_cost = cost + weight[lid]
                best_lid = lid
                i += 1
                # Fold parallel links into one representative: the cheapest,
                # first-in-link-order one — exactly the entry the legacy heap
                # would pop first among same-(cost, names) alternatives.
                while i < n and edges[i][0] == succ:
                    other = edges[i][1]
                    other_cost = cost + weight[other]
                    if other_cost < best_cost:
                        best_cost = other_cost
                        best_lid = other
                    i += 1
                if finalized[succ]:
                    continue
                current = label.get(succ)
                if current is None or best_cost < current[0]:
                    candidate_seq = seq + (succ,)
                elif best_cost > current[0]:
                    continue
                else:
                    candidate_seq = seq + (succ,)
                    if candidate_seq >= current[1]:
                        continue
                label[succ] = (best_cost, candidate_seq)
                via[succ] = (node, best_lid)
                heapq.heappush(heap, (best_cost, candidate_seq, succ))
        return None

    def route_between(self, source: str, target: str) -> Optional[Route]:
        """Shortest :class:`Route` (VC 0 per hop) between two switch names.

        Returns ``None`` when the target is unreachable.  A same-switch pair
        is rejected up front — a :class:`Route` cannot be empty, and a
        same-switch flow needs no network route in the first place.
        """
        if source == target:
            raise RouteError(
                f"source and destination switch are both {source!r}; "
                "no network route is needed"
            )
        path = self.shortest_path(self.switch_id(source), self.switch_id(target))
        if path is None:
            return None
        links = self.links
        return Route([Channel(links[lid], 0) for lid in path])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SwitchGraph(switches={self.switch_count}, links={self.link_count})"


class IndexedRouter:
    """Per-design routing driver with incremental congestion reweighting.

    One instance routes every flow of one design: the :class:`SwitchGraph`
    adjacency and weight arrays are built once and shared across all flows,
    and :meth:`commit` updates only the weights of the links the committed
    route actually touches (the congestion weight of every other link is
    unchanged by construction).

    The float expression mirrors the legacy weight dictionary exactly —
    ``1.0 + congestion_factor * routed_bandwidth / total_bandwidth`` with the
    same accumulation order — so both engines see bit-identical weights.
    """

    def __init__(
        self,
        topology: Topology,
        *,
        congestion_factor: float = 0.0,
        total_bandwidth: float = 1.0,
        graph: Optional[SwitchGraph] = None,
    ):
        self.graph = graph if graph is not None else SwitchGraph(topology)
        self.congestion_factor = congestion_factor
        self.total_bandwidth = total_bandwidth
        self.routed_bandwidth: List[float] = [0.0] * self.graph.link_count
        self.graph.set_weights(None, default=1.0)

    def route(self, source_switch: str, destination_switch: str) -> Route:
        """Shortest route under the current weights (RouteError if none)."""
        route = self.graph.route_between(source_switch, destination_switch)
        if route is None:
            raise RouteError(
                f"no path from {source_switch!r} to {destination_switch!r} in "
                f"topology {self.graph.topology.name!r}"
            )
        return route

    def commit(self, route: Route, bandwidth: float) -> None:
        """Account a routed flow's bandwidth and reweight only its links."""
        graph = self.graph
        link_id = graph.link_id
        routed = self.routed_bandwidth
        factor = self.congestion_factor
        total = self.total_bandwidth
        weight = graph.weight
        for link in route.links:
            lid = link_id[link]
            routed[lid] += bandwidth
            if factor != 0:
                weight[lid] = 1.0 + factor * routed[lid] / total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IndexedRouter(graph={self.graph!r}, "
            f"congestion_factor={self.congestion_factor})"
        )
