"""repro.perf — the performance core of the reproduction.

Four pieces, all behaviour-preserving accelerations of the seed code paths:

* :mod:`repro.perf.cdg_index` — :class:`~repro.perf.cdg_index.CDGIndex`, an
  incrementally maintained channel dependency graph over dense integer ids
  with dirty-region tracking (replaces the per-iteration ``build_cdg``
  rebuild of Algorithm 1's outer loop);
* :mod:`repro.perf.cycle_search` — SCC-pruned, per-component-cached
  smallest-cycle search that returns exactly what
  :func:`repro.core.cycles.find_smallest_cycle` would on a fresh rebuild;
* :mod:`repro.perf.route_engine` — int-relabelled switch graph with a
  per-node label Dijkstra and incremental congestion reweighting (replaces
  the exponential path-tuple route search without changing any route);
* :mod:`repro.perf.executor` — an ordered, serial-fallback
  ``ProcessPoolExecutor`` map used by the figure sweeps and the CLI's
  ``--jobs`` flag.
"""

from repro.perf.cdg_index import CDGIndex, channel_sort_key
from repro.perf.cycle_search import (
    IncrementalCycleSearch,
    count_cycles_indexed,
    tarjan_sccs,
)
from repro.perf.executor import parallel_map, resolve_jobs
from repro.perf.route_engine import IndexedRouter, SwitchGraph

__all__ = [
    "CDGIndex",
    "channel_sort_key",
    "IncrementalCycleSearch",
    "IndexedRouter",
    "SwitchGraph",
    "count_cycles_indexed",
    "tarjan_sccs",
    "parallel_map",
    "resolve_jobs",
]
