"""repro.perf — the performance core of the reproduction.

Four pieces, all behaviour-preserving accelerations of the seed code paths:

* :mod:`repro.perf.cdg_index` — :class:`~repro.perf.cdg_index.CDGIndex`, an
  incrementally maintained channel dependency graph over dense integer ids
  with dirty-region tracking (replaces the per-iteration ``build_cdg``
  rebuild of Algorithm 1's outer loop);
* :mod:`repro.perf.cycle_search` — SCC-pruned, per-component-cached
  smallest-cycle search that returns exactly what
  :func:`repro.core.cycles.find_smallest_cycle` would on a fresh rebuild;
* :mod:`repro.perf.route_engine` — int-relabelled switch graph with a
  per-node label Dijkstra and incremental congestion reweighting (replaces
  the exponential path-tuple route search without changing any route);
* :mod:`repro.perf.design_context` —
  :class:`~repro.perf.design_context.DesignContext`, the per-design cache
  of shared routing/removal state (switch graph, up*/down* orientation,
  interned routes) kept alive across routing calls and cycle breaks by
  applying channel-duplication deltas instead of rebuilding;
* :mod:`repro.perf.cost_index` —
  :class:`~repro.perf.cost_index.CycleCostEngine`, Algorithm 2's forward
  and backward cost tables from one pass over interned channel-id arrays;
* :mod:`repro.perf.executor` — an ordered, serial-fallback
  ``ProcessPoolExecutor`` map used by the figure sweeps and the CLI's
  ``--jobs`` flag.
"""

from repro.perf.cdg_index import CDGIndex, channel_sort_key
from repro.perf.cost_index import CycleCostEngine, build_cost_tables
from repro.perf.cycle_search import (
    IncrementalCycleSearch,
    count_cycles_indexed,
    tarjan_sccs,
)
from repro.perf.design_context import ContextCounters, DesignContext, counters
from repro.perf.executor import parallel_map, resolve_jobs
from repro.perf.route_engine import IndexedRouter, SwitchGraph

__all__ = [
    "CDGIndex",
    "channel_sort_key",
    "ContextCounters",
    "CycleCostEngine",
    "DesignContext",
    "IncrementalCycleSearch",
    "IndexedRouter",
    "SwitchGraph",
    "build_cost_tables",
    "count_cycles_indexed",
    "counters",
    "tarjan_sccs",
    "parallel_map",
    "resolve_jobs",
]
