"""Parallel point executor for the figure sweeps.

Every point of ``sweep_switch_counts`` / ``figure8/9/10_series`` is an
independent synthesize → remove → order → estimate pipeline, so the sweeps
parallelise embarrassingly well across processes.  :func:`parallel_map` is a
drop-in ordered ``map`` that fans work out over a
:class:`concurrent.futures.ProcessPoolExecutor`:

* **deterministic ordering** — results come back in input order regardless
  of which worker finishes first;
* **serial fallback** — ``jobs`` of ``None``/``0``/``1`` runs inline, and a
  pool that cannot be used at all (no ``fork``/``spawn`` support, unpicklable
  work item) falls back to the serial path instead of failing the sweep;
* **picklable work only** — callables must be module-level functions (or
  :func:`functools.partial` over one); every item's result is materialised
  before returning.

Every degradation warning (serial fallback, pool death with partial
results kept) carries a ``[noc-lint {...}]`` payload built by
:func:`repro.lint.findings.structured_warning`, so CI log scrapers parse
one schema for static lint findings and runtime degradations alike.
"""

from __future__ import annotations

import os
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

from repro.lint.findings import structured_warning

T = TypeVar("T")
R = TypeVar("R")


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value to a concrete worker count.

    ``None``, ``0`` and ``1`` mean serial; a negative value means "one
    worker per CPU" (like ``make -j`` with no argument).
    """
    if jobs is None or jobs == 0:
        return 1
    if jobs < 0:
        return max(os.cpu_count() or 1, 1)
    return jobs


def parallel_map(
    func: Callable[[T], R],
    items: Iterable[T],
    *,
    jobs: Optional[int] = None,
    retries: int = 1,
    attempts_out: Optional[List[int]] = None,
) -> List[R]:
    """Ordered ``[func(item) for item in items]``, optionally across processes.

    With ``jobs`` resolving to 1 (the default) this is a plain serial list
    comprehension — same exceptions, same ordering.  With more workers the
    items are dispatched to a process pool; results are returned in input
    order.  If the pool cannot run the work at all (unpicklable function or
    items, broken interpreter support) the computation silently degrades to
    serial so callers never have to special-case platforms.

    When a worker dies mid-run (``BrokenProcessPool``), completed results
    are **kept** and only the unfinished items are re-dispatched to a fresh
    pool, at most ``retries`` extra pool attempts per item; an item that
    exhausts its retries runs serially in this process.  So an item's side
    effects (cache writes, file output) repeat only for the items actually
    caught in the crash, never for the whole batch.  ``attempts_out``, when
    given, is filled with the per-item execution counts in input order.

    Exceptions raised *by func* — in a worker or during a serial (re)run —
    propagate to the caller unchanged.
    """
    items = list(items)
    count = len(items)
    attempts = [0] * count

    def _record() -> None:
        if attempts_out is not None:
            attempts_out[:] = attempts

    def _serial(indices) -> None:
        for i in indices:
            attempts[i] += 1
            results[i] = func(items[i])
            done[i] = True
            _record()

    results: List[Optional[R]] = [None] * count
    done = [False] * count
    workers = min(resolve_jobs(jobs), max(count, 1))
    try:
        if workers <= 1 or count <= 1:
            _serial(range(count))
            return list(results)  # type: ignore[arg-type]
        # Cheap pre-flight: the callable plus one sample item must pickle.
        # The full item list is serialised by the pool itself during
        # dispatch; round-tripping it here would double the work and the
        # peak memory.
        try:
            pickle.dumps(func)
            pickle.dumps(items[0])
        except Exception:
            warnings.warn(
                structured_warning(
                    "process-boundary",
                    "parallel_map: work is not picklable, falling back to serial",
                ),
                RuntimeWarning,
                stacklevel=2,
            )
            _serial(range(count))
            return list(results)  # type: ignore[arg-type]

        pending = list(range(count))
        while pending:
            try:
                pool = ProcessPoolExecutor(max_workers=min(workers, len(pending)))
            except OSError as exc:  # e.g. no fork/spawn support on the platform
                warnings.warn(
                    structured_warning(
                        "process-serial-fallback",
                        f"parallel_map: cannot start worker processes "
                        f"({exc!r}), falling back to serial",
                    ),
                    RuntimeWarning,
                    stacklevel=2,
                )
                _serial(pending)
                return list(results)  # type: ignore[arg-type]
            try:
                with pool:
                    futures = []
                    for i in pending:
                        attempts[i] += 1
                        futures.append((i, pool.submit(func, items[i])))
                    for i, future in futures:
                        try:
                            results[i] = future.result()
                            done[i] = True
                        except (BrokenProcessPool, pickle.PicklingError):
                            pass
            except (BrokenProcessPool, pickle.PicklingError):
                # submit() or the pool shutdown itself blew up; the
                # per-future bookkeeping above already recorded whatever
                # finished before the crash.
                pass
            unfinished = [i for i in pending if not done[i]]
            if not unfinished:
                break
            # A dead pool means at least one worker was killed mid-item
            # (OOM, signal).  Retry just the unfinished items: a bounded
            # number of fresh-pool rounds each, then serially in this
            # process — never re-running the items that already completed.
            retryable = [i for i in unfinished if attempts[i] <= retries]
            exhausted = [i for i in unfinished if attempts[i] > retries]
            warnings.warn(
                structured_warning(
                    "process-pool-died",
                    f"parallel_map: process pool died with {len(unfinished)} of "
                    f"{count} item(s) unfinished; retrying "
                    f"{len(retryable)} in a fresh pool, running "
                    f"{len(exhausted)} serially (completed results are kept)",
                ),
                RuntimeWarning,
                stacklevel=2,
            )
            if exhausted:
                _serial(exhausted)
            pending = retryable
        return list(results)  # type: ignore[arg-type]
    finally:
        _record()
