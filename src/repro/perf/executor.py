"""Parallel point executor for the figure sweeps.

Every point of ``sweep_switch_counts`` / ``figure8/9/10_series`` is an
independent synthesize → remove → order → estimate pipeline, so the sweeps
parallelise embarrassingly well across processes.  :func:`parallel_map` is a
drop-in ordered ``map`` that fans work out over a
:class:`concurrent.futures.ProcessPoolExecutor`:

* **deterministic ordering** — results come back in input order regardless
  of which worker finishes first;
* **serial fallback** — ``jobs`` of ``None``/``0``/``1`` runs inline, and a
  pool that cannot be used at all (no ``fork``/``spawn`` support, unpicklable
  work item) falls back to the serial path instead of failing the sweep;
* **picklable work only** — callables must be module-level functions (or
  :func:`functools.partial` over one); every item's result is materialised
  before returning.
"""

from __future__ import annotations

import os
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value to a concrete worker count.

    ``None``, ``0`` and ``1`` mean serial; a negative value means "one
    worker per CPU" (like ``make -j`` with no argument).
    """
    if jobs is None or jobs == 0:
        return 1
    if jobs < 0:
        return max(os.cpu_count() or 1, 1)
    return jobs


def parallel_map(
    func: Callable[[T], R],
    items: Iterable[T],
    *,
    jobs: Optional[int] = None,
) -> List[R]:
    """Ordered ``[func(item) for item in items]``, optionally across processes.

    With ``jobs`` resolving to 1 (the default) this is a plain serial list
    comprehension — same exceptions, same ordering.  With more workers the
    items are dispatched to a process pool; results are returned in input
    order.  If the pool cannot run the work (unpicklable function or items,
    broken interpreter support) the computation silently degrades to serial
    so callers never have to special-case platforms.
    """
    items = list(items)
    workers = min(resolve_jobs(jobs), max(len(items), 1))
    if workers <= 1 or len(items) <= 1:
        return [func(item) for item in items]
    # Cheap pre-flight: the callable plus one sample item must pickle.  The
    # full item list is serialised by the pool itself during dispatch;
    # round-tripping it here would double the work and the peak memory.
    try:
        pickle.dumps(func)
        pickle.dumps(items[0])
    except Exception:
        warnings.warn(
            "parallel_map: work is not picklable, falling back to serial",
            RuntimeWarning,
            stacklevel=2,
        )
        return [func(item) for item in items]
    try:
        pool = ProcessPoolExecutor(max_workers=workers)
    except OSError as exc:  # e.g. no fork/spawn support on the platform
        warnings.warn(
            f"parallel_map: cannot start worker processes ({exc!r}), "
            "falling back to serial",
            RuntimeWarning,
            stacklevel=2,
        )
        return [func(item) for item in items]
    # Exceptions raised *by func* inside a worker propagate to the caller
    # unchanged — only pool-infrastructure failures degrade to serial.
    partial: List[R] = []
    try:
        with pool:
            for result in pool.map(func, items):
                partial.append(result)
            return partial
    except (BrokenProcessPool, pickle.PicklingError) as exc:
        # The serial retry below re-executes *every* item, including the
        # ones whose results already came back — callers whose work items
        # have side effects (cache writes, file output) see those repeat.
        # Being silent about it made double-writes undiagnosable.
        warnings.warn(
            f"parallel_map: process pool died mid-run ({exc!r}) after "
            f"{len(partial)} of {len(items)} item(s) completed; discarding "
            "the partial results and re-running ALL items serially "
            "(side effects of completed items will run twice)",
            RuntimeWarning,
            stacklevel=2,
        )
        return [func(item) for item in items]
