"""Compiled wormhole simulation engine: flat arrays instead of objects.

The seed simulator (:mod:`repro.simulation`) walks Python objects every
cycle: each router re-sorts its output links and channels, rebuilds its
source list (two ``sorted()`` calls per allocation attempt) and peeks
per-flit ``Flit`` objects through dictionaries of ``Channel`` dataclass
keys.  That is the right reference implementation and the wrong inner
loop.  This module applies the PR 3/PR 4 playbook to it:

* a :class:`SimulationTemplate` — the static, int-relabelled compilation of
  a design (the interned channel table, the per-router link/VC groups and
  arbitration source lists in the exact legacy orders, and the per-flow
  precompiled channel-id routes).  It is cached on the design's
  :class:`~repro.perf.design_context.DesignContext`, so a load–latency
  sweep compiles the design once and reuses the template across all its
  simulation runs (``counters.sim_template_builds`` / ``_reuses``);
* a :class:`CompiledNetwork` over flat arrays: per-channel occupancy
  ranges, reservation/ownership/credit state and round-robin pointers are
  plain ``list``\\ s of ints.  A virtual-channel buffer always holds a
  contiguous run of flits of one packet, so a buffer is four ints
  (``packet, lo, hi, hops``) instead of a deque of flit objects;
* a :class:`CompiledSimulator` whose per-cycle sweep iterates those arrays
  in precisely the legacy schedule — same router order, same per-link VC
  round-robin, same allocation rotation, same two-phase arrival commit —
  so it produces **field-identical** :class:`~repro.simulation.stats
  .SimulationStats` (enforced by ``simulate_design(..., cross_check=True)``
  and the equivalence suite in ``tests/perf/test_sim_engine.py``).

Registered as the ``"compiled"`` entry (the default) of
:data:`repro.api.registry.simulation_engines`; importing this module also
imports :mod:`repro.simulation.simulator`, which registers ``"legacy"``.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Tuple

from repro.api.registry import simulation_engines
from repro.errors import SimulationError
from repro.model.channels import Channel
from repro.model.design import NocDesign
from repro.perf.design_context import DesignContext, counters
from repro.simulation.simulator import ENGINE_COMPILED, Simulator

#: Source-code space: codes below the channel count are input buffers
#: (the code *is* the channel id); codes at or above it are injection
#: queues (``code - channel_count`` is the flow id).
_NO_SOURCE = -1


class SimulationTemplate:
    """Static int-relabelled compilation of one design for simulation.

    Everything here is immutable under simulation (it only depends on the
    topology, the core mapping and the routes), so one template serves any
    number of concurrent :class:`CompiledNetwork` instances.
    """

    __slots__ = (
        "design",
        "channels",
        "channel_id",
        "channel_count",
        "switches",
        "switch_index",
        "buf_router",
        "r_links",
        "link_slot_count",
        "r_sources",
        "flow_ids",
        "flow_routes",
        "flow_src_router",
        "wait_order",
        "routes_version",
    )

    def __init__(self, design: NocDesign):
        self.design = design
        topology = design.topology
        channels = topology.channels()  # sorted copy
        self.channels: List[Channel] = channels
        self.channel_id: Dict[Channel, int] = {c: i for i, c in enumerate(channels)}
        self.channel_count = len(channels)

        # Sweep order: the legacy network serves routers in sorted-name
        # order, so sweep ids are assigned in that order.
        self.switches: List[str] = sorted(topology.switches)
        self.switch_index: Dict[str, int] = {
            name: i for i, name in enumerate(self.switches)
        }
        self.buf_router: List[int] = [self.switch_index[c.dst] for c in channels]

        # Per-router output structure: links in Link sort order, each link's
        # channels in VC order — the exact iteration of the legacy
        # ``_step_router``.  Every (router, link) pair gets a dense slot for
        # its VC round-robin pointer.
        out_channels: List[List[int]] = [[] for _ in self.switches]
        for cid, channel in enumerate(channels):
            out_channels[self.switch_index[channel.src]].append(cid)
        r_links: List[List[Tuple[Tuple[int, ...], int]]] = []
        slot = 0
        for rid in range(len(self.switches)):
            by_link: Dict = {}
            for cid in out_channels[rid]:
                by_link.setdefault(channels[cid].link, []).append(cid)
            groups = []
            for link in sorted(by_link):
                groups.append((tuple(sorted(by_link[link], key=lambda i: channels[i].vc)), slot))
                slot += 1
            r_links.append(groups)
        self.r_links = r_links
        self.link_slot_count = slot

        # Routed flows, dense ids in sorted-name order (matches the order
        # injection queues are created — and therefore arbitrated — in the
        # legacy router: ``sorted(self.injection_queues)``).
        self.flow_ids: Dict[str, int] = {}
        self.flow_routes: List[Tuple[int, ...]] = []
        self.flow_src_router: List[int] = []
        for flow in design.traffic.flows:  # sorted by name
            if not design.routes.has_route(flow.name):
                continue
            fid = len(self.flow_routes)
            self.flow_ids[flow.name] = fid
            self.flow_routes.append(
                tuple(self.channel_id[c] for c in design.routes.route(flow.name).channels)
            )
            self.flow_src_router.append(self.switch_index[design.switch_of(flow.src)])

        # Per-router arbitration sources in the legacy ``all_sources``
        # order: input buffers sorted by channel, then injection queues
        # sorted by flow name.  Buffer code = channel id; injection code =
        # channel_count + flow id.
        in_buffers: List[List[int]] = [[] for _ in self.switches]
        for cid in range(self.channel_count):
            in_buffers[self.buf_router[cid]].append(cid)  # already channel-sorted
        inj_flows: List[List[int]] = [[] for _ in self.switches]
        for name in sorted(self.flow_ids):
            fid = self.flow_ids[name]
            inj_flows[self.flow_src_router[fid]].append(fid)
        self.r_sources: List[Tuple[int, ...]] = [
            tuple(in_buffers[rid] + [self.channel_count + fid for fid in inj_flows[rid]])
            for rid in range(len(self.switches))
        ]

        # Wait-for-edge iteration order: the legacy ``wait_for_edges`` walks
        # routers in *insertion* order (``topology.switches``) and each
        # router's input buffers in channel-add order (globally sorted
        # channels filtered by destination).
        self.wait_order: List[int] = []
        for switch in topology.switches:
            rid = self.switch_index[switch]
            self.wait_order.extend(in_buffers[rid])

        self.routes_version = design.routes.version

    def is_current(self) -> bool:
        """True while the design's channels and routes match this template."""
        return (
            self.channel_count == self.design.topology.channel_count
            and self.routes_version == self.design.routes.version
        )

    @classmethod
    def of(cls, design: NocDesign) -> "SimulationTemplate":
        """The design's cached template, (re)compiled when stale.

        Cached on the design's :class:`DesignContext`, so repeated
        simulations of one design (e.g. a load–latency sweep) compile the
        static structure once.
        """
        context = DesignContext.of(design)
        template = getattr(context, "sim_template", None)
        if template is not None and template.design is design and template.is_current():
            counters.sim_template_reuses += 1
            return template
        template = cls(design)
        context.sim_template = template
        counters.sim_template_builds += 1
        return template


class CompiledNetwork:
    """Flat-array wormhole network state, schedule-identical to the legacy one.

    Exposes the same surface the simulator and the deadlock monitor use
    (``inject``, ``step``, ``undelivered_flits``, ``flits_in_network``,
    ``flits_pending_injection``, ``wait_for_edges``), so
    :class:`~repro.simulation.deadlock.DeadlockMonitor` and the shared run
    loop work unchanged.
    """

    def __init__(self, design: NocDesign, *, buffer_depth: int = 4):
        self.design = design
        self.buffer_depth = buffer_depth
        t = SimulationTemplate.of(design)
        self.template = t
        C = t.channel_count
        # Buffer state per channel: current packet (reservation, -1 free),
        # flit-index range [lo, hi) of the stored contiguous run, and the
        # hop count of the stored flits (all flits in a buffer share it).
        self.buf_pkt = [-1] * C
        self.buf_lo = [0] * C
        self.buf_hi = [0] * C
        self.buf_hops = [0] * C
        # Wormhole ownership + arbitration state per outgoing channel.
        self.out_owner = [-1] * C
        self.out_src = [_NO_SOURCE] * C
        self.alloc_ptr = [0] * C
        self.link_ptr = [0] * t.link_slot_count
        # Channel transfer counters (materialised into stats at the end).
        self.busy = [0] * C
        # Injection queues: packet ids per flow plus the head packet's next
        # flit index.
        self.inj_pkts: List[Deque[int]] = [deque() for _ in t.flow_routes]
        self.inj_head_idx: List[int] = [0] * len(t.flow_routes)
        # Packet records (id -> flow id / size / creation cycle).
        self.pkt_flow: Dict[int, int] = {}
        self.pkt_size: Dict[int, int] = {}
        self.pkt_created: Dict[int, int] = {}
        # Flit accounting.
        self.r_flits = [0] * len(t.switches)
        self._buffered = 0
        self._pending_injection = 0
        self._undelivered = 0
        self._moved: set = set()
        self._pending: List[Tuple[int, int, int, int]] = []
        # Transfer counts of channels that left the topology mid-run (fault
        # injection); folded into the stats alongside the live counters.
        self._retired_busy: Dict[Channel, int] = {}

    # ------------------------------------------------------------------
    # injection
    # ------------------------------------------------------------------
    def inject(self, packet) -> None:
        """Queue all flits of ``packet`` at its source router."""
        fid = self.template.flow_ids.get(packet.flow_name)
        if fid is None:
            source_switch = self.design.switch_of(
                self.design.traffic.flow(packet.flow_name).src
            )
            raise SimulationError(
                f"flow {packet.flow_name!r} has no injection queue at {source_switch!r}"
            )
        pid = packet.packet_id
        self.pkt_flow[pid] = fid
        self.pkt_size[pid] = packet.size_flits
        self.pkt_created[pid] = packet.created_cycle
        self.inj_pkts[fid].append(pid)
        size = packet.size_flits
        self._undelivered += size
        self._pending_injection += size
        self.r_flits[self.template.flow_src_router[fid]] += size

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def undelivered_flits(self) -> int:
        """Flits injected but not yet ejected (O(1) counter)."""
        return self._undelivered

    def flits_in_network(self) -> int:
        """Flits stored in input buffers (excludes injection queues)."""
        return self._buffered

    def flits_pending_injection(self) -> int:
        """Flits still waiting in injection queues."""
        return self._pending_injection

    def count_flits_by_walk(self) -> Tuple[int, int]:
        """(buffered, pending-injection) flits recounted from the raw state.

        The regression oracle for the O(1) counters: a full walk over every
        buffer range and injection queue, never used on the hot path.
        """
        buffered = sum(
            hi - lo for hi, lo in zip(self.buf_hi, self.buf_lo)
        )
        pending = 0
        for fid, queue in enumerate(self.inj_pkts):
            if not queue:
                continue
            pending += sum(self.pkt_size[pid] for pid in queue)
            pending -= self.inj_head_idx[fid]
        return buffered, pending

    def wait_for_edges(self) -> List[Tuple[Channel, Channel]]:
        """Channel wait-for edges, in the legacy iteration order."""
        t = self.template
        channels = t.channels
        flow_routes = t.flow_routes
        edges: List[Tuple[Channel, Channel]] = []
        for cid in t.wait_order:
            if self.buf_hi[cid] == self.buf_lo[cid]:
                continue
            route = flow_routes[self.pkt_flow[self.buf_pkt[cid]]]
            hops = self.buf_hops[cid]
            if hops >= len(route):  # pragma: no cover - buffers never hold arrived flits
                continue
            edges.append((channels[cid], channels[route[hops]]))
        return edges

    # ------------------------------------------------------------------
    # fault recovery support
    # ------------------------------------------------------------------
    def is_packet_live(self, packet_id: int) -> bool:
        """True while ``packet_id`` has undelivered flits in the network."""
        return packet_id in self.pkt_flow

    def live_packet_ids(self) -> set:
        """Ids of every packet currently queued or in flight."""
        return set(self.pkt_flow)

    def drop_flows(self, flow_names) -> Tuple[int, int]:
        """Discard every live packet of the given flows.

        Returns ``(packets_dropped, flits_dropped)`` where the flit count
        covers only undelivered flits.  Used by fault recovery before a
        route swap: a packet whose flow is re-routed mid-flight cannot
        finish its journey on the old path.
        """
        t = self.template
        doomed_fids = {t.flow_ids[n] for n in flow_names if n in t.flow_ids}
        doomed = {pid for pid, fid in self.pkt_flow.items() if fid in doomed_fids}
        if not doomed:
            return (0, 0)
        buf_pkt, buf_lo, buf_hi = self.buf_pkt, self.buf_lo, self.buf_hi
        dropped = 0
        for c in range(t.channel_count):
            if buf_pkt[c] in doomed:
                flits = buf_hi[c] - buf_lo[c]
                dropped += flits
                self._buffered -= flits
                self.r_flits[t.buf_router[c]] -= flits
                buf_pkt[c] = -1
                buf_lo[c] = 0
                buf_hi[c] = 0
            if self.out_owner[c] in doomed:
                self.out_owner[c] = -1
                self.out_src[c] = _NO_SOURCE
        for fid in doomed_fids:
            queue = self.inj_pkts[fid]
            if queue:
                pend = sum(self.pkt_size[pid] for pid in queue)
                pend -= self.inj_head_idx[fid]
                dropped += pend
                self._pending_injection -= pend
                self.r_flits[t.flow_src_router[fid]] -= pend
                queue.clear()
            self.inj_head_idx[fid] = 0
        for pid in doomed:
            del self.pkt_flow[pid]
            del self.pkt_size[pid]
            del self.pkt_created[pid]
        self._undelivered -= dropped
        return (len(doomed), dropped)

    def sync_with_design(self) -> None:
        """Recompile the template after a topology/route change and migrate.

        The fault-recovery drop rule guarantees that every surviving packet
        belongs to a flow whose route is unchanged, so migration is a pure
        relabelling: per-channel state is carried over by :class:`Channel`
        identity, source codes and flow ids are remapped by name, and the
        per-(router, link) VC round-robin pointers follow their link (a
        link that lost all channels restarts at VC 0, exactly like the
        legacy network dropping and re-creating its ``link_pointer``
        entry).
        """
        old = self.template
        design = self.design
        if (
            old.channels == design.topology.channels()
            and old.routes_version == design.routes.version
        ):
            return
        new = SimulationTemplate(design)
        DesignContext.of(design).sim_template = new
        counters.sim_template_builds += 1

        # Transfer counts of channels that no longer exist must still reach
        # the final stats (the legacy engine records them in place).
        new_ids = new.channel_id
        for o_cid, count in enumerate(self.busy):
            channel = old.channels[o_cid]
            if count and channel not in new_ids:
                self._retired_busy[channel] = (
                    self._retired_busy.get(channel, 0) + count
                )

        C = new.channel_count
        buf_pkt = [-1] * C
        buf_lo = [0] * C
        buf_hi = [0] * C
        buf_hops = [0] * C
        out_owner = [-1] * C
        out_src = [_NO_SOURCE] * C
        alloc_ptr = [0] * C
        busy = [0] * C
        old_flow_name = {fid: name for name, fid in old.flow_ids.items()}
        for n_cid, channel in enumerate(new.channels):
            o_cid = old.channel_id.get(channel)
            if o_cid is None:
                continue
            buf_pkt[n_cid] = self.buf_pkt[o_cid]
            buf_lo[n_cid] = self.buf_lo[o_cid]
            buf_hi[n_cid] = self.buf_hi[o_cid]
            buf_hops[n_cid] = self.buf_hops[o_cid]
            alloc_ptr[n_cid] = self.alloc_ptr[o_cid]
            busy[n_cid] = self.busy[o_cid]
            owner = self.out_owner[o_cid]
            if owner == -1:
                continue
            src = self.out_src[o_cid]
            if src < old.channel_count:
                new_src = new.channel_id.get(old.channels[src], -1)
            else:
                fid = new.flow_ids.get(old_flow_name[src - old.channel_count], -1)
                new_src = new.channel_count + fid if fid >= 0 else -1
            if new_src >= 0:
                out_owner[n_cid] = owner
                out_src[n_cid] = new_src

        # Per-(router, link) VC pointers follow their link across templates.
        old_link_ptr = {}
        for rid, groups in enumerate(old.r_links):
            for chs, slot in groups:
                old_link_ptr[(rid, old.channels[chs[0]].link)] = self.link_ptr[slot]
        link_ptr = [0] * new.link_slot_count
        for rid, groups in enumerate(new.r_links):
            for chs, slot in groups:
                link_ptr[slot] = old_link_ptr.get(
                    (rid, new.channels[chs[0]].link), 0
                )

        # Injection queues and packet records follow their flow by name
        # (flows that became unrouted had their queues cleared by
        # ``drop_flows`` before this sync).
        inj_pkts: List[Deque[int]] = [deque() for _ in new.flow_routes]
        inj_head = [0] * len(new.flow_routes)
        for name, o_fid in old.flow_ids.items():
            n_fid = new.flow_ids.get(name)
            if n_fid is not None:
                inj_pkts[n_fid] = self.inj_pkts[o_fid]
                inj_head[n_fid] = self.inj_head_idx[o_fid]
        self.pkt_flow = {
            pid: new.flow_ids[old_flow_name[o_fid]]
            for pid, o_fid in self.pkt_flow.items()
        }

        # Recount the O(1) flit counters against the migrated state.
        r_flits = [0] * len(new.switches)
        buffered = 0
        for c in range(C):
            flits = buf_hi[c] - buf_lo[c]
            if flits:
                buffered += flits
                r_flits[new.buf_router[c]] += flits
        pending = 0
        for fid, queue in enumerate(inj_pkts):
            if queue:
                pend = sum(self.pkt_size[pid] for pid in queue)
                pend -= inj_head[fid]
                pending += pend
                r_flits[new.flow_src_router[fid]] += pend

        self.template = new
        self.buf_pkt, self.buf_lo, self.buf_hi, self.buf_hops = (
            buf_pkt,
            buf_lo,
            buf_hi,
            buf_hops,
        )
        self.out_owner, self.out_src = out_owner, out_src
        self.alloc_ptr, self.link_ptr = alloc_ptr, link_ptr
        self.busy = busy
        self.inj_pkts, self.inj_head_idx = inj_pkts, inj_head
        self.r_flits = r_flits
        self._buffered = buffered
        self._pending_injection = pending
        self._undelivered = buffered + pending

    # ------------------------------------------------------------------
    # one simulation cycle
    # ------------------------------------------------------------------
    def step(self, cycle: int, stats) -> int:
        """Advance by one cycle; returns the number of flit moves.

        Mirrors ``WormholeNetwork.step`` exactly: routers are served in
        sorted-switch order against start-of-cycle buffer state, committed
        transfers park in a pending list, and arrivals land after every
        router has been served.
        """
        t = self.template
        C = t.channel_count
        buf_pkt, buf_lo, buf_hi, buf_hops = self.buf_pkt, self.buf_lo, self.buf_hi, self.buf_hops
        out_owner, out_src = self.out_owner, self.out_src
        alloc_ptr, link_ptr = self.alloc_ptr, self.link_ptr
        inj_pkts, inj_head = self.inj_pkts, self.inj_head_idx
        pkt_flow, pkt_size = self.pkt_flow, self.pkt_size
        flow_routes = t.flow_routes
        r_flits, r_sources = self.r_flits, t.r_sources
        busy = self.busy
        depth = self.buffer_depth
        moved = self._moved
        moved.clear()
        pending = self._pending
        pending.clear()
        transfers = 0
        latencies = stats.latencies
        pkt_created = self.pkt_created

        for rid, links in enumerate(t.r_links):
            if r_flits[rid] == 0:
                continue
            for chs, slot in links:
                n = len(chs)
                start = link_ptr[slot] % n
                for k in range(n):
                    pos = start + k
                    if pos >= n:
                        pos -= n
                    c = chs[pos]

                    # --- resolve the source feeding channel c ---------
                    owner = out_owner[c]
                    if owner != -1:
                        source = out_src[c]
                    else:
                        # Switch/VC allocation: round-robin over the
                        # router's sources for a head flit requesting c.
                        sources = r_sources[rid]
                        m = len(sources)
                        source = _NO_SOURCE
                        if m:
                            astart = alloc_ptr[c] % m
                            for off in range(m):
                                spos = astart + off
                                if spos >= m:
                                    spos -= m
                                s = sources[spos]
                                if s < C:
                                    if buf_hi[s] == buf_lo[s] or buf_lo[s] != 0:
                                        continue  # empty, or head flit gone
                                    head_pkt = buf_pkt[s]
                                    if flow_routes[pkt_flow[head_pkt]][buf_hops[s]] != c:
                                        continue
                                else:
                                    fid = s - C
                                    queue = inj_pkts[fid]
                                    if not queue or inj_head[fid] != 0:
                                        continue
                                    head_pkt = queue[0]
                                    if flow_routes[fid][0] != c:
                                        continue
                                out_owner[c] = head_pkt
                                out_src[c] = s
                                apos = astart + off + 1
                                alloc_ptr[c] = apos - m if apos >= m else apos
                                source = s
                                owner = head_pkt
                                break
                        if source == _NO_SOURCE:
                            continue

                    # --- head flit of the source ----------------------
                    if source < C:
                        if buf_hi[source] == buf_lo[source]:
                            continue
                        pkt = buf_pkt[source]
                        idx = buf_lo[source]
                        hops = buf_hops[source]
                    else:
                        fid = source - C
                        queue = inj_pkts[fid]
                        if not queue:
                            continue
                        pkt = queue[0]
                        idx = inj_head[fid]
                        hops = 0

                    key = pkt * 1048576 + idx
                    if key in moved:
                        continue
                    route = flow_routes[pkt_flow[pkt]]
                    if hops >= len(route) or route[hops] != c:
                        continue
                    if pkt != out_owner[c]:
                        continue

                    is_last = hops == len(route) - 1
                    if not is_last:
                        # Credit check: the downstream buffer of c must have
                        # room and accept this packet (no interleaving).
                        if buf_hi[c] - buf_lo[c] >= depth:
                            continue
                        if buf_pkt[c] != -1 and buf_pkt[c] != pkt:
                            continue

                    # --- commit ---------------------------------------
                    if source < C:
                        buf_lo[source] = idx + 1
                        self._buffered -= 1
                        if buf_lo[source] == buf_hi[source] and idx == pkt_size[pkt] - 1:
                            buf_pkt[source] = -1
                    else:
                        fid = source - C
                        new_idx = idx + 1
                        if new_idx == pkt_size[pkt]:
                            inj_pkts[fid].popleft()
                            inj_head[fid] = 0
                        else:
                            inj_head[fid] = new_idx
                        self._pending_injection -= 1
                    r_flits[rid] -= 1
                    moved.add(key)
                    busy[c] += 1
                    tail = idx == pkt_size[pkt] - 1
                    if tail:
                        out_owner[c] = -1
                        out_src[c] = _NO_SOURCE
                    if is_last:
                        stats.flits_delivered += 1
                        self._undelivered -= 1
                        if tail:
                            stats.packets_delivered += 1
                            latencies.append(cycle - pkt_created[pkt])
                            # The packet fully left the network: free its
                            # records so memory stays O(in-flight packets),
                            # like the legacy engine's garbage-collected
                            # flit objects.
                            del pkt_flow[pkt]
                            del pkt_size[pkt]
                            del pkt_created[pkt]
                    else:
                        pending.append((c, pkt, idx, hops + 1))
                    transfers += 1
                    apos = pos + 1
                    link_ptr[slot] = apos - n if apos >= n else apos
                    break

        # --- arrivals land after every router has been served ---------
        buf_router = t.buf_router
        for c, pkt, idx, hops in pending:
            if buf_pkt[c] == -1:
                buf_pkt[c] = pkt
                buf_lo[c] = idx
            buf_hi[c] = idx + 1
            buf_hops[c] = hops
            self._buffered += 1
            r_flits[buf_router[c]] += 1
        pending.clear()
        stats.flit_transfers += transfers
        return transfers

    # ------------------------------------------------------------------
    def materialise_busy_cycles(self, stats) -> None:
        """Fold the per-channel transfer counters into the stats dict."""
        channels = self.template.channels
        record = stats.channel_busy_cycles
        for channel, count in self._retired_busy.items():
            record[channel] = record.get(channel, 0) + count
        for cid, count in enumerate(self.busy):
            if count:
                channel = channels[cid]
                record[channel] = record.get(channel, 0) + count


class CompiledSimulator(Simulator):
    """Flit-level wormhole simulation over the compiled network.

    Shares the run loop, injection logic, traffic generation, deadlock
    monitoring and statistics of the legacy :class:`Simulator` — only the
    per-cycle network mechanics are replaced by the array sweep, which is
    what makes the two engines stats-identical by construction everywhere
    except the code under test.
    """

    def _build_network(self, design: NocDesign):
        return CompiledNetwork(design, buffer_depth=self.config.buffer_depth)

    def run(self, max_cycles: int = 10_000, **kwargs):
        try:
            return super().run(max_cycles, **kwargs)
        finally:
            # Fold the array counters into the stats dict even when a
            # deadlock is raised (the legacy engine records them in place).
            self.network.materialise_busy_cycles(self.stats)


simulation_engines.register(ENGINE_COMPILED, CompiledSimulator)

# This module is the simulation_engines registry provider: importing the
# batched engine here (after CompiledSimulator exists — it subclasses
# nothing here but re-uses the template and the cross-check reference)
# makes all three built-ins register together.
from repro.perf import batch_engine as _batch_engine  # noqa: E402,F401
