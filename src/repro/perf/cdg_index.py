"""Incrementally maintained, integer-indexed channel dependency graph.

The seed implementation of Algorithm 1 rebuilds the whole CDG with
``build_cdg(work)`` after every single cycle break, even though a break only
re-routes a handful of flows.  :class:`CDGIndex` removes that rebuild from
the hot loop:

* channels are *interned* to dense integer ids once per removal run, so the
  cycle search hashes and compares small ints instead of nested frozen
  dataclasses (``Channel`` -> ``Link`` -> three string fields);
* adjacency is kept as int sets plus lazily presorted tuples that are
  invalidated only when the vertex they belong to mutates;
* route deltas (``remove_route`` of the old route, ``add_route`` of the new
  one) update the graph in time proportional to the touched routes, and the
  ids whose adjacency changed are collected in a *dirty set* that the
  incremental cycle search (:mod:`repro.perf.cycle_search`) uses to decide
  which cached per-SCC results are still valid.

The index is behaviour-equivalent to a fresh
:func:`repro.core.cdg.build_cdg` of the current route set at every point;
:meth:`CDGIndex.verify_against` asserts exactly that and is wired to the
``cross_check`` debug flag of :class:`repro.core.removal.DeadlockRemover`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.cdg import ChannelDependencyGraph
from repro.errors import DesignError
from repro.model.channels import Channel
from repro.model.routes import RouteSet

#: Sort key of a channel — identical ordering to the ``order=True`` dataclass
#: comparison of :class:`Channel` (link src, dst, index, then VC), computed
#: once per interned channel instead of on every comparison.
ChannelKey = Tuple[str, str, int, int]


def channel_sort_key(channel: Channel) -> ChannelKey:
    """The tuple :class:`Channel` ordering compares, precomputed."""
    link = channel.link
    return (link.src, link.dst, link.index, channel.vc)


class CDGIndex:
    """Dirty-region incremental CDG over interned integer channel ids."""

    def __init__(self):
        # id -> Channel and the reverse interning map.
        self._channels: List[Channel] = []
        self._keys: List[ChannelKey] = []
        self._ids: Dict[Channel, int] = {}
        # id -> adjacent ids.  Entries exist for every interned id; an id is
        # a *live* vertex only while some route uses its channel.
        self._succ: List[Set[int]] = []
        self._pred: List[Set[int]] = []
        # id -> number of route positions currently occupying the channel.
        self._usage: List[int] = []
        # (id, id) -> names of the flows creating the dependency.
        self._edge_flows: Dict[Tuple[int, int], Set[str]] = {}
        # Lazily sorted adjacency (by channel sort key); None = needs resort.
        self._sorted_succ: List[Optional[Tuple[int, ...]]] = []
        # Live vertex ids in channel sort order; None = needs resort.
        self._sorted_vertices: Optional[Tuple[int, ...]] = None
        # Ids whose adjacency changed since the last consume_dirty().
        self._dirty: Set[int] = set()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_routes(cls, routes: RouteSet) -> "CDGIndex":
        """Build the index from a route set (equivalent to ``build_cdg``)."""
        index = cls()
        for flow_name, route in routes.items():
            index.add_route(flow_name, route.channels)
        return index

    def intern(self, channel: Channel) -> int:
        """Dense integer id of ``channel``, allocating one on first use."""
        existing = self._ids.get(channel)
        if existing is not None:
            return existing
        new_id = len(self._channels)
        self._ids[channel] = new_id
        self._channels.append(channel)
        self._keys.append(channel_sort_key(channel))
        self._succ.append(set())
        self._pred.append(set())
        self._usage.append(0)
        self._sorted_succ.append(())
        return new_id

    # ------------------------------------------------------------------
    # route deltas
    # ------------------------------------------------------------------
    def add_route(self, flow_name: str, channels: Iterable[Channel]) -> None:
        """Add one flow's route: vertices, dependencies and usage counts."""
        ids = [self.intern(channel) for channel in channels]
        for channel_id in ids:
            if self._usage[channel_id] == 0:
                self._sorted_vertices = None
            self._usage[channel_id] += 1
        for first, second in zip(ids, ids[1:]):
            self._add_dependency(first, second, flow_name)

    def remove_route(self, flow_name: str, channels: Iterable[Channel]) -> None:
        """Undo :meth:`add_route` for the same flow and channel sequence."""
        ids = [self._ids[channel] for channel in channels]
        # A route may traverse the same channel pair more than once, but the
        # flow is recorded once per distinct edge — remove it exactly once.
        for first, second in dict.fromkeys(zip(ids, ids[1:])):
            self._remove_dependency(first, second, flow_name)
        for channel_id in ids:
            self._usage[channel_id] -= 1
            if self._usage[channel_id] == 0:
                self._sorted_vertices = None
            elif self._usage[channel_id] < 0:
                raise DesignError(
                    f"usage count of {self._channels[channel_id].name} went "
                    "negative; remove_route does not match a prior add_route"
                )

    def apply_route_change(
        self, flow_name: str, old_channels: Iterable[Channel], new_channels: Iterable[Channel]
    ) -> None:
        """Replace one flow's route (the delta a cycle break produces)."""
        self.remove_route(flow_name, old_channels)
        self.add_route(flow_name, new_channels)

    def _add_dependency(self, first: int, second: int, flow_name: str) -> None:
        if first == second:
            raise DesignError(
                f"self-loop dependency on channel {self._channels[first].name}"
            )
        edge = (first, second)
        flows = self._edge_flows.get(edge)
        if flows is None:
            self._edge_flows[edge] = {flow_name}
            self._succ[first].add(second)
            self._pred[second].add(first)
            self._sorted_succ[first] = None
            self._dirty.add(first)
            self._dirty.add(second)
        else:
            flows.add(flow_name)

    def _remove_dependency(self, first: int, second: int, flow_name: str) -> None:
        edge = (first, second)
        flows = self._edge_flows.get(edge)
        if flows is None or flow_name not in flows:
            raise DesignError(
                f"flow {flow_name!r} does not create the dependency "
                f"{self._channels[first].name} -> {self._channels[second].name}"
            )
        flows.discard(flow_name)
        if not flows:
            del self._edge_flows[edge]
            self._succ[first].discard(second)
            self._pred[second].discard(first)
            self._sorted_succ[first] = None
            self._dirty.add(first)
            self._dirty.add(second)

    # ------------------------------------------------------------------
    # cloning
    # ------------------------------------------------------------------
    def clone(self) -> "CDGIndex":
        """Independent deep copy of the index (interning table included).

        Copying the already-built adjacency is substantially cheaper than
        re-interning and re-walking every route of a design, which is what
        :meth:`~repro.perf.design_context.DesignContext.fork_to` exploits
        when a design is copied for a removal run: the copy starts from a
        cloned index instead of a from-scratch build.  Mutations on either
        side never touch the other (all sets and dicts are copied).
        """
        clone = CDGIndex.__new__(CDGIndex)
        clone._channels = list(self._channels)
        clone._keys = list(self._keys)
        clone._ids = dict(self._ids)
        clone._succ = [set(s) for s in self._succ]
        clone._pred = [set(s) for s in self._pred]
        clone._usage = list(self._usage)
        clone._edge_flows = {edge: set(flows) for edge, flows in self._edge_flows.items()}
        clone._sorted_succ = list(self._sorted_succ)
        clone._sorted_vertices = self._sorted_vertices
        clone._dirty = set(self._dirty)
        return clone

    # ------------------------------------------------------------------
    # queries (mirroring ChannelDependencyGraph, over ids)
    # ------------------------------------------------------------------
    def channel_of(self, channel_id: int) -> Channel:
        """The channel a dense id was interned for."""
        return self._channels[channel_id]

    def key_of(self, channel_id: int) -> ChannelKey:
        """Precomputed sort key of an interned id."""
        return self._keys[channel_id]

    def is_live(self, channel_id: int) -> bool:
        """True while at least one route uses the id's channel."""
        return self._usage[channel_id] > 0

    @property
    def interned_count(self) -> int:
        """Number of channels ever interned (the dense id range, live or not)."""
        return len(self._channels)

    @property
    def vertex_count(self) -> int:
        """Number of live vertices (channels used by at least one route)."""
        return sum(1 for usage in self._usage if usage > 0)

    @property
    def edge_count(self) -> int:
        """Number of dependency edges."""
        return len(self._edge_flows)

    def sorted_vertices(self) -> Tuple[int, ...]:
        """Live vertex ids in channel sort order (cached)."""
        if self._sorted_vertices is None:
            live = [i for i in range(len(self._channels)) if self._usage[i] > 0]
            live.sort(key=self._keys.__getitem__)
            self._sorted_vertices = tuple(live)
        return self._sorted_vertices

    def sorted_successors(self, channel_id: int) -> Tuple[int, ...]:
        """Successor ids in channel sort order (cached until mutation)."""
        cached = self._sorted_succ[channel_id]
        if cached is None:
            cached = tuple(sorted(self._succ[channel_id], key=self._keys.__getitem__))
            self._sorted_succ[channel_id] = cached
        return cached

    def successors(self, channel_id: int) -> Set[int]:
        """The raw successor id set (do not mutate)."""
        return self._succ[channel_id]

    def predecessors(self, channel_id: int) -> Set[int]:
        """The raw predecessor id set (do not mutate)."""
        return self._pred[channel_id]

    def flows_on_edge(self, first: int, second: int) -> Set[str]:
        """Flow names creating the dependency ``first -> second`` (copy)."""
        return set(self._edge_flows.get((first, second), ()))

    # ------------------------------------------------------------------
    # dirty tracking
    # ------------------------------------------------------------------
    @property
    def dirty(self) -> Set[int]:
        """Ids whose adjacency changed since the last :meth:`consume_dirty`."""
        return set(self._dirty)

    def consume_dirty(self) -> Set[int]:
        """Return and clear the dirty set (one search epoch ends)."""
        dirty = self._dirty
        self._dirty = set()
        return dirty

    # ------------------------------------------------------------------
    # structure analysis
    # ------------------------------------------------------------------
    def is_acyclic(self) -> bool:
        """Kahn's algorithm over the int adjacency (deadlock-freedom test)."""
        in_degree = {}
        for i in range(len(self._channels)):
            if self._usage[i] > 0:
                in_degree[i] = len(self._pred[i])
        queue = [i for i, degree in in_degree.items() if degree == 0]
        visited = 0
        while queue:
            node = queue.pop()
            visited += 1
            for succ in self._succ[node]:
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    queue.append(succ)
        return visited == len(in_degree)

    def to_cdg(self) -> ChannelDependencyGraph:
        """Materialise an equivalent :class:`ChannelDependencyGraph`."""
        cdg = ChannelDependencyGraph()
        for i in range(len(self._channels)):
            if self._usage[i] > 0:
                cdg.add_channel(self._channels[i])
        for (first, second), flows in self._edge_flows.items():
            for flow in flows:
                cdg.add_dependency(self._channels[first], self._channels[second], flow)
        return cdg

    def verify_against(self, cdg: ChannelDependencyGraph) -> None:
        """Assert exact equivalence with a freshly built CDG.

        Raises :class:`~repro.errors.DesignError` listing the first few
        discrepancies when the incremental state drifted from the
        from-scratch build — the cross-check behind the ``cross_check``
        debug flag of the removal engine.
        """
        problems: List[str] = []
        mine = {self._channels[i] for i in range(len(self._channels)) if self._usage[i] > 0}
        theirs = set(cdg.channels)
        for channel in sorted(mine - theirs):
            problems.append(f"extra vertex {channel.name}")
        for channel in sorted(theirs - mine):
            problems.append(f"missing vertex {channel.name}")
        my_edges = {
            (self._channels[a], self._channels[b]): frozenset(flows)
            for (a, b), flows in self._edge_flows.items()
        }
        their_edges = {
            edge: cdg.flows_on_edge(*edge) for edge in cdg.edges
        }
        for edge in sorted(set(my_edges) - set(their_edges)):
            problems.append(f"extra edge {edge[0].name} -> {edge[1].name}")
        for edge in sorted(set(their_edges) - set(my_edges)):
            problems.append(f"missing edge {edge[0].name} -> {edge[1].name}")
        for edge in sorted(set(my_edges) & set(their_edges)):
            if my_edges[edge] != their_edges[edge]:
                problems.append(
                    f"flow labels differ on {edge[0].name} -> {edge[1].name}: "
                    f"{sorted(my_edges[edge])} != {sorted(their_edges[edge])}"
                )
        if problems:
            shown = "; ".join(problems[:5])
            extra = "" if len(problems) <= 5 else f" (+{len(problems) - 5} more)"
            raise DesignError(
                f"incremental CDG index diverged from full rebuild: {shown}{extra}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CDGIndex(vertices={self.vertex_count}, edges={self.edge_count}, "
            f"interned={len(self._channels)}, dirty={len(self._dirty)})"
        )
