"""Batched wormhole simulation: B runs of one design as one array program.

A latency curve, a seed sweep or a scenario comparison is a *grid* of
simulations of one design that differ only in load point, seed or traffic
pattern.  :class:`~repro.perf.sim_engine.CompiledSimulator` made one run
cheap; this module makes the grid cheap: :func:`run_batch` compiles B
:class:`~repro.perf.sim_engine.SimulationTemplate`-compatible runs into a
single structure-of-arrays numpy program — every per-channel buffer, credit
counter, ownership/arbitration pointer and per-flow injection queue head
lives in one flat ``(B * n,)`` array — and advances all B lanes per cycle
with masked vector sweeps.

Exactness, not approximation: the program reproduces the legacy schedule
**field-identically** (the same :class:`~repro.simulation.stats
.SimulationStats` the ``compiled`` and ``legacy`` engines produce, enforced
by ``cross_check=True`` and the equivalence suite).  The key facts that
make the per-cycle sweep vectorisable are proved against
:meth:`CompiledNetwork.step <repro.perf.sim_engine.CompiledNetwork.step>`:

* *allocation and source facts are start-of-cycle exact* — a buffer is
  drained only at the link slot of its one target channel, and an
  injection queue only at the slot of its route's first channel, which is
  exactly where those facts are read; so switch allocation for every
  channel is one scatter-min over ``(priority, source-position)`` keys
  (the lexicographic argmin realising the legacy round-robin);
* *link winners move only earlier* — credit state can only relax during a
  sweep (a downstream buffer drains at most once per cycle, arrivals land
  after all routers), so the start-of-cycle winner per (lane, link) from a
  second scatter-min over ``(rotation, vc)`` keys is final unless some
  earlier-rotation VC was credit-blocked in a *relaxable* way by a buffer
  that drains at an earlier slot.  Those few (lane, link) pairs are marked
  dirty and replayed exactly, in slot order, against the already-final
  winners of earlier slots; everything else commits vectorised.

Injection is batched too: all fast-path generators (``flows`` and the
spatial re-weightings) consume one uniform draw per eligible flow per
cycle in sorted-flow order, so lanes sharing a seed share a single
transplanted Mersenne-Twister stream (``numpy.random.RandomState`` seeded
with ``random.Random(seed).getstate()`` is bit-identical to the scalar
generator) and one ``random_sample`` serves the whole seed group.
Temporal scenarios (``bursty``, ``trace``) fall back to calling their own
``generate`` per lane — still inside the batched network program.

:class:`BatchedSimulator` is the ``"batched"`` entry of
:data:`repro.api.registry.simulation_engines`: a drop-in single-lane
(B = 1) simulator for the registry contract.  Configurations the batch
cannot express — fault schedules mutate topology and routes mid-run —
transparently construct a :class:`CompiledSimulator` instead, with a
structured ``[noc-lint {...}]`` warning, so correctness never depends on
batch eligibility.  numpy itself is imported lazily (see
:func:`_numpy`): the rest of the package works without it.
"""

from __future__ import annotations

import warnings
from collections import deque
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.api.registry import simulation_engines
from repro.errors import DeadlockDetected, SimulationError
from repro.lint.findings import structured_warning
from repro.model.design import NocDesign
from repro.perf.design_context import DesignContext
from repro.perf.sim_engine import CompiledSimulator, SimulationTemplate
from repro.simulation.deadlock import find_wait_cycle
from repro.simulation.simulator import (
    SimulationConfig,
    Simulator,
    make_traffic_generator,
    stats_divergences,
)
from repro.simulation.stats import SimulationStats
from repro.simulation.traffic_gen import FlowTrafficGenerator

ENGINE_BATCHED = "batched"

#: Sentinel larger than any packed arbitration key.
_BIG = 2**30

_np = None


def _numpy():
    """The lazily imported numpy module.

    The batched engine is the only part of the package that needs numpy;
    importing it here (not at module import) keeps ``import repro`` and
    every other engine working on a numpy-less interpreter, with a clear
    error the moment the ``"batched"`` engine is actually asked to run.
    """
    global _np
    if _np is None:
        try:
            import numpy
        except ImportError as exc:  # pragma: no cover - exercised via tests
            raise SimulationError(
                "the 'batched' simulation engine requires numpy (declared "
                "in setup.py install_requires) but it is not importable; "
                "install numpy or select another simulation engine "
                "(e.g. sim_engine='compiled')"
            ) from exc
        _np = numpy
    return _np


# ----------------------------------------------------------------------
# static compilation
# ----------------------------------------------------------------------


class BatchedTemplate:
    """Numpy view of one design's :class:`SimulationTemplate`.

    Static under simulation, shared by any number of concurrent batch
    programs, and cached on the design's :class:`DesignContext` alongside
    the scalar template it is derived from.
    """

    def __init__(self, template: SimulationTemplate):
        np = _numpy()
        self.template = template
        C = template.channel_count
        S = template.link_slot_count
        R = len(template.switches)
        F = len(template.flow_routes)
        self.C, self.S, self.R, self.F = C, S, R, F

        # Link structure: every channel's dense link slot, its VC position
        # within the link, and the inverse (slot, position) -> channel map.
        slot_of = np.zeros(C, np.int32)
        pos_in_link = np.zeros(C, np.int32)
        link_n = np.zeros(max(S, 1), np.int32)
        link_router = np.zeros(max(S, 1), np.int32)
        nmax = 1
        for links in template.r_links:
            for chs, _slot in links:
                nmax = max(nmax, len(chs))
        slot_vcs = np.zeros((max(S, 1), nmax), np.int32)
        for rid, links in enumerate(template.r_links):
            for chs, slot in links:
                link_router[slot] = rid
                link_n[slot] = len(chs)
                for pos, cid in enumerate(chs):
                    slot_of[cid] = slot
                    pos_in_link[cid] = pos
                    slot_vcs[slot, pos] = cid
        self.slot_of = slot_of
        self.pos_in_link = pos_in_link
        self.link_n = link_n
        self.nmax = nmax
        self.slot_vcs = slot_vcs
        self.slot_vcs_flat = slot_vcs.reshape(-1)

        # Arbitration sources: the position of every source code within its
        # router's rotation, the rotation length per router, and the
        # (router, position) -> code decode table (zero-padded so vector
        # gathers on garbage positions stay in bounds).
        m_of_router = np.array(
            [len(sources) for sources in template.r_sources] or [0], np.int32
        )
        mmax = int(m_of_router.max()) if R else 1
        mmax = max(mmax, 1)
        srcpos = np.zeros(C + F + 1, np.int32)
        code_tab = np.zeros(max(R, 1) * mmax, np.int32)
        for rid, sources in enumerate(template.r_sources):
            for pos, code in enumerate(sources):
                srcpos[code] = pos
                code_tab[rid * mmax + pos] = code
        self.mmax = mmax
        self.srcpos = srcpos
        self.code_tab = code_tab
        # Channel -> its source router / rotation length.
        chan_router = link_router[slot_of]
        self.m_of_chan = m_of_router[chan_router]
        self.chan_rid_scaled = (chan_router * mmax).astype(np.int32)

        # Flow routes as a padded matrix plus per-flow metadata.
        lmax = 1
        for route in template.flow_routes:
            lmax = max(lmax, len(route))
        route_mat = np.zeros((max(F, 1), lmax), np.int32)
        route_len = np.zeros(max(F, 1), np.int32)
        flow_first = np.zeros(max(F, 1), np.int32)
        for fid, route in enumerate(template.flow_routes):
            route_len[fid] = len(route)
            route_mat[fid, : len(route)] = route
            flow_first[fid] = route[0]
        self.lmax = lmax
        self.route_flat = route_mat.reshape(-1)
        self.route_len = route_len
        self.flow_first = flow_first

    @classmethod
    def of(cls, design: NocDesign) -> "BatchedTemplate":
        """The design's cached batched template, (re)compiled when stale."""
        template = SimulationTemplate.of(design)
        context = DesignContext.of(design)
        cached = getattr(context, "batch_template", None)
        if cached is not None and cached.template is template:
            return cached
        compiled = cls(template)
        context.batch_template = compiled
        return compiled


# ----------------------------------------------------------------------
# per-lane adapters
# ----------------------------------------------------------------------


class _LaneView:
    """One lane's buffers exposed through the deadlock-checker surface.

    :func:`repro.simulation.deadlock.find_wait_cycle` only calls
    ``wait_for_edges()``; this adapter reproduces the legacy edge
    iteration order (``SimulationTemplate.wait_order``) from the flat
    batch state of a single lane.
    """

    def __init__(self, program: "_BatchProgram", lane: int):
        self._program = program
        self._lane = lane

    def wait_for_edges(self):
        p = self._program
        t = p.bt.template
        C = p.bt.C
        base = self._lane * C
        cap_base = self._lane * p.cap
        buf_lo, buf_hi = p.buf_lo, p.buf_hi
        buf_pkt, buf_hops = p.buf_pkt, p.buf_hops
        channels = t.channels
        flow_routes = t.flow_routes
        edges = []
        for cid in t.wait_order:
            flat = base + cid
            if buf_hi[flat] == buf_lo[flat]:
                continue
            fid = int(p.pkt_flow[cap_base + int(buf_pkt[flat])])
            route = flow_routes[fid]
            hops = int(buf_hops[flat])
            if hops >= len(route):  # pragma: no cover - buffers never hold arrived flits
                continue
            edges.append((channels[cid], channels[route[hops]]))
        return edges


class _FastInjectionGroup:
    """Lanes sharing one Bernoulli draw stream (same seed, same flow order).

    Every fast-path generator consumes exactly one uniform draw per
    eligible flow per cycle, in sorted-flow order, so one transplanted
    Mersenne-Twister stream serves every lane of the group; the per-lane
    rates matrix is the only thing that differs.
    """

    def __init__(self, program: "_BatchProgram", lanes: List[int]):
        np = _numpy()
        self.lanes = np.array(lanes, np.int32)
        generator = program.generators[lanes[0]]
        order = generator._flow_order
        self.rng = _mirror_rng(generator._rng)
        self.rates = np.array(
            [[program.generators[lane]._rates[name] for name in order] for lane in lanes],
            np.float64,
        )
        self.rate_max = self.rates.max(axis=0) if order else self.rates
        self.n_flows = len(order)
        t = program.bt.template
        design = program.design
        fids = []
        local = []
        sizes = []
        for name in order:
            flow = design.traffic.flow(name)
            fids.append(t.flow_ids.get(name, -1))
            local.append(design.switch_of(flow.src) == design.switch_of(flow.dst))
            sizes.append(flow.packet_size_flits)
        self.fid_arr = np.array(fids, np.int32) if fids else np.zeros(0, np.int32)
        self.local_arr = np.array(local, bool) if local else np.zeros(0, bool)
        self.size_arr = np.array(sizes, np.int32) if sizes else np.zeros(0, np.int32)


def _mirror_rng(rng):
    """A numpy ``RandomState`` emitting ``rng.random()``'s exact stream.

    CPython's ``random.Random`` and numpy's legacy ``RandomState`` share
    the Mersenne-Twister core and the same 53-bit double derivation, so
    transplanting the 624-word state makes ``random_sample`` bit-identical
    to the scalar generator's ``random()`` sequence.  Returns ``None``
    when the state is not the expected MT19937 version (a custom Random
    subclass); callers then fall back to per-lane scalar generation.
    """
    np = _numpy()
    state = rng.getstate()
    if len(state) != 3 or state[0] != 3:  # pragma: no cover - CPython always v3
        return None
    keys_and_pos = state[1]
    mirror = np.random.RandomState(0)
    mirror.set_state(
        ("MT19937", np.array(keys_and_pos[:-1], dtype=np.uint32), int(keys_and_pos[-1]))
    )
    return mirror


def _is_fast_generator(generator) -> bool:
    """True when the generator's per-cycle draws are the base Bernoulli sweep."""
    cls = type(generator)
    return (
        isinstance(generator, FlowTrafficGenerator)
        and cls._injects is FlowTrafficGenerator._injects
        and cls.generate is FlowTrafficGenerator.generate
    )


# ----------------------------------------------------------------------
# the batch program
# ----------------------------------------------------------------------


class _BatchProgram:
    """B concurrent wormhole simulations of one design, stepped together."""

    def __init__(
        self,
        design: NocDesign,
        configs: Sequence[SimulationConfig],
        generators: Sequence[Any],
        stats_list: Sequence[SimulationStats],
    ):
        np = _numpy()
        if not configs:
            raise SimulationError("a batched run needs at least one configuration")
        first = configs[0]
        for config in configs:
            if config.fault_schedule is not None and len(config.fault_schedule):
                raise SimulationError(
                    "the batched engine cannot express fault schedules; "
                    "run those specs through the 'compiled' engine"
                )
            if config.buffer_depth != first.buffer_depth:
                raise SimulationError(
                    "all lanes of a batched run must share buffer_depth "
                    f"({config.buffer_depth} != {first.buffer_depth})"
                )
            if config.watchdog_cycles != first.watchdog_cycles:
                raise SimulationError(
                    "all lanes of a batched run must share watchdog_cycles "
                    f"({config.watchdog_cycles} != {first.watchdog_cycles})"
                )
        self.design = design
        self.configs = list(configs)
        self.generators = list(generators)
        self.stats_list = list(stats_list)
        self.depth = first.buffer_depth
        self.watchdog = first.watchdog_cycles
        self.bt = BatchedTemplate.of(design)
        bt = self.bt
        B = len(configs)
        C, S, F = bt.C, bt.S, bt.F
        self.B = B

        i32 = np.int32
        # --- dynamic state, one flat lane-major array per field ---------
        self.buf_pkt = np.full(B * C, -1, i32)
        self.buf_lo = np.zeros(B * C, i32)
        self.buf_hi = np.zeros(B * C, i32)
        self.buf_hops = np.zeros(B * C, i32)
        #: Local channel id of ``route[buf_hops]`` for the stored packet
        #: (maintained at every arrival; read wherever the scalar engine
        #: recomputes the route lookup).
        self.buf_target = np.zeros(B * C, i32)
        self.out_owner = np.full(B * C, -1, i32)
        self.out_src = np.full(B * C, -1, i32)
        self.alloc_ptr = np.zeros(B * C, i32)
        self.link_ptr = np.zeros(B * max(S, 1), i32)
        self.busy = np.zeros(B * C, np.int64)
        # Injection queues: the head packet (id, next flit index) per
        # (lane, flow) vectorised; the waiting remainder as deques.
        self.q_head_pid = np.full(B * max(F, 1), -1, i32)
        self.q_head_idx = np.zeros(B * max(F, 1), i32)
        self.q_rest_len = np.zeros(B * max(F, 1), i32)
        self.q_rest: List[deque] = [deque() for _ in range(B * max(F, 1))]
        # Packet records, lane-major with a growing per-lane capacity.
        self.cap = 256
        self.pkt_flow = np.zeros(B * self.cap, i32)
        self.pkt_size = np.zeros(B * self.cap, i32)
        self.pkt_created = np.zeros(B * self.cap, i32)
        self.pkt_seq = [0] * B

        # --- per-lane counters ------------------------------------------
        i64 = np.int64
        self.undelivered = np.zeros(B, i64)
        self.buffered = np.zeros(B, i64)
        self.pending_inj = np.zeros(B, i64)
        self.idle = np.zeros(B, i32)
        self.active = np.ones(B, bool)
        self.acc_transfers = np.zeros(B, i64)
        self.acc_flits_delivered = np.zeros(B, i64)
        self.acc_packets_delivered = np.zeros(B, i64)
        self.acc_packets_injected = np.zeros(B, i64)
        self.acc_local_deliveries = np.zeros(B, i64)
        self.acc_packets_lost = np.zeros(B, i64)
        self.acc_flits_lost = np.zeros(B, i64)
        self.latencies: List[List[int]] = [stats.latencies for stats in stats_list]

        # Static tiled index helpers and per-cycle scratch (lane-width
        # dependent — rebuilt whenever finished lanes are compacted away).
        self._build_tiled()

        # --- injection plan ---------------------------------------------
        fast_by_key: Dict[Tuple[Any, ...], List[int]] = {}
        fast_keys: List[Tuple[Any, ...]] = []
        self.slow_lanes: List[int] = []
        for lane, generator in enumerate(self.generators):
            mirror_ok = _is_fast_generator(generator) and _mirror_rng(
                generator._rng
            ) is not None
            if mirror_ok:
                key = (generator.seed, tuple(generator._flow_order))
                if key not in fast_by_key:
                    fast_by_key[key] = []
                    fast_keys.append(key)
                fast_by_key[key].append(lane)
            else:
                self.slow_lanes.append(lane)
        self.fast_groups = [
            _FastInjectionGroup(self, fast_by_key[key]) for key in fast_keys
        ]
        # Flow metadata for the slow (per-lane generate()) path.
        self.flow_info: Dict[str, Tuple[bool, int]] = {}
        for flow in design.traffic.flows:
            is_local = design.switch_of(flow.src) == design.switch_of(flow.dst)
            self.flow_info[flow.name] = (is_local, bt.template.flow_ids.get(flow.name, -1))

    def _build_tiled(self) -> None:
        """(Re)build the lane-tiled index arrays and scratch for width B."""
        np = _numpy()
        bt = self.bt
        B, C, S, F = self.B, bt.C, bt.S, bt.F
        i32 = np.int32
        lane_C = np.repeat(np.arange(B, dtype=i32), C)
        lane_F = np.repeat(np.arange(B, dtype=i32), max(F, 1))
        self.lane_of_slot = np.repeat(np.arange(B, dtype=i32), max(S, 1))
        self.o_C = lane_C * C
        self.o_F_of_flow = lane_F * max(F, 1)
        self.o_C_of_flow = lane_F * C
        self.o_F_by_chan = lane_C * np.int32(max(F, 1))
        self.o_slotbase_by_chan = lane_C * np.int32(max(S, 1))
        self.o_C_by_slot = self.lane_of_slot * C
        self.slot_of_t = np.tile(bt.slot_of, B) + self.o_slotbase_by_chan
        self.pos_in_link_t = np.tile(bt.pos_in_link, B)
        self.link_n_by_chan = np.tile(bt.link_n[bt.slot_of], B)
        self.m_by_chan = np.tile(bt.m_of_chan, B)
        self.rid_scaled_t = np.tile(bt.chan_rid_scaled, B)
        self.srcpos_chan_t = np.tile(bt.srcpos[:C], B)
        self.slot_loc_t = np.tile(np.arange(max(S, 1), dtype=i32), B)
        if F:
            # Per-queue candidate metadata, pre-tiled so the allocation
            # phase is pure gathers on the fresh-head subset.
            self.q_cand_chan_t = self.o_C_of_flow + np.tile(bt.flow_first, B)
            self.q_spos_t = np.tile(bt.srcpos[C : C + F], B)
            self.q_m_t = np.tile(bt.m_of_chan[bt.flow_first], B)
        self._lane_C = lane_C
        self.capoff_C = (lane_C * np.int32(self.cap)).astype(np.int64)
        # Per-cycle scratch.  The per-channel work arrays are only written
        # on the resolved/candidate subsets each cycle; every later read
        # is guarded by a mask derived from those same subsets, so stale
        # values from earlier cycles are never observed.
        BC = B * C
        BS = B * max(S, 1)
        self._src_code = np.empty(BC, i32)
        self._pkt = np.empty(BC, i32)
        self._idx = np.empty(BC, i32)
        self._hops = np.empty(BC, i32)
        self._occ = np.empty(BC, i32)
        self._rotpos = np.empty(BC, i32)
        self._win_srcpos = np.empty(BC, i32)
        self._alloc_valid = np.zeros(BC, bool)
        self._has_cand = np.zeros(BC, bool)
        self._is_last = np.zeros(BC, bool)
        self._credit_ok = np.zeros(BC, bool)
        self._relax = np.zeros(BC, bool)
        self._wkey = np.empty(BS, i32)
        self._dirty_slot = np.zeros(BS, bool)

    def _compact(self) -> None:
        """Narrow the program to the still-active lanes.

        Lanes finish at very different cycles (a low-load lane drains in a
        few hundred cycles, a saturated one runs the full horizon): paying
        full batch width until the last lane exits would erase much of the
        batching win, so finished lanes — whose stats are already flushed
        by :meth:`_finish` — are sliced out of every state array.
        """
        np = _numpy()
        keep = np.nonzero(self.active)[0]
        if keep.size == self.B:
            return
        bt = self.bt
        C, S, F = bt.C, bt.S, bt.F
        keep_list = keep.tolist()

        def take(arr, width):
            return arr.reshape(self.B, width)[keep].reshape(-1).copy()

        for name in (
            "buf_pkt", "buf_lo", "buf_hi", "buf_hops", "buf_target",
            "out_owner", "out_src", "alloc_ptr", "busy",
        ):
            setattr(self, name, take(getattr(self, name), C))
        self.link_ptr = take(self.link_ptr, max(S, 1))
        for name in ("q_head_pid", "q_head_idx", "q_rest_len"):
            setattr(self, name, take(getattr(self, name), max(F, 1)))
        rest: List[deque] = []
        for lane in keep_list:
            rest.extend(self.q_rest[lane * max(F, 1) : (lane + 1) * max(F, 1)])
        self.q_rest = rest
        for name in ("pkt_flow", "pkt_size", "pkt_created"):
            setattr(self, name, take(getattr(self, name), self.cap))
        for name in (
            "undelivered", "buffered", "pending_inj", "idle", "active",
            "acc_transfers", "acc_flits_delivered", "acc_packets_delivered",
            "acc_packets_injected", "acc_local_deliveries",
            "acc_packets_lost", "acc_flits_lost",
        ):
            setattr(self, name, getattr(self, name)[keep].copy())
        self.pkt_seq = [self.pkt_seq[lane] for lane in keep_list]
        self.latencies = [self.latencies[lane] for lane in keep_list]
        self.stats_list = [self.stats_list[lane] for lane in keep_list]
        self.generators = [self.generators[lane] for lane in keep_list]
        remap = {old: new for new, old in enumerate(keep_list)}
        self.slow_lanes = [
            remap[lane] for lane in self.slow_lanes if lane in remap
        ]
        groups = []
        for group in self.fast_groups:
            rows = [
                i for i, lane in enumerate(group.lanes.tolist()) if lane in remap
            ]
            if not rows:
                # Nobody reads this seed group's draws any more; its
                # stream simply stops, like the scalar generators it
                # mirrors stop being called.
                continue
            group.lanes = np.array(
                [remap[int(group.lanes[i])] for i in rows], np.int32
            )
            group.rates = group.rates[rows]
            group.rate_max = group.rates.max(axis=0)
            groups.append(group)
        self.fast_groups = groups
        self.B = int(keep.size)
        self._build_tiled()

    # ------------------------------------------------------------------
    # injection
    # ------------------------------------------------------------------
    def _grow_packets(self, needed: int) -> None:
        np = _numpy()
        new_cap = self.cap
        while new_cap <= needed:
            new_cap *= 2
        B, old_cap = self.B, self.cap
        for name in ("pkt_flow", "pkt_size", "pkt_created"):
            old = getattr(self, name)
            grown = np.zeros(B * new_cap, np.int32)
            for lane in range(B):
                grown[lane * new_cap : lane * new_cap + old_cap] = old[
                    lane * old_cap : (lane + 1) * old_cap
                ]
            setattr(self, name, grown)
        self.cap = new_cap
        self.capoff_C = (self._lane_C * np.int32(new_cap)).astype(np.int64)

    def _enqueue(self, lane: int, fid: int, pid: int, size: int, cycle: int) -> None:
        """Queue all flits of one packet at its source router (one lane)."""
        if pid >= self.cap:
            self._grow_packets(pid)
        rec = lane * self.cap + pid
        self.pkt_flow[rec] = fid
        self.pkt_size[rec] = size
        self.pkt_created[rec] = cycle
        flat = lane * self.bt.F + fid
        if self.q_head_pid[flat] < 0 and not self.q_rest[flat]:
            self.q_head_pid[flat] = pid
            self.q_head_idx[flat] = 0
        else:
            self.q_rest[flat].append(pid)
            self.q_rest_len[flat] += 1
        self.undelivered[lane] += size
        self.pending_inj[lane] += size

    def _inject_fast(self, group: _FastInjectionGroup, cycle: int) -> None:
        np = _numpy()
        B, F = self.B, self.bt.F
        draws = group.rng.random_sample(group.n_flows)
        if not (draws < group.rate_max).any():
            return
        # A full broadcast compare beats a fancy column-subset copy.
        hits = group.rates > draws
        rows, col_ids = np.nonzero(hits)
        if not rows.size:
            return
        # Sequential per-lane packet ids in sorted-flow order — exactly the
        # order the scalar generator assigns them (rows/cols from nonzero
        # are lane-major, flow-ascending).
        lanes = group.lanes[rows]
        counts = np.bincount(rows, minlength=len(group.lanes))
        starts = np.concatenate(([0], np.cumsum(counts[:-1])))
        seq = np.array(self.pkt_seq, np.int64)[lanes]
        pids = seq + (np.arange(rows.size) - starts[rows])
        for lane, n in zip(group.lanes.tolist(), counts.tolist()):
            if n:
                self.pkt_seq[lane] += n
        self.acc_packets_injected += np.bincount(lanes, minlength=B)
        loc = group.local_arr[col_ids]
        sizes = group.size_arr[col_ids]
        if loc.any():
            # Same-switch traffic never enters the network: delivered
            # through the local NI one cycle later, latency 1.
            lcount = np.bincount(lanes[loc], minlength=B)
            self.acc_packets_delivered += lcount
            self.acc_local_deliveries += lcount
            self.acc_flits_delivered += np.bincount(
                lanes[loc], weights=sizes[loc], minlength=B
            ).astype(np.int64)
            for lane in np.nonzero(lcount)[0].tolist():
                self.latencies[lane].extend([1] * int(lcount[lane]))
        net = ~loc
        if not net.any():
            return
        lanes_n = lanes[net]
        pids_n = pids[net]
        sizes_n = sizes[net]
        fids_n = group.fid_arr[col_ids[net]]
        top = int(pids_n.max())
        if top >= self.cap:
            self._grow_packets(top)
        rec = lanes_n.astype(np.int64) * self.cap + pids_n
        self.pkt_flow[rec] = fids_n
        self.pkt_size[rec] = sizes_n
        self.pkt_created[rec] = cycle
        # A fast-path flow fires at most once per lane per cycle, so the
        # (lane, flow) queue slots below are distinct — plain scatters.
        flats = lanes_n * np.int32(F) + fids_n
        empty = (self.q_head_pid[flats] < 0) & (self.q_rest_len[flats] == 0)
        self.q_head_pid[flats[empty]] = pids_n[empty].astype(np.int32)
        self.q_head_idx[flats[empty]] = 0
        for i in np.nonzero(~empty)[0].tolist():
            flat = int(flats[i])
            self.q_rest[flat].append(int(pids_n[i]))
            self.q_rest_len[flat] += 1
        flit_sum = np.bincount(lanes_n, weights=sizes_n, minlength=B).astype(np.int64)
        self.undelivered += flit_sum
        self.pending_inj += flit_sum

    def _inject_slow(self, lane: int, cycle: int) -> None:
        for packet in self.generators[lane].generate(cycle):
            self.acc_packets_injected[lane] += 1
            is_local, fid = self.flow_info[packet.flow_name]
            if is_local:
                packet.delivered_cycle = cycle + 1
                self.acc_packets_delivered[lane] += 1
                self.acc_local_deliveries[lane] += 1
                self.acc_flits_delivered[lane] += packet.size_flits
                self.latencies[lane].append(packet.latency)
            elif not packet.route or fid < 0:
                # Only reachable under fault injection (which the batched
                # engine rejects), kept for parity with the scalar loop.
                self.acc_packets_lost[lane] += 1
                self.acc_flits_lost[lane] += packet.size_flits
            else:
                pid = packet.packet_id
                self.pkt_seq[lane] = max(self.pkt_seq[lane], pid + 1)
                self._enqueue(lane, fid, pid, packet.size_flits, cycle)

    def _inject(self, cycle: int) -> None:
        for group in self.fast_groups:
            self._inject_fast(group, cycle)
        for lane in self.slow_lanes:
            if self.active[lane]:
                self._inject_slow(lane, cycle)

    # ------------------------------------------------------------------
    # one batched cycle
    # ------------------------------------------------------------------
    def _step(self, cycle: int):
        """Advance every active lane by one cycle.

        Returns ``(transfers_per_lane, deadlocked)`` where ``deadlocked``
        is a list of ``(lane, blocked_channels)`` pairs whose watchdog
        tripped with a confirmed wait-for cycle.
        """
        np = _numpy()
        bt = self.bt
        B, C, S, F = self.B, bt.C, bt.S, bt.F
        depth = self.depth
        i32 = np.int32
        i64 = np.int64

        # ---- phase 1: switch allocation (start-of-cycle exact) --------
        # Allocation only ever matters on *unowned* channels (an owned
        # channel keeps its wormhole source), so candidates whose target
        # is owned are dropped before any priority math — at saturation
        # that is most of them.  (Compaction guarantees every tracked
        # lane is active, so no lane mask is needed here.)
        owner_neg = self.out_owner == -1
        # Buffer sources: a head flit (lo == 0) of a non-empty buffer
        # requests its one target channel.
        bl = np.nonzero((self.buf_lo == 0) & (self.buf_hi > 0))[0]
        cand_t = self.o_C[bl] + self.buf_target[bl]
        keep_b = owner_neg[cand_t]
        bl = bl[keep_b]
        cand_t = cand_t[keep_b]
        prio_b = self.srcpos_chan_t[bl] - self.alloc_ptr[cand_t]
        neg_b = prio_b < 0
        prio_b[neg_b] += self.m_by_chan[cand_t[neg_b]]
        key_b = prio_b * i32(bt.mmax) + self.srcpos_chan_t[bl]
        # Queue sources: a fresh head packet (flit index 0) requests its
        # route's first channel.
        if F:
            ql = np.nonzero((self.q_head_pid >= 0) & (self.q_head_idx == 0))[0]
            cand_tq = self.q_cand_chan_t[ql]
            keep_q = owner_neg[cand_tq]
            ql = ql[keep_q]
            cand_tq = cand_tq[keep_q]
            spos_q = self.q_spos_t[ql]
            prio_q = spos_q - self.alloc_ptr[cand_tq]
            neg_q = prio_q < 0
            prio_q[neg_q] += self.q_m_t[ql[neg_q]]
            key_q = prio_q * i32(bt.mmax) + spos_q
            cand_all = np.concatenate((cand_t, cand_tq))
            key_all = np.concatenate((key_b, key_q))
        else:
            cand_all, key_all = cand_t, key_b
        alloc_valid = self._alloc_valid
        alloc_valid.fill(False)
        src_code = self._src_code
        np.copyto(src_code, self.out_src)
        win_srcpos = self._win_srcpos
        if cand_all.size:
            # Winner per requested channel = smallest (priority, srcpos)
            # key.  Pack channel and key into one integer and sort: the
            # first entry per channel is its winner — faster than a
            # scatter-min ufunc at these sizes.
            ka = i64(bt.mmax) * i64(bt.mmax)
            pack = cand_all.astype(i64) * ka + key_all
            pack.sort()
            chans = pack // ka
            first = np.empty(pack.shape, bool)
            first[0] = True
            np.not_equal(chans[1:], chans[:-1], out=first[1:])
            aw = chans[first]
            win_srcpos[aw] = (pack[first] - aw * ka) % i64(bt.mmax)
            alloc_valid[aw] = True
            # Every winner is on a previously unowned channel: it
            # resolves to the allocation winner right away.
            src_code[aw] = bt.code_tab[self.rid_scaled_t[aw] + win_srcpos[aw]]
        else:
            aw = np.empty(0, i64)

        # ---- phase 2: resolve each channel's feeding source -----------
        # Everything downstream only ever reads channels with a resolved
        # source, so gather head-flit facts on that subset and scatter
        # them into the persistent scratch arrays.
        res = np.nonzero(alloc_valid | ~owner_neg)[0]
        sc = src_code[res]
        is_q = sc >= C
        sb = self.o_C[res] + np.where(is_q, 0, sc)
        pkt_s = self.buf_pkt[sb]
        idx_s = self.buf_lo[sb]
        hops_s = self.buf_hops[sb]
        flits_s = self.buf_hi[sb] - idx_s
        qi = np.nonzero(is_q)[0]
        if qi.size:
            sq = self.o_F_by_chan[res[qi]] + (sc[qi] - i32(C))
            qpkt = self.q_head_pid[sq]
            pkt_s[qi] = qpkt
            idx_s[qi] = self.q_head_idx[sq]
            hops_s[qi] = 0
            flits_s[qi] = qpkt >= 0
        good = flits_s > 0
        hc = res[good]
        has_cand = self._has_cand
        has_cand.fill(False)
        has_cand[hc] = True
        pkt = self._pkt
        idx = self._idx
        hops = self._hops
        pkt[res] = pkt_s
        idx[res] = idx_s
        hops[res] = hops_s
        pkt_hc = pkt_s[good]
        fid_hc = self.pkt_flow[self.capoff_C[hc] + pkt_hc]
        last_hc = hops_s[good] == bt.route_len[fid_hc] - 1
        is_last = self._is_last
        is_last[hc] = last_hc

        # ---- phase 3: credit + start-of-cycle link winners ------------
        occ = self._occ
        np.subtract(self.buf_hi, self.buf_lo, out=occ)
        occ_hc = occ[hc]
        down_hc = self.buf_pkt[hc]
        pkt_ok_hc = (down_hc == -1) | (down_hc == pkt_hc)
        credit_hc = (occ_hc < depth) & pkt_ok_hc
        credit_ok = self._credit_ok
        credit_ok[hc] = credit_hc
        ready_hc = last_hc | credit_hc
        slot_hc = self.slot_of_t[hc]
        rp_hc = self.pos_in_link_t[hc] - self.link_ptr[slot_hc]
        neg_r = rp_hc < 0
        rp_hc[neg_r] += self.link_n_by_chan[hc[neg_r]]
        rotpos = self._rotpos
        rotpos[hc] = rp_hc
        ri = hc[ready_hc]
        lkey = rp_hc[ready_hc] * i32(bt.nmax) + self.pos_in_link_t[ri]
        wkey = self._wkey
        wkey.fill(_BIG)
        np.minimum.at(wkey, slot_hc[ready_hc], lkey)
        win_valid = wkey < _BIG
        win_rot = wkey // i32(bt.nmax)
        win_pos = wkey - win_rot * i32(bt.nmax)

        # ---- phase 4: dirty links (winner may move earlier) -----------
        # A start-of-cycle credit block is *relaxable* when the one drain
        # its downstream buffer can see this cycle flips the verdict; if
        # that drain's slot precedes this link in the sweep and the
        # blocked VC is visited before the predicted winner, the winner
        # may change — replay those links exactly, everything else is
        # final.
        # Only non-ready candidates can be relaxably blocked, and the
        # feeds test below only reads ``relax`` at targets that are
        # themselves non-ready candidates, so the whole computation runs
        # on that subset (stale scratch at ready targets is masked by
        # their own is_last/credit_ok term).
        nr = ~ready_hc
        bn = hc[nr]
        occ_bn = occ_hc[nr]
        pkt_ok_bn = pkt_ok_hc[nr]
        down_bn = down_hc[nr]
        down_size_bn = self.pkt_size[self.capoff_C[bn] + np.maximum(down_bn, 0)]
        relax_bn = ((occ_bn == depth) & pkt_ok_bn) | (
            ~pkt_ok_bn & (occ_bn == 1) & (self.buf_lo[bn] == down_size_bn - 1)
        )
        relax = self._relax
        relax[bn] = relax_bn
        bi = bn[relax_bn]
        if bi.size:
            # The drain that would flip the verdict is a transfer on the
            # stored head's target channel fed by this very buffer — and
            # source resolution is start-of-cycle exact, so demand all the
            # start-of-cycle-computable necessities now: the target must be
            # fed by this buffer, must transfer at an earlier link in the
            # sweep, must itself be able to move (ready, or relaxably
            # blocked in turn), and must sit no later than its own link's
            # predicted winner (winners only ever move earlier).  The
            # target is then itself a candidate channel, so reading the
            # subset-written scratch at it is safe (conjunction with the
            # src_code test masks any stale value).
            tgt = self.o_C[bi] + self.buf_target[bi]
            sig = self.slot_of_t[tgt]
            feeds = src_code[tgt] == (bi - self.o_C[bi])
            feeds &= sig < self.slot_of_t[bi]
            # The blocked VC only dethrones the predicted winner if it is
            # visited strictly earlier; the feeder only drains if it can
            # still be its own link's winner (winners only move earlier,
            # so a VC past the predicted winner never wins).
            feeds &= (
                rotpos[bi] * i32(bt.nmax) + self.pos_in_link_t[bi]
                < wkey[self.slot_of_t[bi]]
            )
            feeds &= is_last[tgt] | credit_ok[tgt] | relax[tgt]
            feeds &= (
                rotpos[tgt] * i32(bt.nmax) + self.pos_in_link_t[tgt]
                <= wkey[sig]
            )
            bi = bi[feeds]
        dirty_slot = self._dirty_slot
        if bi.size:
            dirty_slot[self.slot_of_t[bi]] = True
            # nonzero on the scatter mask yields the dirty slots already
            # sorted lane-major, slot-ascending — the replay order.
            dirty = np.nonzero(dirty_slot)[0]
            self._redo_dirty(
                dirty, win_valid, win_rot, win_pos,
                alloc_valid, owner_neg, src_code, pkt, has_cand, is_last,
                win_srcpos, occ,
            )
        else:
            dirty = bi

        # ---- phase 5: allocation side effects on clean links ----------
        # The scalar sweep commits ownership (and advances the rotation
        # pointer) for every *visited* unowned channel with a candidate —
        # visited means rotation position at or before the final winner
        # (all positions when nothing transfers).  Exactly the freshly
        # allocated channels (aw) qualify; dirty links were replayed
        # with their side effects above.
        if aw.size:
            slot_aw = self.slot_of_t[aw]
            visit = rotpos[aw] <= win_rot[slot_aw]
            if dirty.size:
                visit &= ~dirty_slot[slot_aw]
            vi = aw[visit]
            self.out_owner[vi] = pkt[vi]
            self.out_src[vi] = src_code[vi]
            next_ptr = win_srcpos[vi] + 1
            m_vi = self.m_by_chan[vi]
            wrap = next_ptr >= m_vi
            next_ptr[wrap] -= m_vi[wrap]
            self.alloc_ptr[vi] = next_ptr
        if dirty.size:
            dirty_slot[dirty] = False

        # ---- phase 6: commit all transfers ----------------------------
        w = np.nonzero(win_valid)[0]  # lane-major, slot-ascending
        if w.size:
            w_lane = self.lane_of_slot[w]
            slt_w = self.slot_loc_t[w]
            w_loc = bt.slot_vcs_flat[slt_w * i32(bt.nmax) + win_pos[w]]
            w_cf = self.o_C_by_slot[w] + w_loc
            cap_w = self.capoff_C[w_cf]
            w_pkt = pkt[w_cf]
            w_idx = idx[w_cf]
            w_src = src_code[w_cf]
            w_last = is_last[w_cf]
            w_tail = w_idx == self.pkt_size[cap_w + w_pkt] - 1

            # Link rotation pointer advances past the winner.
            next_pos = win_pos[w] + 1
            n_w = bt.link_n[slt_w]
            ovr = next_pos >= n_w
            next_pos[ovr] -= n_w[ovr]
            self.link_ptr[w] = next_pos
            self.busy[w_cf] += 1
            transfers = np.bincount(w_lane, minlength=B)

            # Drain buffer sources.
            from_buf = w_src < C
            wl_b = w_lane[from_buf]
            sbw = wl_b * i32(C) + w_src[from_buf]
            new_lo = self.buf_lo[sbw] + 1
            self.buf_lo[sbw] = new_lo
            emptied = (new_lo == self.buf_hi[sbw]) & w_tail[from_buf]
            self.buf_pkt[sbw[emptied]] = -1
            self.buffered -= np.bincount(wl_b, minlength=B)

            # Drain injection-queue sources.
            from_q = ~from_buf
            if from_q.any():
                wl_q = w_lane[from_q]
                qfw = wl_q * i32(F) + (w_src[from_q] - C)
                q_tail = w_tail[from_q]
                fresh = ~q_tail
                self.q_head_idx[qfw[fresh]] = w_idx[from_q][fresh] + 1
                for flat in qfw[q_tail].tolist():
                    rest = self.q_rest[flat]
                    if rest:
                        self.q_head_pid[flat] = rest.popleft()
                        self.q_rest_len[flat] -= 1
                    else:
                        self.q_head_pid[flat] = -1
                    self.q_head_idx[flat] = 0
                self.pending_inj -= np.bincount(wl_q, minlength=B)

            # Tail flits release wormhole ownership.
            released = w_cf[w_tail]
            self.out_owner[released] = -1
            self.out_src[released] = -1

            # Deliveries at the last hop.
            delivered = np.bincount(w_lane[w_last], minlength=B)
            self.acc_flits_delivered += delivered
            self.undelivered -= delivered
            done = w_last & w_tail
            if done.any():
                done_lane = w_lane[done]
                self.acc_packets_delivered += np.bincount(done_lane, minlength=B)
                waited = cycle - self.pkt_created[cap_w[done] + w_pkt[done]]
                for lane, value in zip(done_lane.tolist(), waited.tolist()):
                    self.latencies[lane].append(value)

            # Arrivals land after every router has been served.
            arr = ~w_last
            if arr.any():
                a_cf = w_cf[arr]
                a_pkt = w_pkt[arr]
                a_idx = w_idx[arr]
                a_hops = hops[a_cf] + 1
                was_free = self.buf_pkt[a_cf] == -1
                self.buf_pkt[a_cf[was_free]] = a_pkt[was_free]
                self.buf_lo[a_cf[was_free]] = a_idx[was_free]
                self.buf_hi[a_cf] = a_idx + 1
                self.buf_hops[a_cf] = a_hops
                a_fid = self.pkt_flow[cap_w[arr] + a_pkt]
                self.buf_target[a_cf] = bt.route_flat[
                    a_fid * i32(bt.lmax) + a_hops
                ]
                self.buffered += np.bincount(w_lane[arr], minlength=B)
            self.acc_transfers += transfers
        else:
            transfers = np.zeros(B, np.int64)

        # ---- phase 7: deadlock watchdog -------------------------------
        progress = (transfers > 0) | (self.buffered == 0)
        self.idle[progress] = 0
        stuck = ~progress & self.active
        self.idle[stuck] += 1
        deadlocked = []
        if stuck.any():
            for lane in np.nonzero(self.idle >= self.watchdog)[0].tolist():
                if not self.active[lane]:
                    continue
                channels = find_wait_cycle(_LaneView(self, lane))
                if channels is None:
                    self.idle[lane] = 0
                else:
                    deadlocked.append((lane, channels))
        return transfers, deadlocked

    # ------------------------------------------------------------------
    def _redo_dirty(
        self, dirty, win_valid, win_rot, win_pos,
        alloc_valid, owner_neg, src_code, pkt, has_cand, is_last,
        win_srcpos, occ,
    ) -> None:
        """Replay marked links exactly, in ascending global slot order.

        Uses only start-of-cycle facts plus the already-final winners of
        earlier slots of the same lane (ascending order makes them final
        by the time they are read): a blocked VC's downstream buffer has
        drained exactly when the winner of its one drain slot is that
        buffer's target channel fed by that buffer.  Allocation side
        effects for the VCs the replay visits are applied here directly
        (phase 5 skips dirty links).
        """
        bt = self.bt
        C, S = bt.C, bt.S
        depth = self.depth
        nmax = bt.nmax
        svf = bt.slot_vcs_flat
        link_n = bt.link_n
        slot_of = bt.slot_of
        link_ptr = self.link_ptr
        out_owner = self.out_owner
        out_src = self.out_src
        alloc_ptr = self.alloc_ptr
        m_by_chan = self.m_by_chan
        buf_pkt = self.buf_pkt
        buf_target = self.buf_target
        buf_lo = self.buf_lo
        pkt_size = self.pkt_size
        cap = self.cap
        big_rot = _BIG // nmax
        for g in dirty.tolist():
            lane, j = divmod(g, S)
            base = lane * C
            n = int(link_n[j])
            start = int(link_ptr[g])
            committed = False
            for k in range(n):
                pos = start + k
                if pos >= n:
                    pos -= n
                cf = base + int(svf[j * nmax + pos])
                if owner_neg[cf] and alloc_valid[cf]:
                    # Visited unowned channel with a candidate: ownership
                    # commits here even when credit then fails.
                    out_owner[cf] = pkt[cf]
                    out_src[cf] = src_code[cf]
                    nxt = int(win_srcpos[cf]) + 1
                    m = int(m_by_chan[cf])
                    alloc_ptr[cf] = nxt - m if nxt >= m else nxt
                # Head-flit facts are start-of-cycle exact: the dense
                # candidate mask already encodes "resolved source with a
                # flit to send" (and skips owned-but-empty sources).
                if not has_cand[cf]:
                    continue
                if not is_last[cf]:
                    cur_occ = int(occ[cf])
                    cur_pkt = int(buf_pkt[cf])
                    if cur_occ > 0:
                        target = int(buf_target[cf])
                        sj = int(slot_of[target])
                        sigma = lane * S + sj
                        if sj < j and win_valid[sigma]:
                            x = int(svf[sj * nmax + int(win_pos[sigma])])
                            if x == target and int(src_code[base + x]) == cf - base:
                                # The downstream buffer drained at an
                                # earlier slot this cycle.
                                cur_occ -= 1
                                if cur_occ == 0 and int(buf_lo[cf]) == int(
                                    pkt_size[lane * cap + cur_pkt]
                                ) - 1:
                                    cur_pkt = -1
                    if cur_occ >= depth:
                        continue
                    if cur_pkt != -1 and cur_pkt != int(pkt[cf]):
                        continue
                # Commit this VC as the link's final winner.
                win_valid[g] = True
                win_rot[g] = k
                win_pos[g] = pos
                committed = True
                break
            if not committed:
                win_valid[g] = False
                win_rot[g] = big_rot
                win_pos[g] = 0

    # ------------------------------------------------------------------
    # run loop
    # ------------------------------------------------------------------
    def _finish(self, lane: int, cycle: int, blocked=None) -> None:
        """Flush one lane's counters into its stats and retire the lane."""
        np = _numpy()
        self.active[lane] = False
        stats = self.stats_list[lane]
        stats.cycles_run = cycle
        if blocked is not None:
            stats.deadlock_cycle = cycle
            stats.deadlocked_channels = list(blocked)
        stats.packets_injected = int(self.acc_packets_injected[lane])
        stats.packets_delivered = int(self.acc_packets_delivered[lane])
        stats.flits_delivered = int(self.acc_flits_delivered[lane])
        stats.flit_transfers = int(self.acc_transfers[lane])
        stats.local_deliveries = int(self.acc_local_deliveries[lane])
        stats.packets_lost = int(self.acc_packets_lost[lane])
        stats.flits_lost = int(self.acc_flits_lost[lane])
        C = self.bt.C
        channels = self.bt.template.channels
        busy = self.busy[lane * C : (lane + 1) * C]
        record = stats.channel_busy_cycles
        for cid in np.nonzero(busy)[0].tolist():
            record[channels[cid]] = int(busy[cid])

    def run(
        self,
        max_cycles: int,
        *,
        drain: bool = True,
        drain_cycles: int = 5_000,
    ) -> None:
        np = _numpy()
        cycle = 0
        for _ in range(max_cycles):
            if self.B == 0:
                break
            self._inject(cycle)
            _transfers, deadlocked = self._step(cycle)
            cycle += 1
            if deadlocked:
                for lane, channels in deadlocked:
                    self._finish(lane, cycle, blocked=channels)
                self._compact()
        if drain:
            for _ in range(drain_cycles):
                done = np.nonzero(self.undelivered == 0)[0]
                if done.size:
                    for lane in done.tolist():
                        self._finish(lane, cycle)
                    self._compact()
                if self.B == 0:
                    break
                _transfers, deadlocked = self._step(cycle)
                cycle += 1
                if deadlocked:
                    for lane, channels in deadlocked:
                        self._finish(lane, cycle, blocked=channels)
                    self._compact()
        for lane in range(self.B):
            self._finish(lane, cycle)


# ----------------------------------------------------------------------
# public API
# ----------------------------------------------------------------------


def run_batch(
    design: NocDesign,
    configs: Sequence[SimulationConfig],
    *,
    max_cycles: int = 10_000,
    drain: bool = True,
    drain_cycles: int = 5_000,
    cross_check: bool = False,
    generators: Optional[Sequence[Any]] = None,
) -> List[SimulationStats]:
    """Run B simulations of one design as a single array program.

    ``configs`` vary freely along ``injection_scale`` / ``seed`` /
    ``traffic_scenario`` / ``scenario_params``; ``buffer_depth`` and
    ``watchdog_cycles`` must agree across lanes and fault schedules are
    rejected (route swaps mid-run cannot be expressed in the shared
    template).  Returns one :class:`SimulationStats` per config, in
    order, field-identical to what ``build_simulator(design, config,
    engine="compiled").run(...)`` would produce lane by lane —
    ``cross_check=True`` enforces exactly that and raises
    :class:`SimulationError` on any divergence.

    ``generators`` optionally supplies pre-built traffic generators (one
    per config, as :func:`make_traffic_generator` would build them) so
    callers can read ``offered_flits_per_cycle`` without building them
    twice.
    """
    from repro.model.validation import validate_design

    validate_design(design)
    if generators is None:
        generators = [make_traffic_generator(design, config) for config in configs]
    stats_list = [SimulationStats(design_name=design.name) for _ in configs]
    program = _BatchProgram(design, configs, generators, stats_list)
    program.run(max_cycles, drain=drain, drain_cycles=drain_cycles)
    if cross_check:
        for lane, config in enumerate(configs):
            reference = CompiledSimulator(design, config).run(
                max_cycles, drain=drain, drain_cycles=drain_cycles
            )
            problems = stats_divergences(stats_list[lane], reference)
            if problems:
                shown = "; ".join(problems[:5])
                extra = "" if len(problems) <= 5 else f" (+{len(problems) - 5} more)"
                raise SimulationError(
                    f"batched lane {lane} diverged from the 'compiled' "
                    f"reference: {shown}{extra}"
                )
    return stats_list


class BatchedSimulator(Simulator):
    """Single-lane front of the batch program (the registry contract).

    ``simulation_engines`` entries are ``callable(design, config) ->
    simulator``; this class satisfies it by running a B = 1 batch, so
    everything the other engines offer (``simulate_design``,
    ``measure_load_point``, the CLI ``--engine`` flag) works with
    ``"batched"`` unchanged.  Grids should prefer :func:`run_batch` /
    the :class:`~repro.api.runner.Runner` batch planner, which is where
    the speedup lives.

    A config carrying a fault schedule cannot batch (recovery rewrites
    topology and routes mid-run): construction then transparently returns
    a :class:`CompiledSimulator` for the same arguments, after emitting a
    structured warning, so callers always get a correct simulator.
    """

    def __new__(cls, design: NocDesign, config: Optional[SimulationConfig] = None):
        schedule = config.fault_schedule if config is not None else None
        if schedule is not None and len(schedule):
            warnings.warn(
                structured_warning(
                    "batched-engine-fallback",
                    "the 'batched' engine cannot express fault schedules; "
                    "falling back to the 'compiled' engine for this run",
                ),
                RuntimeWarning,
                stacklevel=2,
            )
            return CompiledSimulator(design, config)
        return object.__new__(cls)

    def _build_network(self, design: NocDesign):
        # The batch program owns all network state; built per run() call.
        return None

    def run(
        self,
        max_cycles: int = 10_000,
        *,
        drain: bool = True,
        drain_cycles: int = 5_000,
        raise_on_deadlock: bool = False,
    ) -> SimulationStats:
        program = _BatchProgram(
            self.design, [self.config], [self.generator], [self.stats]
        )
        program.run(max_cycles, drain=drain, drain_cycles=drain_cycles)
        self._cycle = self.stats.cycles_run
        if raise_on_deadlock and self.stats.deadlock_cycle is not None:
            raise DeadlockDetected(
                self.stats.deadlock_cycle, self.stats.deadlocked_channels
            )
        return self.stats


simulation_engines.register(ENGINE_BATCHED, BatchedSimulator)
