"""Pluggable strategy registries for the experiment facade.

The evaluation pipeline is assembled from three interchangeable pieces —
the removal engine, the resource-ordering class-assignment strategy and the
topology-synthesis backend.  Each piece is looked up by name in a
:class:`Registry` instead of being dispatched over hardcoded string
comparisons, so new implementations plug in with a decorator::

    from repro.api.registry import removal_engines

    @removal_engines.register("my_engine")
    def _my_engine(remover, work, rng):
        ...

and immediately become valid values for :class:`~repro.api.spec.RunSpec`
fields, CLI flags and the library keyword arguments.

Each registry names a *provider* module — the module that registers the
built-in implementations.  The provider is imported lazily on first lookup,
so ``from repro.api.registry import removal_engines`` never drags in the
whole algorithm stack, while ``removal_engines.get("incremental")`` always
finds the built-ins no matter which module was imported first.
"""

from __future__ import annotations

import importlib
from typing import Any, Callable, Dict, List, Optional

from repro.errors import RegistryError


class Registry:
    """A name -> implementation mapping with decorator registration.

    Parameters
    ----------
    kind:
        Human-readable description of what is registered (used in error
        messages, e.g. ``"removal engine"``).
    provider:
        Dotted path of the module that registers the built-in entries.  It
        is imported (once) the first time the registry is queried, so the
        built-ins are always visible regardless of import order.
    """

    def __init__(self, kind: str, *, provider: Optional[str] = None):
        self.kind = kind
        self._provider = provider
        self._provider_loaded = provider is None
        self._entries: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    def register(self, name: str, obj: Any = None):
        """Register ``obj`` under ``name``; usable as a decorator.

        Re-registering an existing name raises :class:`RegistryError` —
        replacing an implementation must be an explicit
        :meth:`unregister` + :meth:`register` pair, never an accident.
        """
        if obj is None:

            def decorator(fn):
                self._add(name, fn)
                return fn

            return decorator
        self._add(name, obj)
        return obj

    def unregister(self, name: str) -> None:
        """Remove a registered entry (mainly for tests and plugins)."""
        self._load_provider()
        if name not in self._entries:
            raise RegistryError(f"cannot unregister unknown {self.kind} {name!r}")
        del self._entries[name]

    def _add(self, name: str, obj: Any) -> None:
        if not isinstance(name, str) or not name:
            raise RegistryError(
                f"{self.kind} names must be non-empty strings, got {name!r}"
            )
        if name in self._entries:
            raise RegistryError(f"{self.kind} {name!r} is already registered")
        self._entries[name] = obj

    # ------------------------------------------------------------------
    def _load_provider(self) -> None:
        if not self._provider_loaded:
            self._provider_loaded = True
            importlib.import_module(self._provider)

    def get(self, name: str) -> Any:
        """Look up an implementation; unknown names raise :class:`RegistryError`."""
        self._load_provider()
        try:
            return self._entries[name]
        except KeyError:
            raise RegistryError(
                f"unknown {self.kind} {name!r}; available: {', '.join(self.names())}"
            ) from None

    def names(self) -> List[str]:
        """Sorted names of all registered implementations."""
        self._load_provider()
        return sorted(self._entries)

    def __contains__(self, name: object) -> bool:
        self._load_provider()
        return name in self._entries

    def __len__(self) -> int:
        self._load_provider()
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry({self.kind!r}, names={self.names()!r})"


#: Removal-engine loop implementations (built-ins live in
#: :mod:`repro.core.removal`: ``"context"``, ``"incremental"`` and
#: ``"rebuild"``).
removal_engines = Registry("removal engine", provider="repro.core.removal")

#: Resource-class assignment strategies for the ordering baseline
#: (built-ins live in :mod:`repro.routing.ordering`: ``"hop_index"`` and
#: ``"layered"``).
ordering_strategies = Registry(
    "resource-ordering strategy", provider="repro.routing.ordering"
)

#: Topology-synthesis backends (built-ins live in
#: :mod:`repro.synthesis.builder`: ``"custom"`` and ``"mesh"``).
synthesis_backends = Registry("synthesis backend", provider="repro.synthesis.builder")

#: Shortest-path routing engines (built-ins live in
#: :mod:`repro.routing.shortest_path`: ``"indexed"``, the polynomial indexed
#: search, and ``"legacy"``, the seed path-tuple search kept as the
#: cross-check reference).
routing_engines = Registry("routing engine", provider="repro.routing.shortest_path")

#: Wormhole simulation engines (``"compiled"``, the int-indexed array
#: simulator from :mod:`repro.perf.sim_engine` — the default —
#: ``"batched"``, the numpy structure-of-arrays engine from
#: :mod:`repro.perf.batch_engine` that runs whole sweeps as one array
#: program, and ``"legacy"``, the seed object-per-flit
#: :class:`repro.simulation.simulator.Simulator` kept as the cross-check
#: reference).  The provider imports the legacy simulator and batched
#: engine modules, so all built-ins register together.
simulation_engines = Registry("simulation engine", provider="repro.perf.sim_engine")

#: Parameterized topology families (built-ins live in
#: :mod:`repro.synthesis.families`: ``"ring"``, ``"mesh"``, ``"torus"``,
#: ``"fat_tree"``, ``"clos"``/``"vl2"`` and ``"dragonfly"``).  A family
#: builds a :class:`~repro.synthesis.families.FamilyInstance` — topology
#: plus deterministic core-attachment order — from validated closed-form
#: parameters; :attr:`repro.api.spec.RunSpec.topology_family` selects one.
topology_families = Registry("topology family", provider="repro.synthesis.families")

#: Traffic-scenario generators for the wormhole simulator (built-ins live in
#: :mod:`repro.simulation.scenarios`: ``"flows"`` — the paper's
#: bandwidth-proportional traffic — plus ``"uniform"``, ``"hotspot"``,
#: ``"transpose"`` and ``"bursty"``; all seed-deterministic).
traffic_scenarios = Registry("traffic scenario", provider="repro.simulation.scenarios")

#: Correlated fault-schedule generators (built-ins live in
#: :mod:`repro.simulation.fault_models`: ``"uniform"`` — the PR 6
#: uniform-random reference — plus ``"spatial_burst"``, ``"cascade"`` and
#: ``"mtbf"``).  A model is a seeded pure function
#: ``(design, **params) -> EventSchedule``;
#: :attr:`repro.api.spec.RunSpec.fault_model` selects one and
#: :attr:`~repro.api.spec.RunSpec.fault_params` parameterizes it.
fault_models = Registry("fault model", provider="repro.simulation.fault_models")

#: Recovery policies applied by the in-simulation
#: :class:`~repro.simulation.recovery.RecoveryController` when a fault batch
#: lands (built-ins live in :mod:`repro.simulation.recovery`: ``"removal"``
#: — reroute + re-run deadlock removal, the default — plus ``"reroute"``,
#: ``"idle"`` and ``"protection"``).
#: :attr:`repro.api.spec.RunSpec.fault_recovery` selects one.
recovery_policies = Registry("recovery policy", provider="repro.simulation.recovery")
