"""Uniform run records: one JSON schema shared by tables, figures and the CLI.

A :class:`RunResult` is the scalar outcome of executing one
:class:`~repro.api.spec.RunSpec`: the VC counts, power and area of the
unprotected / deadlock-removal / resource-ordering variants, plus removal
bookkeeping (iterations, runtime, initial cycle count).  Every derived
percentage of the paper's claims is a property computed from those scalars
with exactly the formulas of
:class:`repro.analysis.experiments.MethodComparison`, so figures rendered
from cached results are byte-identical to figures rendered from a fresh
run (JSON round-trips Python floats losslessly).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from repro.analysis.metrics import percent_reduction
from repro.api.spec import RunSpec
from repro.errors import PlanError

#: Version tag of the result schema; cached documents with a different
#: version are treated as cache misses by the runner.
RESULT_FORMAT_VERSION = 1


@dataclass
class RunResult:
    """Scalar outcome of one evaluation point (one :class:`RunSpec`)."""

    spec: RunSpec
    removal_extra_vcs: int
    ordering_extra_vcs: int
    removal_iterations: int
    initial_cycle_count: int
    removal_runtime_s: float
    unprotected_power_mw: float
    removal_power_mw: float
    ordering_power_mw: float
    unprotected_area_mm2: float
    removal_area_mm2: float
    ordering_area_mm2: float
    #: Simulation metrics at the spec's load point, or ``None`` when the
    #: spec requested no simulation (``injection_scale`` unset).  Shape:
    #: ``{"engine", "traffic_scenario", "injection_scale", "sim_cycles",
    #: "buffer_depth", "variants": {variant: {latency/throughput metrics}}}``
    #: with one variants entry per design (``removal``, ``ordering``,
    #: ``unprotected``).
    simulation: Optional[Dict[str, Any]] = None
    #: True when this record was served from the artifact cache (runtime
    #: state, not part of the serialized schema).
    cache_hit: bool = field(default=False, compare=False)
    #: How many executions this record took (> 1 only when a worker died
    #: mid-spec and :func:`repro.perf.executor.parallel_map` retried it).
    #: Excluded from equality so a retried record still matches a clean one.
    attempts: int = field(default=1, compare=False)

    # ------------------------------------------------------------------
    # derived claims — formulas identical to MethodComparison
    # ------------------------------------------------------------------
    @property
    def benchmark(self) -> str:
        return self.spec.benchmark

    @property
    def switch_count(self) -> int:
        return self.spec.switch_count

    @property
    def vc_reduction_percent(self) -> float:
        """How many fewer VCs removal needs than ordering (the 88% claim)."""
        return percent_reduction(self.ordering_extra_vcs, self.removal_extra_vcs)

    @property
    def power_saving_percent(self) -> float:
        """Power saved by removal relative to ordering (the 8.6% claim)."""
        return percent_reduction(self.ordering_power_mw, self.removal_power_mw)

    @property
    def area_saving_percent(self) -> float:
        """Router+link area saved by removal relative to ordering (66% claim)."""
        return percent_reduction(self.ordering_area_mm2, self.removal_area_mm2)

    @property
    def removal_power_overhead_percent(self) -> float:
        """Power overhead of removal vs. the unprotected design (<5% claim)."""
        if self.unprotected_power_mw == 0:
            return 0.0
        return (self.removal_power_mw / self.unprotected_power_mw - 1.0) * 100.0

    @property
    def removal_area_overhead_percent(self) -> float:
        """Area overhead of removal vs. the unprotected design (<5% claim)."""
        if self.unprotected_area_mm2 == 0:
            return 0.0
        return (self.removal_area_mm2 / self.unprotected_area_mm2 - 1.0) * 100.0

    @property
    def normalised_ordering_power(self) -> float:
        """Ordering power normalised to removal power (Figure 10's y-axis)."""
        if self.removal_power_mw == 0:
            return 0.0
        return self.ordering_power_mw / self.removal_power_mw

    # ------------------------------------------------------------------
    def as_row(self) -> Dict[str, Any]:
        """Flat dictionary for tables and JSON dumps (legacy row schema)."""
        return {
            "benchmark": self.benchmark,
            "switch_count": self.switch_count,
            "removal_extra_vcs": self.removal_extra_vcs,
            "ordering_extra_vcs": self.ordering_extra_vcs,
            "vc_reduction_percent": round(self.vc_reduction_percent, 2),
            "removal_power_mw": round(self.removal_power_mw, 3),
            "ordering_power_mw": round(self.ordering_power_mw, 3),
            "unprotected_power_mw": round(self.unprotected_power_mw, 3),
            "power_saving_percent": round(self.power_saving_percent, 2),
            "removal_area_mm2": round(self.removal_area_mm2, 4),
            "ordering_area_mm2": round(self.ordering_area_mm2, 4),
            "unprotected_area_mm2": round(self.unprotected_area_mm2, 4),
            "area_saving_percent": round(self.area_saving_percent, 2),
            "removal_power_overhead_percent": round(self.removal_power_overhead_percent, 2),
            "removal_area_overhead_percent": round(self.removal_area_overhead_percent, 2),
            "removal_runtime_s": round(self.removal_runtime_s, 4),
        }

    def to_dict(self) -> Dict[str, Any]:
        """Serializable record (the artifact-cache ``"result"`` document).

        The ``simulation`` section is only present when the spec requested
        one, so documents of cost-only specs stay byte-identical to the
        previous schema.
        """
        document = {
            "format_version": RESULT_FORMAT_VERSION,
            "spec": self.spec.to_dict(),
            "removal_extra_vcs": self.removal_extra_vcs,
            "ordering_extra_vcs": self.ordering_extra_vcs,
            "removal_iterations": self.removal_iterations,
            "initial_cycle_count": self.initial_cycle_count,
            "removal_runtime_s": self.removal_runtime_s,
            "unprotected_power_mw": self.unprotected_power_mw,
            "removal_power_mw": self.removal_power_mw,
            "ordering_power_mw": self.ordering_power_mw,
            "unprotected_area_mm2": self.unprotected_area_mm2,
            "removal_area_mm2": self.removal_area_mm2,
            "ordering_area_mm2": self.ordering_area_mm2,
        }
        if self.simulation is not None:
            document["simulation"] = self.simulation
        if self.attempts > 1:
            document["attempts"] = self.attempts
        return document

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunResult":
        """Rebuild a record; malformed documents raise :class:`PlanError`."""
        if not isinstance(data, Mapping):
            raise PlanError(f"run result must be a mapping, got {type(data).__name__}")
        version = data.get("format_version", RESULT_FORMAT_VERSION)
        if version != RESULT_FORMAT_VERSION:
            raise PlanError(
                f"unsupported result format version {version} "
                f"(expected {RESULT_FORMAT_VERSION})"
            )
        try:
            return cls(
                spec=RunSpec.from_dict(data["spec"]),
                removal_extra_vcs=data["removal_extra_vcs"],
                ordering_extra_vcs=data["ordering_extra_vcs"],
                removal_iterations=data["removal_iterations"],
                initial_cycle_count=data["initial_cycle_count"],
                removal_runtime_s=data["removal_runtime_s"],
                unprotected_power_mw=data["unprotected_power_mw"],
                removal_power_mw=data["removal_power_mw"],
                ordering_power_mw=data["ordering_power_mw"],
                unprotected_area_mm2=data["unprotected_area_mm2"],
                removal_area_mm2=data["removal_area_mm2"],
                ordering_area_mm2=data["ordering_area_mm2"],
                simulation=data.get("simulation"),
                attempts=data.get("attempts", 1),
            )
        except KeyError as exc:
            raise PlanError(f"run result document is missing field {exc}") from exc

    def __post_init__(self):
        if self.spec.injection_scale is not None and self.simulation is None:
            raise PlanError(
                "run result for a simulating spec (injection_scale="
                f"{self.spec.injection_scale}) has no simulation section"
            )

    # ------------------------------------------------------------------
    @classmethod
    def from_comparison(
        cls, spec: RunSpec, comparison, simulation: Optional[Dict[str, Any]] = None
    ) -> "RunResult":
        """Reduce a :class:`~repro.analysis.experiments.MethodComparison`."""
        return cls(
            spec=spec,
            simulation=simulation,
            removal_extra_vcs=comparison.removal_extra_vcs,
            ordering_extra_vcs=comparison.ordering_extra_vcs,
            removal_iterations=comparison.removal.iterations,
            initial_cycle_count=comparison.removal.initial_cycle_count,
            removal_runtime_s=comparison.removal.runtime_seconds,
            unprotected_power_mw=comparison.unprotected_power.total_power_mw,
            removal_power_mw=comparison.removal_power.total_power_mw,
            ordering_power_mw=comparison.ordering_power.total_power_mw,
            unprotected_area_mm2=comparison.unprotected_area.total_area_mm2,
            removal_area_mm2=comparison.removal_area.total_area_mm2,
            ordering_area_mm2=comparison.ordering_area.total_area_mm2,
        )
