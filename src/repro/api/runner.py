"""Plan execution: the :class:`Runner` behind the declarative experiment API.

The runner turns :class:`~repro.api.spec.RunSpec` points into
:class:`~repro.api.result.RunResult` records:

* **cache first** — each spec's fingerprint is looked up in the
  content-addressed :class:`~repro.api.cache.ArtifactCache`; a hit skips
  the whole synthesize/remove/order/estimate pipeline.  On a result miss
  the synthesized design itself may still be served from the cache (specs
  that differ only in engine or strategy share it).
* **cheap fan-out** — plans execute over
  :func:`repro.perf.executor.parallel_map`; only the small spec dictionary
  crosses the process boundary, and every worker resolves the benchmark
  traffic once per ``(name, seed)`` through a per-process memo instead of
  unpickling a full :class:`CommunicationGraph` per point.
* **uniform records** — results use the one JSON schema of
  :class:`RunResult`, shared by tables, figure formatters and the CLI.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.analysis.experiments import compare_methods
from repro.api.cache import ArtifactCache
from repro.api.result import RunResult
from repro.api.spec import ExperimentPlan, RunSpec
from repro.errors import ReproError
from repro.model.serialization import design_from_dict, design_to_dict
from repro.perf.executor import parallel_map, resolve_jobs

RESULT_KIND = "result"
DESIGN_KIND = "design"

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "NOC_DEADLOCK_CACHE_DIR"


def default_cache_dir() -> Path:
    """``$NOC_DEADLOCK_CACHE_DIR`` or ``~/.cache/noc-deadlock``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override).expanduser()
    return Path.home() / ".cache" / "noc-deadlock"


def execute_spec(spec: RunSpec, cache: Optional[ArtifactCache] = None) -> RunResult:
    """Execute one spec, consulting and feeding ``cache`` when given.

    Cached documents are never trusted: any entry that fails to
    deserialize (corrupt, stale schema version, missing fields) is treated
    as a miss and recomputed, not raised.
    """
    if cache is not None:
        document = cache.get(RESULT_KIND, spec.fingerprint())
        if document is not None:
            try:
                result = RunResult.from_dict(document)
            except ReproError:
                result = None
            if result is not None:
                result.cache_hit = True
                return result

    unprotected = None
    design_key = spec.synthesis_fingerprint()
    if cache is not None:
        design_doc = cache.get(DESIGN_KIND, design_key)
        if design_doc is not None:
            try:
                unprotected = design_from_dict(design_doc)
            except ReproError:
                unprotected = None

    # compare_methods resolves the benchmark name through the per-process
    # memo only when it actually has to synthesize (design-cache miss).
    comparison = compare_methods(
        spec.benchmark,
        spec.switch_count,
        seed=spec.seed,
        synthesis_overrides=spec.synthesis,
        engine=spec.engine,
        ordering_strategy=spec.ordering_strategy,
        synthesis_backend=spec.synthesis_backend,
        routing_engine=spec.routing_engine,
        topology_family=spec.topology_family,
        family_params=spec.family_params,
        unprotected=unprotected,
    )
    simulation = _simulate_spec(spec, comparison) if spec.injection_scale else None
    result = RunResult.from_comparison(spec, comparison, simulation=simulation)
    if cache is not None:
        if unprotected is None:
            cache.put(DESIGN_KIND, design_key, design_to_dict(comparison.unprotected))
        cache.put(RESULT_KIND, spec.fingerprint(), result.to_dict())
    return result


#: Design variants a simulating spec evaluates, in record order.
SIMULATED_VARIANTS = ("unprotected", "removal", "ordering")


def _simulate_spec(spec: RunSpec, comparison) -> Dict[str, Any]:
    """Wormhole-simulate the comparison's designs at the spec's load point.

    All three variants run with the same engine, scenario and seed (the
    seed is :attr:`RunSpec.seed`, so repeated executions of one spec are
    reproducible); deadlocks — expected for the unprotected variant under
    pressure — are recorded in the metrics, never raised.
    """
    from repro.analysis.performance import measure_load_point  # local: lazy sim import
    from repro.simulation.fault_models import build_fault_schedule  # local: lazy sim import

    designs = {
        "unprotected": comparison.unprotected,
        "removal": comparison.removal.design,
        "ordering": comparison.ordering.design,
    }
    # Resolve a fault-schedule request (explicit document or fault-model
    # generator) once, against the unprotected design: the protected
    # variants only ever *add* channels on the same physical links, so a
    # schedule drawn here targets links that exist in every variant — all
    # three degrade under identical faults.  The cascade model also reads
    # the unprotected design's link loads, which every variant shares.
    schedule = build_fault_schedule(
        comparison.unprotected,
        fault_model=spec.fault_model,
        fault_params=spec.fault_params,
        fault_schedule=spec.fault_schedule,
        seed=spec.seed,
    )
    variants = {
        variant: measure_load_point(
            designs[variant],
            injection_scale=spec.injection_scale,
            max_cycles=spec.sim_cycles,
            buffer_depth=spec.buffer_depth,
            seed=spec.seed,
            traffic_scenario=spec.traffic_scenario,
            scenario_params=spec.scenario_params,
            sim_engine=spec.sim_engine,
            fault_schedule=schedule,
            fault_recovery=spec.fault_recovery,
        )
        for variant in SIMULATED_VARIANTS
    }
    simulation = {
        "engine": spec.sim_engine,
        "traffic_scenario": spec.traffic_scenario,
        "injection_scale": spec.injection_scale,
        "sim_cycles": spec.sim_cycles,
        "buffer_depth": spec.buffer_depth,
        "seed": spec.seed,
        "variants": variants,
    }
    if spec.scenario_params:
        simulation["scenario_params"] = dict(spec.scenario_params)
    if spec.fault_schedule is not None:
        simulation["fault_schedule"] = dict(spec.fault_schedule)
    if spec.fault_model is not None:
        simulation["fault_model"] = spec.fault_model
        if spec.fault_params:
            simulation["fault_params"] = dict(spec.fault_params)
    if schedule is not None:
        simulation["fault_recovery"] = spec.fault_recovery
    return simulation


def _run_spec_task(task: Tuple[Dict[str, Any], Optional[str]]) -> RunResult:
    """Process-pool worker: one spec dictionary + cache directory.

    Module-level so :func:`parallel_map` can pickle it; only the small spec
    dictionary travels to the worker, never a design or traffic object.
    """
    spec_data, cache_dir = task
    spec = RunSpec.from_dict(spec_data)
    cache = ArtifactCache(cache_dir) if cache_dir else None
    return execute_spec(spec, cache)


@dataclass
class PlanResult:
    """Everything a finished plan produced, in ``plan.all_specs()`` order."""

    plan: ExperimentPlan
    results: List[RunResult] = field(default_factory=list)
    #: Memoised render_reports() output (reports are pure folds of the
    #: results, so rendering once is enough for print + to_dict).
    _rendered: Optional[List[Tuple[str, Dict[str, Any]]]] = field(
        default=None, repr=False, compare=False
    )

    # ------------------------------------------------------------------
    @property
    def cache_hits(self) -> int:
        return sum(1 for result in self.results if result.cache_hit)

    def results_by_fingerprint(self) -> Dict[str, RunResult]:
        return {result.spec.fingerprint(): result for result in self.results}

    def result_for(self, spec: RunSpec) -> RunResult:
        """The record of one spec (KeyError when the plan never ran it)."""
        return self.results_by_fingerprint()[spec.fingerprint()]

    def rows(self) -> List[Dict[str, Any]]:
        """Legacy flat rows, one per executed spec."""
        return [result.as_row() for result in self.results]

    def render_reports(self) -> List[Tuple[str, Dict[str, Any]]]:
        """Render every requested report, in plan order.

        Returns ``(type, document)`` pairs; the documents are exactly what
        the legacy per-figure helpers produce, so a figure plan's output is
        byte-identical to the ``figures`` subcommand.
        """
        from repro.api.reports import report_types  # local: avoid import cycle

        if self._rendered is None:
            lookup = self.results_by_fingerprint()
            rendered: List[Tuple[str, Dict[str, Any]]] = []
            for request in self.plan.reports:
                report = report_types.get(request.type)
                rendered.append((request.type, report.render(request.params, lookup)))
            self._rendered = rendered
        return self._rendered

    def to_dict(self) -> Dict[str, Any]:
        return {
            "plan": self.plan.to_dict(),
            "results": [result.to_dict() for result in self.results],
            "reports": [
                {"type": name, "data": document}
                for name, document in self.render_reports()
            ],
        }


class Runner:
    """Executes specs and plans, optionally cached and in parallel.

    Parameters
    ----------
    cache_dir:
        Artifact-cache directory; ``None`` disables caching entirely.
    jobs:
        Worker-process count for plans, as in ``noc-deadlock figures -j``
        (``None``/``0``/``1`` = serial, negative = one per CPU).
    """

    def __init__(
        self,
        *,
        cache_dir: Optional[Union[str, Path]] = None,
        jobs: Optional[int] = None,
    ):
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.jobs = jobs
        self.cache = ArtifactCache(self.cache_dir) if self.cache_dir else None

    # ------------------------------------------------------------------
    def run_spec(self, spec: RunSpec) -> RunResult:
        """Execute a single spec in-process."""
        return execute_spec(spec, self.cache)

    def run(self, plan: ExperimentPlan) -> PlanResult:
        """Execute every spec of ``plan`` (deduplicated) and return results."""
        specs = plan.all_specs()
        if resolve_jobs(self.jobs) <= 1 or len(specs) <= 1:
            # Serial path stays in-process so self.cache accounts hits/misses.
            results = [execute_spec(spec, self.cache) for spec in specs]
        else:
            tasks = [(spec.to_dict(), self.cache_dir) for spec in specs]
            attempts: List[int] = []
            results = parallel_map(
                _run_spec_task, tasks, jobs=self.jobs, attempts_out=attempts
            )
            for result, tries in zip(results, attempts):
                result.attempts = tries
        return PlanResult(plan=plan, results=results)


def run_plan(
    plan: Union[ExperimentPlan, str, Path],
    *,
    cache_dir: Optional[Union[str, Path]] = None,
    jobs: Optional[int] = None,
) -> PlanResult:
    """Convenience wrapper: load (when given a path) and execute a plan."""
    if not isinstance(plan, ExperimentPlan):
        plan = ExperimentPlan.load(plan)
    return Runner(cache_dir=cache_dir, jobs=jobs).run(plan)
