"""Plan execution: the :class:`Runner` behind the declarative experiment API.

The runner turns :class:`~repro.api.spec.RunSpec` points into
:class:`~repro.api.result.RunResult` records:

* **cache first** — each spec's fingerprint is looked up in the
  content-addressed :class:`~repro.api.cache.ArtifactCache`; a hit skips
  the whole synthesize/remove/order/estimate pipeline.  On a result miss
  the synthesized design itself may still be served from the cache (specs
  that differ only in engine or strategy share it).
* **cost bundles** — the cost side of a record (removal, ordering, power,
  area *and* the three variant designs) is content-addressed separately
  under :meth:`RunSpec.cost_fingerprint`, so the load points of a latency
  sweep — which differ only along the simulation axis — pay the removal
  pipeline once instead of once per point on a cold cache.
* **batched simulation** — simulating specs with ``sim_engine: "batched"``
  that share a cost bundle are grouped by :func:`_plan_batches` and run as
  one structure-of-arrays program per design variant
  (:func:`repro.analysis.performance.measure_load_grid`), still yielding
  one cached :class:`RunResult` per spec with unchanged fingerprints and
  record bytes.  Specs a batch cannot express fall back per-spec with a
  structured ``[noc-lint {...}]`` warning.
* **cheap fan-out** — plans execute over
  :func:`repro.perf.executor.parallel_map`; only the small spec dictionary
  crosses the process boundary, and every worker resolves the benchmark
  traffic once per ``(name, seed)`` through a per-process memo instead of
  unpickling a full :class:`CommunicationGraph` per point.
* **uniform records** — results use the one JSON schema of
  :class:`RunResult`, shared by tables, figure formatters and the CLI.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.analysis.experiments import compare_methods
from repro.api.cache import ArtifactCache
from repro.api.result import RunResult
from repro.api.spec import ExperimentPlan, RunSpec
from repro.errors import ReproError
from repro.lint.findings import structured_warning
from repro.model.design import NocDesign
from repro.model.serialization import design_from_dict, design_to_dict
from repro.perf.executor import parallel_map, resolve_jobs

RESULT_KIND = "result"
DESIGN_KIND = "design"
COST_KIND = "costs"

#: Version tag of the cost-bundle cache document; bump on schema changes.
COST_FORMAT_VERSION = 1

#: Registry name of the batch-capable simulation engine.  A string (not an
#: import from :mod:`repro.perf.batch_engine`) so planning a batch never
#: imports the simulation stack.
ENGINE_BATCHED = "batched"

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "NOC_DEADLOCK_CACHE_DIR"


def default_cache_dir() -> Path:
    """``$NOC_DEADLOCK_CACHE_DIR`` or ``~/.cache/noc-deadlock``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override).expanduser()
    return Path.home() / ".cache" / "noc-deadlock"


#: Design variants a simulating spec evaluates, in record order.
SIMULATED_VARIANTS = ("unprotected", "removal", "ordering")

#: Scalar fields a cost bundle carries — exactly the non-simulation fields
#: of :class:`RunResult`, keyed by their constructor names.
_COST_SCALAR_FIELDS = (
    "removal_extra_vcs",
    "ordering_extra_vcs",
    "removal_iterations",
    "initial_cycle_count",
    "removal_runtime_s",
    "unprotected_power_mw",
    "removal_power_mw",
    "ordering_power_mw",
    "unprotected_area_mm2",
    "removal_area_mm2",
    "ordering_area_mm2",
)


@dataclass
class _CostBundle:
    """Cost-side outcome of one design point, shared across load points.

    ``scalars`` are the :class:`RunResult` constructor keywords (VC
    counts, removal bookkeeping, power, area); ``designs`` maps each
    :data:`SIMULATED_VARIANTS` entry to its :class:`NocDesign`.  Every
    spec sharing a :meth:`RunSpec.cost_fingerprint` shares one bundle, so
    its records carry *identical* cost scalars (including
    ``removal_runtime_s``) no matter which load point ran first.
    """

    scalars: Dict[str, Any]
    designs: Dict[str, NocDesign]


def _bundle_from_comparison(comparison) -> _CostBundle:
    """Reduce a :class:`~repro.analysis.experiments.MethodComparison`."""
    return _CostBundle(
        scalars={
            "removal_extra_vcs": comparison.removal_extra_vcs,
            "ordering_extra_vcs": comparison.ordering_extra_vcs,
            "removal_iterations": comparison.removal.iterations,
            "initial_cycle_count": comparison.removal.initial_cycle_count,
            "removal_runtime_s": comparison.removal.runtime_seconds,
            "unprotected_power_mw": comparison.unprotected_power.total_power_mw,
            "removal_power_mw": comparison.removal_power.total_power_mw,
            "ordering_power_mw": comparison.ordering_power.total_power_mw,
            "unprotected_area_mm2": comparison.unprotected_area.total_area_mm2,
            "removal_area_mm2": comparison.removal_area.total_area_mm2,
            "ordering_area_mm2": comparison.ordering_area.total_area_mm2,
        },
        designs={
            "unprotected": comparison.unprotected,
            "removal": comparison.removal.design,
            "ordering": comparison.ordering.design,
        },
    )


def _bundle_to_document(bundle: _CostBundle) -> Dict[str, Any]:
    return {
        "format_version": COST_FORMAT_VERSION,
        "scalars": dict(bundle.scalars),
        "designs": {
            variant: design_to_dict(bundle.designs[variant])
            for variant in SIMULATED_VARIANTS
        },
    }


def _bundle_from_document(document: Mapping[str, Any]) -> Optional[_CostBundle]:
    """Rebuild a cached cost bundle; any malformation is a miss (``None``)."""
    try:
        if document.get("format_version") != COST_FORMAT_VERSION:
            return None
        scalars = {name: document["scalars"][name] for name in _COST_SCALAR_FIELDS}
        designs = {
            variant: design_from_dict(document["designs"][variant])
            for variant in SIMULATED_VARIANTS
        }
    except (KeyError, TypeError, ReproError):
        return None
    return _CostBundle(scalars=scalars, designs=designs)


def _resolve_costs(spec: RunSpec, cache: Optional[ArtifactCache] = None) -> _CostBundle:
    """The spec's cost bundle: cached under ``cost_fingerprint`` or computed.

    On a bundle miss the synthesized (unprotected) design may still be
    served from the ``design`` cache (specs differing only in engine or
    strategy share it), exactly as before the cost-bundle layer.
    """
    cost_key = spec.cost_fingerprint()
    if cache is not None:
        document = cache.get(COST_KIND, cost_key)
        if document is not None:
            bundle = _bundle_from_document(document)
            if bundle is not None:
                return bundle

    unprotected = None
    design_key = spec.synthesis_fingerprint()
    if cache is not None:
        design_doc = cache.get(DESIGN_KIND, design_key)
        if design_doc is not None:
            try:
                unprotected = design_from_dict(design_doc)
            except ReproError:
                unprotected = None

    # compare_methods resolves the benchmark name through the per-process
    # memo only when it actually has to synthesize (design-cache miss).
    comparison = compare_methods(
        spec.benchmark,
        spec.switch_count,
        seed=spec.seed,
        synthesis_overrides=spec.synthesis,
        engine=spec.engine,
        ordering_strategy=spec.ordering_strategy,
        synthesis_backend=spec.synthesis_backend,
        routing_engine=spec.routing_engine,
        topology_family=spec.topology_family,
        family_params=spec.family_params,
        unprotected=unprotected,
    )
    bundle = _bundle_from_comparison(comparison)
    if cache is not None:
        if unprotected is None:
            cache.put(DESIGN_KIND, design_key, design_to_dict(comparison.unprotected))
        cache.put(COST_KIND, cost_key, _bundle_to_document(bundle))
    return bundle


def execute_spec(
    spec: RunSpec,
    cache: Optional[ArtifactCache] = None,
    *,
    sim_engine_override: Optional[str] = None,
) -> RunResult:
    """Execute one spec, consulting and feeding ``cache`` when given.

    Cached documents are never trusted: any entry that fails to
    deserialize (corrupt, stale schema version, missing fields) is treated
    as a miss and recomputed, not raised.

    ``sim_engine_override`` runs the simulation on a different registered
    engine than ``spec.sim_engine`` *without changing the record* (the
    ``simulation.engine`` field keeps the spec's spelling) — the batch
    planner's fallback path for specs the batched engine accepts but
    cannot group, which is only sound because every engine is
    field-identical by contract.
    """
    if cache is not None:
        document = cache.get(RESULT_KIND, spec.fingerprint())
        if document is not None:
            try:
                result = RunResult.from_dict(document)
            except ReproError:
                result = None
            if result is not None:
                result.cache_hit = True
                return result

    bundle = _resolve_costs(spec, cache)
    simulation = (
        _simulate_spec(spec, bundle.designs, sim_engine_override=sim_engine_override)
        if spec.injection_scale
        else None
    )
    result = RunResult(spec=spec, simulation=simulation, **bundle.scalars)
    if cache is not None:
        cache.put(RESULT_KIND, spec.fingerprint(), result.to_dict())
    return result


def _simulation_document(
    spec: RunSpec, variants: Dict[str, Any], schedule
) -> Dict[str, Any]:
    """Assemble the record's ``simulation`` section from per-variant metrics.

    One assembly point for the solo and batched paths, so both serialize
    byte-identically for the same spec and metrics.
    """
    simulation = {
        "engine": spec.sim_engine,
        "traffic_scenario": spec.traffic_scenario,
        "injection_scale": spec.injection_scale,
        "sim_cycles": spec.sim_cycles,
        "buffer_depth": spec.buffer_depth,
        "seed": spec.seed,
        "variants": variants,
    }
    if spec.scenario_params:
        simulation["scenario_params"] = dict(spec.scenario_params)
    if spec.fault_schedule is not None:
        simulation["fault_schedule"] = dict(spec.fault_schedule)
    if spec.fault_model is not None:
        simulation["fault_model"] = spec.fault_model
        if spec.fault_params:
            simulation["fault_params"] = dict(spec.fault_params)
    if schedule is not None:
        simulation["fault_recovery"] = spec.fault_recovery
    return simulation


def _simulate_spec(
    spec: RunSpec,
    designs: Dict[str, NocDesign],
    *,
    sim_engine_override: Optional[str] = None,
) -> Dict[str, Any]:
    """Wormhole-simulate the bundle's designs at the spec's load point.

    All three variants run with the same engine, scenario and seed (the
    seed is :attr:`RunSpec.seed`, so repeated executions of one spec are
    reproducible); deadlocks — expected for the unprotected variant under
    pressure — are recorded in the metrics, never raised.
    """
    from repro.analysis.performance import measure_load_point  # local: lazy sim import
    from repro.simulation.fault_models import build_fault_schedule  # local: lazy sim import

    # Resolve a fault-schedule request (explicit document or fault-model
    # generator) once, against the unprotected design: the protected
    # variants only ever *add* channels on the same physical links, so a
    # schedule drawn here targets links that exist in every variant — all
    # three degrade under identical faults.  The cascade model also reads
    # the unprotected design's link loads, which every variant shares.
    schedule = build_fault_schedule(
        designs["unprotected"],
        fault_model=spec.fault_model,
        fault_params=spec.fault_params,
        fault_schedule=spec.fault_schedule,
        seed=spec.seed,
    )
    variants = {
        variant: measure_load_point(
            designs[variant],
            injection_scale=spec.injection_scale,
            max_cycles=spec.sim_cycles,
            buffer_depth=spec.buffer_depth,
            seed=spec.seed,
            traffic_scenario=spec.traffic_scenario,
            scenario_params=spec.scenario_params,
            sim_engine=sim_engine_override or spec.sim_engine,
            fault_schedule=schedule,
            fault_recovery=spec.fault_recovery,
        )
        for variant in SIMULATED_VARIANTS
    }
    return _simulation_document(spec, variants, schedule)


def _simulate_spec_batch(
    specs: Sequence[RunSpec],
    designs: Dict[str, NocDesign],
    *,
    cross_check: bool = False,
) -> List[Dict[str, Any]]:
    """Simulate a batch group's load points: one array program per variant.

    The specs are one :func:`_plan_batches` group (shared cost bundle,
    ``sim_cycles`` and ``buffer_depth``; no fault fields), so each design
    variant runs all the group's lanes in a single
    :func:`~repro.analysis.performance.measure_load_grid` call.  Returns
    one ``simulation`` document per spec, in order, byte-identical to what
    :func:`_simulate_spec` produces for the same spec.
    """
    from repro.analysis.performance import measure_load_grid  # local: lazy sim import

    first = specs[0]
    points = [
        {
            "injection_scale": spec.injection_scale,
            "seed": spec.seed,
            "traffic_scenario": spec.traffic_scenario,
            "scenario_params": spec.scenario_params,
        }
        for spec in specs
    ]
    grids = {
        variant: measure_load_grid(
            designs[variant],
            points,
            max_cycles=first.sim_cycles,
            buffer_depth=first.buffer_depth,
            cross_check=cross_check,
        )
        for variant in SIMULATED_VARIANTS
    }
    documents = []
    for lane, spec in enumerate(specs):
        variants = {variant: grids[variant][lane] for variant in SIMULATED_VARIANTS}
        documents.append(_simulation_document(spec, variants, None))
    return documents


def execute_spec_batch(
    specs: Sequence[RunSpec],
    cache: Optional[ArtifactCache] = None,
    *,
    cross_check: bool = False,
) -> List[RunResult]:
    """Execute one batch group of specs as a single array program.

    ``specs`` must be a :func:`_plan_batches` group: batch-eligible and
    sharing a :meth:`RunSpec.cost_fingerprint`, ``sim_cycles`` and
    ``buffer_depth``.  Cached results are served per spec exactly as
    :func:`execute_spec` serves them; only the misses run, batched.  The
    returned records — and the documents written to ``cache`` — are
    byte-identical to executing each spec alone.
    """
    if not specs:
        return []
    resolved: Dict[int, RunResult] = {}
    missing: List[int] = []
    for index, spec in enumerate(specs):
        result = None
        if cache is not None:
            document = cache.get(RESULT_KIND, spec.fingerprint())
            if document is not None:
                try:
                    result = RunResult.from_dict(document)
                except ReproError:
                    result = None
        if result is not None:
            result.cache_hit = True
            resolved[index] = result
        else:
            missing.append(index)
    if missing:
        bundle = _resolve_costs(specs[missing[0]], cache)
        simulations = _simulate_spec_batch(
            [specs[index] for index in missing],
            bundle.designs,
            cross_check=cross_check,
        )
        for index, simulation in zip(missing, simulations):
            spec = specs[index]
            result = RunResult(spec=spec, simulation=simulation, **bundle.scalars)
            if cache is not None:
                cache.put(RESULT_KIND, spec.fingerprint(), result.to_dict())
            resolved[index] = result
    return [resolved[index] for index in range(len(specs))]


# ----------------------------------------------------------------------
# Batch planning
# ----------------------------------------------------------------------


def _batchable(spec: RunSpec) -> bool:
    """Can this spec join a batched execution group at all?

    Only specs that *ask* for the batched engine batch — the grouping must
    never change which engine a spec's record claims.  Fault schedules and
    fault models are out: recovery rewrites topology and routes mid-run,
    which the shared structure-of-arrays template cannot express (the
    engine itself falls back to ``compiled`` for those, warning once).
    """
    return (
        spec.sim_engine == ENGINE_BATCHED
        and spec.injection_scale is not None
        and spec.fault_schedule is None
        and spec.fault_model is None
    )


def _trace_horizon(spec: RunSpec) -> Optional[Tuple[str, Any]]:
    """Replay horizon of a ``trace``-scenario spec, or ``None`` if unknowable.

    An explicit trace given as a *path* would need file I/O to know its
    horizon; planning never reads files, so it counts as unknowable.
    """
    trace = spec.scenario_params.get("trace")
    if trace is None:
        return ("synthetic", spec.scenario_params.get("trace_cycles", 3000))
    if isinstance(trace, Mapping):
        return ("explicit", trace.get("cycles"))
    return None


def _split_trace_horizons(
    specs: Sequence[RunSpec], group: List[int]
) -> Tuple[List[int], List[int]]:
    """Demote a group's trace lanes when their replay horizons disagree.

    Returns ``(kept, demoted)`` index lists.  A single trace lane (or
    trace lanes all sharing one known horizon) stays in the group; mixed
    or unknowable horizons demote every trace lane, so the batch never
    silently runs lanes whose injection windows differ from what each
    spec's solo execution would use.
    """
    trace_members = [
        index for index in group if specs[index].traffic_scenario == "trace"
    ]
    if len(trace_members) <= 1:
        return group, []
    horizons = [_trace_horizon(specs[index]) for index in trace_members]
    first = horizons[0]
    if first is not None and all(horizon == first for horizon in horizons):
        return group, []
    kept = [index for index in group if index not in trace_members]
    return kept, trace_members


def _plan_batches(
    specs: Sequence[RunSpec],
) -> Tuple[List[List[int]], Dict[int, str]]:
    """Group batch-eligible specs; returns ``(batches, engine_overrides)``.

    ``batches`` is a list of index lists covering every spec exactly once:
    multi-member lists are batch groups (shared
    :meth:`RunSpec.cost_fingerprint`, ``sim_cycles``, ``buffer_depth``);
    singletons execute through :func:`execute_spec`.  ``engine_overrides``
    maps demoted spec indices to the engine their fallback runs on
    (``"compiled"``), leaving their records untouched.  Deterministic:
    groups appear in first-member order, members in plan order.
    """
    keyed: Dict[Any, List[int]] = {}
    order: List[Any] = []
    for index, spec in enumerate(specs):
        if _batchable(spec):
            key = (spec.cost_fingerprint(), spec.sim_cycles, spec.buffer_depth)
        else:
            key = ("solo", index)
        if key not in keyed:
            keyed[key] = []
            order.append(key)
        keyed[key].append(index)

    batches: List[List[int]] = []
    overrides: Dict[int, str] = {}
    for key in order:
        group = keyed[key]
        demoted: List[int] = []
        if len(group) > 1:
            group, demoted = _split_trace_horizons(specs, group)
            if demoted:
                warnings.warn(
                    structured_warning(
                        "batched-engine-fallback",
                        f"{len(demoted)} trace-scenario spec(s) in a batch "
                        "group disagree on the trace replay horizon; "
                        "falling back to per-spec 'compiled' execution "
                        "for them",
                    ),
                    RuntimeWarning,
                    stacklevel=3,
                )
        if len(group) > 1:
            batches.append(group)
        else:
            for index in group:
                batches.append([index])
        for index in demoted:
            overrides[index] = "compiled"
            batches.append([index])
    return batches, overrides


def _run_batch_task(
    task: Tuple[List[Dict[str, Any]], List[Optional[str]], Optional[str]]
) -> List[RunResult]:
    """Process-pool worker: one batch of spec dictionaries + cache directory.

    Module-level so :func:`parallel_map` can pickle it; only the small spec
    dictionaries travel to the worker, never a design or traffic object.
    """
    spec_dicts, engine_overrides, cache_dir = task
    specs = [RunSpec.from_dict(data) for data in spec_dicts]
    cache = ArtifactCache(cache_dir) if cache_dir else None
    if len(specs) == 1:
        return [
            execute_spec(specs[0], cache, sim_engine_override=engine_overrides[0])
        ]
    return execute_spec_batch(specs, cache)


@dataclass
class PlanResult:
    """Everything a finished plan produced, in ``plan.all_specs()`` order."""

    plan: ExperimentPlan
    results: List[RunResult] = field(default_factory=list)
    #: Memoised render_reports() output (reports are pure folds of the
    #: results, so rendering once is enough for print + to_dict).
    _rendered: Optional[List[Tuple[str, Dict[str, Any]]]] = field(
        default=None, repr=False, compare=False
    )

    # ------------------------------------------------------------------
    @property
    def cache_hits(self) -> int:
        return sum(1 for result in self.results if result.cache_hit)

    def results_by_fingerprint(self) -> Dict[str, RunResult]:
        return {result.spec.fingerprint(): result for result in self.results}

    def result_for(self, spec: RunSpec) -> RunResult:
        """The record of one spec (KeyError when the plan never ran it)."""
        return self.results_by_fingerprint()[spec.fingerprint()]

    def rows(self) -> List[Dict[str, Any]]:
        """Legacy flat rows, one per executed spec."""
        return [result.as_row() for result in self.results]

    def render_reports(self) -> List[Tuple[str, Dict[str, Any]]]:
        """Render every requested report, in plan order.

        Returns ``(type, document)`` pairs; the documents are exactly what
        the legacy per-figure helpers produce, so a figure plan's output is
        byte-identical to the ``figures`` subcommand.
        """
        from repro.api.reports import report_types  # local: avoid import cycle

        if self._rendered is None:
            lookup = self.results_by_fingerprint()
            rendered: List[Tuple[str, Dict[str, Any]]] = []
            for request in self.plan.reports:
                report = report_types.get(request.type)
                rendered.append((request.type, report.render(request.params, lookup)))
            self._rendered = rendered
        return self._rendered

    def to_dict(self) -> Dict[str, Any]:
        return {
            "plan": self.plan.to_dict(),
            "results": [result.to_dict() for result in self.results],
            "reports": [
                {"type": name, "data": document}
                for name, document in self.render_reports()
            ],
        }


class Runner:
    """Executes specs and plans, optionally cached and in parallel.

    Parameters
    ----------
    cache_dir:
        Artifact-cache directory; ``None`` disables caching entirely.
    jobs:
        Worker-process count for plans, as in ``noc-deadlock figures -j``
        (``None``/``0``/``1`` = serial, negative = one per CPU).
    """

    def __init__(
        self,
        *,
        cache_dir: Optional[Union[str, Path]] = None,
        jobs: Optional[int] = None,
    ):
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.jobs = jobs
        self.cache = ArtifactCache(self.cache_dir) if self.cache_dir else None

    # ------------------------------------------------------------------
    def run_spec(self, spec: RunSpec) -> RunResult:
        """Execute a single spec in-process."""
        return execute_spec(spec, self.cache)

    def run(self, plan: ExperimentPlan) -> PlanResult:
        """Execute every spec of ``plan`` (deduplicated) and return results.

        Batch-eligible specs (``sim_engine: "batched"`` grids sharing a
        cost bundle) execute as grouped array programs; everything else
        runs per spec.  Results come back in ``plan.all_specs()`` order
        regardless of grouping.
        """
        specs = plan.all_specs()
        batches, engine_overrides = _plan_batches(specs)
        ordered: Dict[int, RunResult] = {}
        if resolve_jobs(self.jobs) <= 1 or len(specs) <= 1:
            # Serial path stays in-process so self.cache accounts hits/misses.
            for batch in batches:
                if len(batch) == 1:
                    index = batch[0]
                    ordered[index] = execute_spec(
                        specs[index],
                        self.cache,
                        sim_engine_override=engine_overrides.get(index),
                    )
                else:
                    group_results = execute_spec_batch(
                        [specs[index] for index in batch], self.cache
                    )
                    for index, result in zip(batch, group_results):
                        ordered[index] = result
        else:
            tasks = [
                (
                    [specs[index].to_dict() for index in batch],
                    [engine_overrides.get(index) for index in batch],
                    self.cache_dir,
                )
                for batch in batches
            ]
            attempts: List[int] = []
            batch_results = parallel_map(
                _run_batch_task, tasks, jobs=self.jobs, attempts_out=attempts
            )
            for batch, group_results, tries in zip(batches, batch_results, attempts):
                for index, result in zip(batch, group_results):
                    result.attempts = tries
                    ordered[index] = result
        results = [ordered[index] for index in range(len(specs))]
        return PlanResult(plan=plan, results=results)


def run_plan(
    plan: Union[ExperimentPlan, str, Path],
    *,
    cache_dir: Optional[Union[str, Path]] = None,
    jobs: Optional[int] = None,
) -> PlanResult:
    """Convenience wrapper: load (when given a path) and execute a plan."""
    if not isinstance(plan, ExperimentPlan):
        plan = ExperimentPlan.load(plan)
    return Runner(cache_dir=cache_dir, jobs=jobs).run(plan)
