"""Content-addressed on-disk artifact cache for experiment runs.

Artifacts are JSON documents stored under ``<root>/<kind>/<key[:2]>/<key>.json``
where ``key`` is a SHA-256 content address derived from the producing
:class:`~repro.api.spec.RunSpec` (see :meth:`RunSpec.fingerprint` and
:meth:`RunSpec.synthesis_fingerprint`).  Three kinds are in use today:

* ``"result"`` — the full :class:`~repro.api.result.RunResult` record of a
  spec, so repeating a sweep never re-runs synthesis, removal, ordering or
  the power/area models;
* ``"design"`` — the synthesized (unprotected) design document, shared by
  every spec that differs only in removal engine or ordering strategy;
* ``"costs"`` — the cost bundle (removal/ordering/power/area scalars plus
  the three variant designs) keyed by
  :meth:`~repro.api.spec.RunSpec.cost_fingerprint`, shared by every spec
  that differs only along the simulation axis (e.g. the load points of
  one latency sweep).

Writes are atomic (temp file + ``os.replace``) so concurrent sweep workers
can share one cache directory; a corrupt or truncated entry is treated as
a miss, moved aside into ``<root>/corrupt/`` (so the evidence survives for
debugging and the recompute's fresh write cannot race the broken file) and
recomputed, never trusted.  A worker killed mid-write leaves its
``.tmp`` file behind — those orphans are swept opportunistically the first
time a process constructs a cache over the directory (once, so per-spec
pool workers do not pay a tree walk per work item) and unconditionally by
:meth:`ArtifactCache.clear`, so crashed sweeps cannot leak disk forever.
Documents are serialized *without* key sorting: design documents encode
route insertion order in JSON object order, and re-sorting them would
perturb downstream iteration order.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Optional, Union

_KEY_PREFIX_LEN = 2

#: Minimum age (seconds) before a construction-time sweep removes an orphaned
#: ``.tmp`` file.  Concurrent workers finish a write in well under this, so
#: only files from killed processes are collected.
_TMP_SWEEP_MIN_AGE_SECONDS = 3600.0

#: Cache roots already swept by this process.  Pool workers construct one
#: ArtifactCache per work item; sweeping the whole tree once per process
#: keeps the opportunistic cleanup off the per-spec hot path.
_SWEPT_ROOTS: set = set()


class ArtifactCache:
    """A content-addressed JSON store with hit/miss accounting."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root).expanduser()
        self.hits = 0
        self.misses = 0
        self.quarantined = 0
        if self.root not in _SWEPT_ROOTS:
            _SWEPT_ROOTS.add(self.root)
            self.sweep_temp_files()

    # ------------------------------------------------------------------
    def _path(self, kind: str, key: str) -> Path:
        return self.root / kind / key[:_KEY_PREFIX_LEN] / f"{key}.json"

    def _quarantine(self, path: Path) -> Optional[Path]:
        """Move a corrupt entry into ``<root>/corrupt/`` (best effort).

        The move is a rename, so it cannot half-copy the broken file, and
        losing a race against a concurrent writer/quarantiner is fine —
        whoever wins, the poisoned path no longer answers lookups.
        Returns the quarantine location, or ``None`` when the move failed.
        """
        target_dir = self.root / "corrupt"
        try:
            target_dir.mkdir(parents=True, exist_ok=True)
            target = target_dir / path.name
            os.replace(path, target)
        except OSError:
            return None
        self.quarantined += 1
        return target

    def get(self, kind: str, key: str) -> Optional[Dict[str, Any]]:
        """The stored document, or ``None`` on miss (or corrupt entry).

        A present-but-unreadable entry (truncated JSON, I/O error) counts
        as a miss *and* is quarantined to ``<root>/corrupt/``, so the
        caller's recompute overwrites a clean slate.
        """
        path = self._path(kind, key)
        try:
            text = path.read_text()
        except FileNotFoundError:
            self.misses += 1
            return None
        except OSError:
            self.misses += 1
            self._quarantine(path)
            return None
        try:
            document = json.loads(text)
        except json.JSONDecodeError:
            self.misses += 1
            self._quarantine(path)
            return None
        self.hits += 1
        return document

    def put(self, kind: str, key: str, document: Dict[str, Any]) -> Path:
        """Atomically store ``document`` under ``(kind, key)``.

        Retries once when the temp file (or its directory) vanishes between
        write and rename — a concurrent :meth:`clear` sweeps ``.tmp`` files
        unconditionally, and losing that race must not crash the writer.
        """
        payload = json.dumps(document, indent=None, separators=(",", ":"))
        for attempt in range(2):
            path = self._path(kind, key)
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=f".{key[:8]}.", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(payload)
                os.replace(tmp_name, path)
            except FileNotFoundError:
                if attempt == 0:
                    continue
                raise
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
            return path
        raise AssertionError("unreachable")  # pragma: no cover

    def has(self, kind: str, key: str) -> bool:
        """True when an entry exists (does not touch the hit/miss counters)."""
        return self._path(kind, key).is_file()

    # ------------------------------------------------------------------
    def entry_count(self, kind: Optional[str] = None) -> int:
        """Number of stored artifacts (optionally of one kind)."""
        base = self.root / kind if kind else self.root
        if not base.is_dir():
            return 0
        return sum(1 for _ in base.rglob("*.json"))

    def sweep_temp_files(self, *, min_age_seconds: float = _TMP_SWEEP_MIN_AGE_SECONDS) -> int:
        """Remove orphaned ``.tmp`` files older than ``min_age_seconds``.

        :meth:`put` writes through a temp file in the entry's directory; a
        worker killed between ``mkstemp`` and ``os.replace`` leaks it.  Only
        stale files are touched so a sweep can never race a live writer's
        in-flight temp file; returns how many were removed.
        """
        removed = 0
        if not self.root.is_dir():
            return removed
        cutoff = time.time() - min_age_seconds  # noc-lint: disable=det-wallclock - age math against file mtimes needs the wall clock; never feeds results
        for path in self.root.rglob("*.tmp"):
            try:
                if path.stat().st_mtime <= cutoff:
                    path.unlink()
                    removed += 1
            except OSError:
                pass
        return removed

    def clear(self) -> int:
        """Delete every artifact and temp file; returns how many were removed."""
        removed = 0
        if self.root.is_dir():
            for pattern in ("*.json", "*.tmp"):
                for path in self.root.rglob(pattern):
                    try:
                        path.unlink()
                        removed += 1
                    except OSError:
                        pass
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArtifactCache({str(self.root)!r}, hits={self.hits}, misses={self.misses})"
