"""Declarative experiment descriptions: :class:`RunSpec` and :class:`ExperimentPlan`.

A :class:`RunSpec` pins down everything one evaluation point needs —
benchmark, switch count, seed, synthesis overrides, removal engine,
ordering strategy and synthesis backend — as plain data.  Specs serialize
to/from JSON and hash to a stable content address
(:meth:`RunSpec.fingerprint`), which is what the artifact cache keys on.

An :class:`ExperimentPlan` is a named list of specs plus optional *report
requests* (figure/table formatters from :mod:`repro.api.reports`).  The
JSON form supports compact grids — ``benchmarks`` × ``switch_counts`` ×
``seeds`` lists expand into the cartesian product of specs — so the whole
figure set of the paper is a dozen lines of JSON (see ``plans/``).

Plan schema (``format_version`` 1)::

    {
      "format_version": 1,
      "name": "my-plan",
      "defaults": {"seed": 0, "engine": "incremental"},
      "runs": [
        {"benchmark": "D26_media", "switch_counts": [5, 8, 11]},
        {"benchmarks": ["D36_4", "D36_8"], "switch_count": 14, "seeds": [0, 1]},
        {"benchmark": "D36_8", "switch_count": 14,
         "injection_scales": [0.5, 1.0, 2.0], "traffic_scenario": "hotspot"},
        {"benchmark": "D36_8", "switch_count": 14, "injection_scale": 1.0,
         "fault_schedule": {"random": {"link_failures": 2,
                                       "start_cycle": 100, "end_cycle": 800,
                                       "restore_after": 500}}},
        {"benchmark": "D36_8", "switch_count": 14, "injection_scale": 1.0,
         "fault_model": "spatial_burst", "fault_params": {"radius": 2},
         "fault_recovery": "protection", "seeds": [0, 1, 2, 3]},
        {"benchmark": "uniform_c64_f2", "topology_family": "fat_tree",
         "family_params": {"k": 8}, "switch_count": 80,
         "injection_scale": 1.0, "traffic_scenario": "trace",
         "scenario_params": {"trace_cycles": 2000}}
      ],
      "reports": ["figure8", {"type": "figure9", "switch_counts": [10, 14]},
                  {"type": "resilience", "benchmark": "D36_8"},
                  {"type": "scale", "family": "fat_tree",
                   "points": [{"k": 2}, {"k": 4}, {"k": 6}]}]
    }

A ``topology_family`` entry synthesizes through the named parameterized
generator (:data:`repro.api.registry.topology_families`) instead of the
application-specific pipeline; ``switch_count`` must equal the family's
closed-form size at ``family_params``.  Both fields are elided from the
serialized form when unset, so pre-family cache addresses hold.

Every run entry accepts the singular or plural form of ``benchmark``,
``switch_count``, ``seed`` and ``injection_scale`` plus any other
:class:`RunSpec` field; omitted fields fall back to ``defaults`` and then
to the RunSpec defaults.  Entries with an ``injection_scale`` additionally
run the wormhole simulation at that load point (see
:attr:`RunSpec.injection_scale`).

A ``fault_schedule`` (only meaningful on simulating entries) injects
link/router failures mid-run and records the resilience metrics —
recovery latency, in-flight flit loss, post-fault deadlock freedom — in
the result's ``simulation.variants[*].resilience`` section.  It is either
an explicit event list::

    {"events": [{"cycle": 200, "action": "fail_link",
                 "link": {"src": "sw3", "dst": "sw5", "index": 0}},
                {"cycle": 700, "action": "restore_link",
                 "link": {"src": "sw3", "dst": "sw5", "index": 0}}]}

or a deterministic seeded request (``seed`` defaults to the spec's own)::

    {"random": {"link_failures": 1, "router_failures": 1,
                "start_cycle": 100, "end_cycle": 1000}}

``fault_model`` names a correlated generator from
:data:`repro.api.registry.fault_models` instead (``uniform``,
``spatial_burst``, ``cascade``, ``mtbf``); ``fault_params`` parameterizes
it and the schedule derives deterministically from the synthesized design
and the spec's seed, so a ``seeds`` grid sweeps the model.
``fault_recovery`` picks the repair policy from
:data:`repro.api.registry.recovery_policies` (``removal`` — the default —
``reroute``, ``idle`` or ``protection``).  ``fault_model`` and
``fault_schedule`` are mutually exclusive; all three fields are elided
from the serialized form when left at their defaults, so pre-existing
cache addresses hold.

``sim_engine: "batched"`` selects the numpy structure-of-arrays engine
(:mod:`repro.perf.batch_engine`).  Batched specs are additionally
*batch-eligible*: the :class:`~repro.api.runner.Runner` groups
simulating specs that share a :meth:`RunSpec.cost_fingerprint` (same
design, removal engine and ordering strategy) plus ``sim_cycles`` and
``buffer_depth``, and runs each group's grid — the points of a latency
sweep, a scenario comparison — as one array program per design variant,
still producing one cached :class:`~repro.api.result.RunResult` per spec
(cache layout, fingerprints and record schema are unchanged; batching is
invisible except in wall clock).  Specs the batch cannot express fall
back per-spec with a structured ``[noc-lint {...}]`` warning: fault
schedules and fault models never batch (recovery rewrites routes
mid-run), and ``trace``-scenario specs batch only when every trace lane
of the group shares one replay horizon.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import MISSING, dataclass, field, fields
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.errors import PlanError

#: Version tag baked into plan documents and content-address hashes; bump on
#: any change that alters the meaning of a serialized spec.
PLAN_FORMAT_VERSION = 1

_SPEC_FIELDS = (
    "benchmark",
    "switch_count",
    "seed",
    "engine",
    "ordering_strategy",
    "synthesis_backend",
    "routing_engine",
    "synthesis",
    "topology_family",
    "family_params",
    "sim_engine",
    "traffic_scenario",
    "scenario_params",
    "injection_scale",
    "sim_cycles",
    "buffer_depth",
    "fault_schedule",
    "fault_model",
    "fault_params",
    "fault_recovery",
)


def _canonical_hash(document: Mapping[str, Any]) -> str:
    """SHA-256 over the canonical JSON form of ``document``."""
    payload = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class RunSpec:
    """One evaluation point of the paper's grid, as plain declarative data.

    Attributes
    ----------
    benchmark:
        Name in the benchmark registry (``repro.benchmarks.registry``).
    switch_count:
        Number of switches the topology is synthesized with.
    seed:
        Seed forwarded to benchmark generation and synthesis.
    engine:
        Removal engine name (``repro.api.registry.removal_engines``).
    ordering_strategy:
        Baseline class-assignment strategy
        (``repro.api.registry.ordering_strategies``).
    synthesis_backend:
        Topology-synthesis backend
        (``repro.api.registry.synthesis_backends``).
    routing_engine:
        Shortest-path routing engine used during synthesis
        (``repro.api.registry.routing_engines``).
    synthesis:
        Extra keyword overrides for
        :class:`repro.synthesis.builder.SynthesisConfig`.
    topology_family:
        Optional name in :data:`repro.api.registry.topology_families`
        (``fat_tree``, ``clos``/``vl2``, ``torus``, ``dragonfly``, ...).
        When set, the topology comes from that parameterized generator
        (``synthesis_backend`` flips from the default ``"custom"`` to
        ``"family"`` automatically) and ``switch_count`` must equal the
        family's closed-form size at ``family_params``.  Elided from the
        serialized form when unset, so pre-existing cache addresses hold.
    family_params:
        Parameters of the topology family (e.g. ``{"k": 8}``); a
        ``"routing"`` entry overrides the family's default routing mode.
        Only meaningful with ``topology_family``; elided when empty.
    sim_engine:
        Wormhole simulation engine
        (``repro.api.registry.simulation_engines``); only exercised when
        ``injection_scale`` requests a simulation.
    traffic_scenario:
        Traffic-scenario generator for the simulation
        (``repro.api.registry.traffic_scenarios``).
    scenario_params:
        Extra keyword arguments for the scenario's generator factory (e.g.
        ``{"factor": 8.0}`` for ``hotspot``, or ``{"trace": {...}}`` /
        ``{"trace_cycles": 2000}`` for the ``trace`` scenario).  Elided
        from the serialized form when empty.
    injection_scale:
        The load point: when set, the spec additionally simulates the
        comparison's designs at this injection scale and records the
        latency/throughput metrics in
        :attr:`repro.api.result.RunResult.simulation`.  ``None`` (the
        default) skips simulation entirely.
    sim_cycles:
        Injection cycles per simulation run.
    buffer_depth:
        Flit capacity of every VC input buffer during simulation.
    fault_schedule:
        Optional fault-injection request for the simulation: either an
        explicit ``{"events": [...]}`` document or a seeded
        ``{"random": {...}}`` request (see
        :meth:`repro.simulation.events.EventSchedule.from_spec`; a random
        request without its own ``seed`` inherits the spec's).  Only
        meaningful together with ``injection_scale``; mutually exclusive
        with ``fault_model``.
    fault_model:
        Optional name in :data:`repro.api.registry.fault_models` of a
        correlated fault-schedule generator (``uniform``,
        ``spatial_burst``, ``cascade``, ``mtbf``).  The schedule is
        generated deterministically against the *synthesized* design
        with the spec's seed, so one spec per seed sweeps a fault model
        (the ``availability`` report builds exactly that grid).  Elided
        from the serialized form when unset, so pre-existing cache
        addresses hold; mutually exclusive with ``fault_schedule``.
    fault_params:
        Keyword parameters of the fault model (e.g. ``{"radius": 2}``
        for ``spatial_burst``); a ``"seed"`` entry overrides the spec's.
        Only meaningful with ``fault_model``; elided when empty.
    fault_recovery:
        Name in :data:`repro.api.registry.recovery_policies` of the
        recovery policy repairing the route set after each fault batch
        (``removal``, ``reroute``, ``idle``, ``protection``).  Elided
        when left at the default ``"removal"`` (the PR 6 behaviour).
    """

    benchmark: str
    switch_count: int
    seed: int = 0
    engine: str = "context"
    ordering_strategy: str = "hop_index"
    synthesis_backend: str = "custom"
    routing_engine: str = "indexed"
    synthesis: Dict[str, Any] = field(default_factory=dict)
    topology_family: Optional[str] = None
    family_params: Dict[str, Any] = field(default_factory=dict)
    sim_engine: str = "compiled"
    traffic_scenario: str = "flows"
    scenario_params: Dict[str, Any] = field(default_factory=dict)
    injection_scale: Optional[float] = None
    sim_cycles: int = 3000
    buffer_depth: int = 4
    fault_schedule: Optional[Dict[str, Any]] = None
    fault_model: Optional[str] = None
    fault_params: Dict[str, Any] = field(default_factory=dict)
    fault_recovery: str = "removal"

    def __post_init__(self):
        if not isinstance(self.benchmark, str) or not self.benchmark:
            raise PlanError(f"benchmark must be a non-empty string, got {self.benchmark!r}")
        if not isinstance(self.switch_count, int) or isinstance(self.switch_count, bool):
            raise PlanError(f"switch_count must be an integer, got {self.switch_count!r}")
        if self.switch_count < 1:
            raise PlanError(f"switch_count must be positive, got {self.switch_count}")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise PlanError(f"seed must be an integer, got {self.seed!r}")
        for name in (
            "engine",
            "ordering_strategy",
            "synthesis_backend",
            "routing_engine",
            "sim_engine",
            "traffic_scenario",
        ):
            value = getattr(self, name)
            if not isinstance(value, str) or not value:
                raise PlanError(f"{name} must be a non-empty string, got {value!r}")
        if not isinstance(self.synthesis, dict):
            raise PlanError(f"synthesis overrides must be a mapping, got {self.synthesis!r}")
        self.synthesis = dict(self.synthesis)
        if self.topology_family is not None:
            if not isinstance(self.topology_family, str) or not self.topology_family:
                raise PlanError(
                    f"topology_family must be a non-empty string or null, "
                    f"got {self.topology_family!r}"
                )
            # A family spec runs through the 'family' backend; flipping the
            # default here (rather than erroring) keeps plan entries short:
            # {"topology_family": "fat_tree", "family_params": {"k": 8}}.
            if self.synthesis_backend == "custom":
                self.synthesis_backend = "family"
        for name in ("family_params", "scenario_params"):
            value = getattr(self, name)
            if not isinstance(value, dict):
                raise PlanError(f"{name} must be a mapping, got {value!r}")
            setattr(self, name, dict(value))
        if self.family_params and self.topology_family is None:
            raise PlanError(
                "family_params given without a topology_family to apply them to"
            )
        if self.synthesis_backend == "family" and self.topology_family is None:
            raise PlanError(
                "the 'family' synthesis backend needs a topology_family"
            )
        if self.injection_scale is not None:
            if isinstance(self.injection_scale, bool) or not isinstance(
                self.injection_scale, (int, float)
            ):
                raise PlanError(
                    f"injection_scale must be a number or null, got {self.injection_scale!r}"
                )
            if self.injection_scale <= 0:
                raise PlanError(
                    f"injection_scale must be positive, got {self.injection_scale}"
                )
            self.injection_scale = float(self.injection_scale)
        if not isinstance(self.sim_cycles, int) or isinstance(self.sim_cycles, bool):
            raise PlanError(f"sim_cycles must be an integer, got {self.sim_cycles!r}")
        if self.sim_cycles < 1:
            raise PlanError(f"sim_cycles must be positive, got {self.sim_cycles}")
        if not isinstance(self.buffer_depth, int) or isinstance(self.buffer_depth, bool):
            raise PlanError(f"buffer_depth must be an integer, got {self.buffer_depth!r}")
        if self.buffer_depth < 1:
            raise PlanError(f"buffer_depth must be at least 1, got {self.buffer_depth}")
        if self.fault_schedule is not None:
            if not isinstance(self.fault_schedule, Mapping):
                raise PlanError(
                    "fault_schedule must be a mapping with 'events' or 'random' "
                    f"(or null), got {self.fault_schedule!r}"
                )
            if "events" not in self.fault_schedule and "random" not in self.fault_schedule:
                raise PlanError(
                    "fault_schedule needs an 'events' list or a 'random' request"
                )
            self.fault_schedule = dict(self.fault_schedule)
        if self.fault_model is not None:
            if not isinstance(self.fault_model, str) or not self.fault_model:
                raise PlanError(
                    f"fault_model must be a non-empty string or null, "
                    f"got {self.fault_model!r}"
                )
            if self.fault_schedule is not None:
                raise PlanError(
                    "fault_model and fault_schedule are mutually exclusive ways "
                    "to request fault injection; set only one"
                )
        if not isinstance(self.fault_params, dict):
            raise PlanError(
                f"fault_params must be a mapping, got {self.fault_params!r}"
            )
        self.fault_params = dict(self.fault_params)
        if self.fault_params and self.fault_model is None:
            raise PlanError(
                "fault_params given without a fault_model to apply them to"
            )
        if not isinstance(self.fault_recovery, str) or not self.fault_recovery:
            raise PlanError(
                f"fault_recovery must be a non-empty string, got {self.fault_recovery!r}"
            )

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (default-valued optional fields elided).

        The simulation-axis and topology-family fields are serialized (and
        therefore fingerprinted) only when they differ from their dataclass
        default, so every spec that predates those axes keeps the exact
        content address it had — warm artifact caches stay warm.
        """
        document = {
            "benchmark": self.benchmark,
            "switch_count": self.switch_count,
            "seed": self.seed,
            "engine": self.engine,
            "ordering_strategy": self.ordering_strategy,
            "synthesis_backend": self.synthesis_backend,
            "routing_engine": self.routing_engine,
            "synthesis": dict(self.synthesis),
        }
        for name, default in _ELIDED_FIELD_DEFAULTS:
            value = getattr(self, name)
            if value != default:
                document[name] = value
        return document

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunSpec":
        """Rebuild a spec; unknown keys raise :class:`~repro.errors.PlanError`."""
        if not isinstance(data, Mapping):
            raise PlanError(f"run spec must be a mapping, got {type(data).__name__}")
        unknown = set(data) - set(_SPEC_FIELDS)
        if unknown:
            raise PlanError(
                f"unknown run spec field(s): {', '.join(sorted(unknown))}; "
                f"valid fields: {', '.join(_SPEC_FIELDS)}"
            )
        if "benchmark" not in data:
            raise PlanError("run spec is missing the required 'benchmark' field")
        if "switch_count" not in data:
            raise PlanError("run spec is missing the required 'switch_count' field")
        return cls(**dict(data))

    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Content address of the full spec — the result-cache key."""
        return _canonical_hash({"format": PLAN_FORMAT_VERSION, "spec": self.to_dict()})

    def _design_document(self) -> Dict[str, Any]:
        """The synthesis-relevant subset of the spec, as a canonical mapping."""
        return {
            "benchmark": self.benchmark,
            "switch_count": self.switch_count,
            "seed": self.seed,
            "synthesis_backend": self.synthesis_backend,
            "routing_engine": self.routing_engine,
            "synthesis": dict(self.synthesis),
            # Family fields join the key only when set, so designs
            # cached before the topology-family axis keep their
            # addresses.
            **(
                {
                    "topology_family": self.topology_family,
                    "family_params": dict(self.family_params),
                }
                if self.topology_family is not None
                else {}
            ),
        }

    def synthesis_fingerprint(self) -> str:
        """Content address of the synthesis-relevant subset of the spec.

        Two specs that differ only in removal engine or ordering strategy
        share this key, so the artifact cache can reuse the synthesized
        (unprotected) design across them.  The routing engine *is* part of
        the key: both built-ins produce identical designs, but the cache
        must never silently conflate a third-party engine with them.
        """
        return _canonical_hash(
            {"format": PLAN_FORMAT_VERSION, "design": self._design_document()}
        )

    def cost_fingerprint(self) -> str:
        """Content address of everything the *cost* pipeline depends on.

        The cost side of a record — removal, ordering, power and area —
        depends only on the synthesized design plus the removal engine and
        ordering strategy; the simulation axis (``injection_scale``,
        ``traffic_scenario``, ``seed``-driven traffic, fault fields) never
        touches it.  Specs differing only along those axes — e.g. the load
        points of one latency sweep — share this key, so the artifact
        cache can serve one removal/ordering run to the whole sweep
        instead of re-running removal per point on a cold cache.
        """
        return _canonical_hash(
            {
                "format": PLAN_FORMAT_VERSION,
                "costs": {
                    **self._design_document(),
                    "engine": self.engine,
                    "ordering_strategy": self.ordering_strategy,
                },
            }
        )


#: The simulation-axis and topology-family fields with their dataclass
#: defaults, derived from the :class:`RunSpec` field definitions so the
#: to_dict elision can never drift from the actual defaults (a drift would
#: silently re-address every cached spec).
_SIM_AXIS_FIELDS = (
    "sim_engine",
    "traffic_scenario",
    "scenario_params",
    "injection_scale",
    "sim_cycles",
    "buffer_depth",
    "fault_schedule",
    "fault_model",
    "fault_params",
    "fault_recovery",
)
_FAMILY_AXIS_FIELDS = (
    "topology_family",
    "family_params",
)
_ELIDED_AXIS_FIELDS = _SIM_AXIS_FIELDS + _FAMILY_AXIS_FIELDS
_ELIDED_FIELD_DEFAULTS = tuple(
    (
        spec_field.name,
        spec_field.default
        if spec_field.default is not MISSING
        else spec_field.default_factory(),
    )
    for spec_field in fields(RunSpec)
    if spec_field.name in _ELIDED_AXIS_FIELDS
)

#: Fields deliberately left out of :meth:`RunSpec.fingerprint`.  Empty on
#: purpose: every field of this spec changes the result, so every field is
#: content-addressed.  A field that genuinely must not re-key the cache
#: (e.g. a pure progress-reporting knob) is elided by naming it here, which
#: is the explicit allowlist the ``fingerprint-completeness`` lint rule
#: checks — an un-listed, un-fingerprinted field fails ``noc-deadlock
#: lint``.
FINGERPRINT_ELIDED: tuple = ()


# ----------------------------------------------------------------------
# Grid expansion
# ----------------------------------------------------------------------

def _axis_values(entry: Mapping[str, Any], singular: str, plural: str, default):
    """Values of one grid axis, accepting the singular or the plural key."""
    if singular in entry and plural in entry:
        raise PlanError(f"run entry has both {singular!r} and {plural!r}")
    if plural in entry:
        values = entry[plural]
        if not isinstance(values, (list, tuple)) or not values:
            raise PlanError(f"{plural!r} must be a non-empty list, got {values!r}")
        return list(values)
    if singular in entry:
        return [entry[singular]]
    if default is None:
        raise PlanError(f"run entry is missing {singular!r} (or {plural!r})")
    return [default]


def expand_run_entry(
    entry: Mapping[str, Any], defaults: Optional[Mapping[str, Any]] = None
) -> List[RunSpec]:
    """Expand one plan run entry (a possibly-gridded mapping) into specs.

    ``benchmark(s)`` × ``switch_count(s)`` × ``seed(s)`` ×
    ``injection_scale(s)`` expand as a cartesian product in deterministic
    order (benchmarks outermost, injection scales innermost); the remaining
    fields are merged over ``defaults``.
    """
    if not isinstance(entry, Mapping):
        raise PlanError(f"run entry must be a mapping, got {type(entry).__name__}")
    merged = dict(defaults or {})
    # An entry that sets an axis (in either form) fully overrides that axis:
    # drop both of the axis's keys from the defaults so e.g. defaults
    # {"seed": 0} and an entry {"seeds": [0, 1]} do not conflict.
    for singular, plural in (
        ("benchmark", "benchmarks"),
        ("switch_count", "switch_counts"),
        ("seed", "seeds"),
        ("injection_scale", "injection_scales"),
    ):
        if singular in entry or plural in entry:
            merged.pop(singular, None)
            merged.pop(plural, None)
    merged.update(entry)

    axis_keys = {
        "benchmark",
        "benchmarks",
        "switch_count",
        "switch_counts",
        "seed",
        "seeds",
        "injection_scale",
        "injection_scales",
    }
    unknown = set(merged) - axis_keys - set(_SPEC_FIELDS)
    if unknown:
        raise PlanError(
            f"unknown run entry field(s): {', '.join(sorted(unknown))}"
        )

    benchmarks = _axis_values(merged, "benchmark", "benchmarks", None)
    switch_counts = _axis_values(merged, "switch_count", "switch_counts", None)
    seeds = _axis_values(merged, "seed", "seeds", 0)
    if "injection_scale" in merged or "injection_scales" in merged:
        scales = _axis_values(merged, "injection_scale", "injection_scales", None)
    else:
        scales = [None]

    common = {
        key: merged[key]
        for key in (
            "engine",
            "ordering_strategy",
            "synthesis_backend",
            "routing_engine",
            "synthesis",
            "topology_family",
            "family_params",
            "sim_engine",
            "traffic_scenario",
            "scenario_params",
            "sim_cycles",
            "buffer_depth",
            "fault_schedule",
            "fault_model",
            "fault_params",
            "fault_recovery",
        )
        if key in merged
    }
    specs: List[RunSpec] = []
    for benchmark in benchmarks:
        for count in switch_counts:
            for seed in seeds:
                for scale in scales:
                    specs.append(
                        RunSpec(
                            benchmark=benchmark,
                            switch_count=count,
                            seed=seed,
                            injection_scale=scale,
                            **common,
                        )
                    )
    return specs


# ----------------------------------------------------------------------
# Report requests
# ----------------------------------------------------------------------

@dataclass
class ReportRequest:
    """A figure/table to render from a plan's results.

    ``type`` names an entry of :data:`repro.api.reports.report_types`;
    ``params`` are formatter parameters (e.g. ``switch_counts``, ``seed``).
    In plan JSON a bare string ``"figure8"`` is shorthand for
    ``{"type": "figure8"}``.
    """

    type: str
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        if not isinstance(self.type, str) or not self.type:
            raise PlanError(f"report type must be a non-empty string, got {self.type!r}")
        if not isinstance(self.params, dict):
            raise PlanError(f"report params must be a mapping, got {self.params!r}")
        self.params = dict(self.params)

    def to_dict(self) -> Union[str, Dict[str, Any]]:
        if not self.params:
            return self.type
        return {"type": self.type, **self.params}

    @classmethod
    def from_dict(cls, data: Union[str, Mapping[str, Any]]) -> "ReportRequest":
        if isinstance(data, str):
            return cls(type=data)
        if not isinstance(data, Mapping):
            raise PlanError(
                f"report request must be a string or mapping, got {type(data).__name__}"
            )
        if "type" not in data:
            raise PlanError("report request is missing the required 'type' field")
        params = {key: value for key, value in data.items() if key != "type"}
        return cls(type=data["type"], params=params)


# ----------------------------------------------------------------------
# Experiment plans
# ----------------------------------------------------------------------

@dataclass
class ExperimentPlan:
    """A named batch of :class:`RunSpec` points plus report requests."""

    name: str = "plan"
    specs: List[RunSpec] = field(default_factory=list)
    reports: List[ReportRequest] = field(default_factory=list)

    def __post_init__(self):
        if not isinstance(self.name, str) or not self.name:
            raise PlanError(f"plan name must be a non-empty string, got {self.name!r}")

    # ------------------------------------------------------------------
    def all_specs(self) -> List[RunSpec]:
        """Explicit specs plus every report's specs, deduplicated.

        Order is deterministic: explicit specs first, then report specs in
        request order, with later duplicates (same fingerprint) dropped —
        e.g. the Figure 10, area and overhead reports all share the same
        six 14-switch points, which are executed once.
        """
        from repro.api.reports import report_types  # local: avoid import cycle

        seen: Dict[str, RunSpec] = {}
        ordered: List[RunSpec] = []
        for spec in self.specs:
            key = spec.fingerprint()
            if key not in seen:
                seen[key] = spec
                ordered.append(spec)
        for request in self.reports:
            report = report_types.get(request.type)
            for spec in report.specs(request.params):
                key = spec.fingerprint()
                if key not in seen:
                    seen[key] = spec
                    ordered.append(spec)
        return ordered

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Normal-form document: grids already expanded into explicit runs."""
        return {
            "format_version": PLAN_FORMAT_VERSION,
            "name": self.name,
            "runs": [spec.to_dict() for spec in self.specs],
            "reports": [request.to_dict() for request in self.reports],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentPlan":
        if not isinstance(data, Mapping):
            raise PlanError(f"plan must be a mapping, got {type(data).__name__}")
        version = data.get("format_version", PLAN_FORMAT_VERSION)
        if version != PLAN_FORMAT_VERSION:
            raise PlanError(
                f"unsupported plan format version {version} (expected {PLAN_FORMAT_VERSION})"
            )
        known = {"format_version", "name", "defaults", "runs", "reports"}
        unknown = set(data) - known
        if unknown:
            raise PlanError(f"unknown plan field(s): {', '.join(sorted(unknown))}")
        defaults = data.get("defaults", {})
        if not isinstance(defaults, Mapping):
            raise PlanError(f"plan defaults must be a mapping, got {defaults!r}")
        runs = data.get("runs", [])
        if not isinstance(runs, (list, tuple)):
            raise PlanError(f"plan runs must be a list, got {runs!r}")
        specs: List[RunSpec] = []
        for entry in runs:
            specs.extend(expand_run_entry(entry, defaults))
        reports_data = data.get("reports", [])
        if not isinstance(reports_data, (list, tuple)):
            raise PlanError(f"plan reports must be a list, got {reports_data!r}")
        reports = [ReportRequest.from_dict(entry) for entry in reports_data]
        if not specs and not reports:
            raise PlanError("plan has neither runs nor reports — nothing to execute")
        return cls(name=data.get("name", "plan"), specs=specs, reports=reports)

    # ------------------------------------------------------------------
    def to_json(self, *, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise PlanError(f"invalid plan JSON: {exc}") from exc
        return cls.from_dict(data)

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        try:
            path.write_text(self.to_json() + "\n")
        except OSError as exc:
            raise PlanError(f"could not write plan to {path}: {exc}") from exc
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ExperimentPlan":
        path = Path(path)
        try:
            text = path.read_text()
        except OSError as exc:
            raise PlanError(f"could not read plan from {path}: {exc}") from exc
        return cls.from_json(text)

    # ------------------------------------------------------------------
    @classmethod
    def from_grid(
        cls,
        name: str,
        benchmarks: Union[str, Sequence[str]],
        switch_counts: Union[int, Sequence[int]],
        *,
        seeds: Union[int, Sequence[int]] = 0,
        reports: Iterable[Union[str, ReportRequest]] = (),
        **common: Any,
    ) -> "ExperimentPlan":
        """Programmatic grid constructor mirroring the JSON run entries."""
        entry: Dict[str, Any] = dict(common)
        entry["benchmarks"] = [benchmarks] if isinstance(benchmarks, str) else list(benchmarks)
        entry["switch_counts"] = (
            [switch_counts] if isinstance(switch_counts, int) else list(switch_counts)
        )
        entry["seeds"] = [seeds] if isinstance(seeds, int) else list(seeds)
        requests = [
            request if isinstance(request, ReportRequest) else ReportRequest(type=request)
            for request in reports
        ]
        return cls(name=name, specs=expand_run_entry(entry), reports=requests)
