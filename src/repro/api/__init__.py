"""repro.api — the declarative experiment facade.

One coherent surface over the whole evaluation stack:

* :class:`RunSpec` / :class:`ExperimentPlan` — declarative descriptions of
  evaluation points and plans, JSON round-trippable (:mod:`repro.api.spec`);
* :data:`removal_engines` / :data:`ordering_strategies` /
  :data:`synthesis_backends` — pluggable strategy registries with decorator
  registration (:mod:`repro.api.registry`);
* :class:`Runner` / :func:`run_plan` — plan execution over the process-pool
  executor with a content-addressed artifact cache
  (:mod:`repro.api.runner`, :mod:`repro.api.cache`);
* :class:`RunResult` — the one JSON record schema shared by tables,
  figures and the CLI (:mod:`repro.api.result`);
* :data:`report_types` / :func:`run_report` — figure/table formatters
  (:mod:`repro.api.reports`).

Example::

    from repro.api import ExperimentPlan, Runner

    plan = ExperimentPlan.from_grid("sweep", "D36_8", [10, 14, 18])
    outcome = Runner(cache_dir="~/.cache/noc-deadlock", jobs=-1).run(plan)
    for result in outcome.results:
        print(result.as_row())

The light declarative pieces (specs, registries, cache, results) import
eagerly; the execution layer (runner, reports) loads lazily on first
attribute access so that ``repro.core``/``repro.routing`` can import the
registries without a circular import.
"""

from __future__ import annotations

from repro.api.cache import ArtifactCache
from repro.api.registry import (
    Registry,
    ordering_strategies,
    removal_engines,
    routing_engines,
    simulation_engines,
    synthesis_backends,
    traffic_scenarios,
)
from repro.api.result import RESULT_FORMAT_VERSION, RunResult
from repro.api.spec import (
    PLAN_FORMAT_VERSION,
    ExperimentPlan,
    ReportRequest,
    RunSpec,
    expand_run_entry,
)

#: Lazily imported names -> providing submodule (PEP 562).  These modules
#: pull in the full algorithm stack, which itself imports the registries
#: above — loading them on first access keeps the import graph acyclic.
_LAZY = {
    "Runner": "repro.api.runner",
    "PlanResult": "repro.api.runner",
    "run_plan": "repro.api.runner",
    "execute_spec": "repro.api.runner",
    "default_cache_dir": "repro.api.runner",
    "report_types": "repro.api.reports",
    "run_report": "repro.api.reports",
    "ReportType": "repro.api.reports",
    "FIGURE8_SWITCH_COUNTS": "repro.api.reports",
    "FIGURE9_SWITCH_COUNTS": "repro.api.reports",
    "FIGURE10_BENCHMARKS": "repro.api.reports",
    "FIGURE10_SWITCH_COUNT": "repro.api.reports",
}

__all__ = [
    "ArtifactCache",
    "ExperimentPlan",
    "PlanResult",
    "Registry",
    "ReportRequest",
    "ReportType",
    "RunResult",
    "RunSpec",
    "Runner",
    "PLAN_FORMAT_VERSION",
    "RESULT_FORMAT_VERSION",
    "default_cache_dir",
    "execute_spec",
    "expand_run_entry",
    "ordering_strategies",
    "removal_engines",
    "report_types",
    "routing_engines",
    "run_plan",
    "run_report",
    "simulation_engines",
    "synthesis_backends",
    "traffic_scenarios",
]


def __getattr__(name: str):
    module_path = _LAZY.get(name)
    if module_path is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_path)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
