"""Figure/table formatters driven by :class:`RunResult` records.

Each report type knows two things: which :class:`~repro.api.spec.RunSpec`
points it needs (:meth:`ReportType.specs`) and how to fold the resulting
records into the exact dictionary the paper's figure helpers historically
returned (:meth:`ReportType.render`).  The legacy functions in
:mod:`repro.analysis.sweeps` are thin adapters over :func:`run_report`, so
``noc-deadlock figures`` and ``noc-deadlock run <plan.json>`` are
byte-identical by construction.

Report types are registered in :data:`report_types`, so downstream code can
add custom figures the same way it adds removal engines::

    @report_types.register("my_table")
    class MyTable(ReportType):
        ...
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.analysis.metrics import arithmetic_mean
from repro.api.registry import Registry
from repro.api.result import RunResult
from repro.api.spec import ExperimentPlan, ReportRequest, RunSpec

#: Switch counts of Figure 8 (D26_media, x-axis 5..25).
FIGURE8_SWITCH_COUNTS: List[int] = [5, 8, 11, 14, 17, 20, 23, 25]

#: Switch counts of Figure 9 (D36_8, x-axis 10..35).
FIGURE9_SWITCH_COUNTS: List[int] = [10, 14, 18, 22, 26, 30, 35]

#: Benchmarks of Figure 10, in the paper's plotting order.
FIGURE10_BENCHMARKS: List[str] = [
    "D26_media",
    "D36_4",
    "D36_6",
    "D36_8",
    "D35_bott",
    "D38_tvopd",
]

#: Switch count used for Figure 10 and the area/overhead claims
#: ("the values reported in the plot are for topologies with 14 switches").
FIGURE10_SWITCH_COUNT = 14

#: Registry of report formatters (this module registers the built-ins at
#: import time, so no lazy provider is needed).
report_types = Registry("report type")


#: Injection scales of the default load–latency sweep.
LATENCY_INJECTION_SCALES: List[float] = [0.25, 0.5, 0.75, 1.0, 1.5, 2.0]


def _spec_params(params: Mapping[str, Any]) -> Dict[str, Any]:
    """RunSpec fields a report request may override (engine etc.)."""
    return {
        key: params[key]
        for key in (
            "engine",
            "ordering_strategy",
            "synthesis_backend",
            "synthesis",
            "topology_family",
            "family_params",
            "sim_engine",
            "traffic_scenario",
            "scenario_params",
            "sim_cycles",
            "buffer_depth",
            "fault_schedule",
            "fault_model",
            "fault_params",
            "fault_recovery",
        )
        if key in params
    }


def _percentile(values: Sequence[float], pct: float) -> Optional[float]:
    """Nearest-rank percentile (the availability report's estimator).

    Deterministic and exact for the small per-policy sample sizes the
    report works with; returns ``None`` on an empty sample.
    """
    if not values:
        return None
    ordered = sorted(values)
    rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
    return ordered[rank - 1]


def _sentinel_free(entry: Dict[str, Any]) -> Dict[str, Any]:
    """Recompute recovery aggregates of a ``resilience`` record in place.

    ``recovery_cycles`` keeps ``-1`` as its "never drained" wire sentinel
    for cache compatibility; the formatters must never average it into a
    latency number.  Recomputing from the raw list (rather than trusting
    ``mean_recovery_cycles``) also upgrades records cached before the
    ``batches_never_drained`` count existed.
    """
    cycles = entry.get("recovery_cycles")
    if cycles is not None:
        drained = [c for c in cycles if c >= 0]
        entry["mean_recovery_cycles"] = (
            sum(drained) / len(drained) if drained else 0.0
        )
        entry["batches_never_drained"] = sum(1 for c in cycles if c < 0)
    return entry


class ReportType:
    """Base class for report formatters (subclass and register instances)."""

    def specs(self, params: Mapping[str, Any]) -> List[RunSpec]:
        """The evaluation points this report needs."""
        raise NotImplementedError

    def render(
        self, params: Mapping[str, Any], lookup: Mapping[str, RunResult]
    ) -> Dict[str, Any]:
        """Fold the records (keyed by spec fingerprint) into the figure dict."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _results(
        self, params: Mapping[str, Any], lookup: Mapping[str, RunResult]
    ) -> List[RunResult]:
        return [lookup[spec.fingerprint()] for spec in self.specs(params)]


class _SwitchCountSweepReport(ReportType):
    """Figures 8 and 9: extra VCs vs. switch count for one benchmark."""

    def __init__(self, benchmark: str, default_counts: Sequence[int]):
        self.benchmark = benchmark
        self.default_counts = list(default_counts)

    def _counts(self, params: Mapping[str, Any]) -> List[int]:
        return list(params.get("switch_counts", self.default_counts))

    def specs(self, params: Mapping[str, Any]) -> List[RunSpec]:
        seed = params.get("seed", 0)
        extra = _spec_params(params)
        return [
            RunSpec(benchmark=self.benchmark, switch_count=count, seed=seed, **extra)
            for count in self._counts(params)
        ]

    def render(self, params, lookup) -> Dict[str, Any]:
        results = self._results(params, lookup)
        return {
            "benchmark": self.benchmark,
            "switch_counts": self._counts(params),
            "resource_ordering_vcs": [r.ordering_extra_vcs for r in results],
            "deadlock_removal_vcs": [r.removal_extra_vcs for r in results],
        }


class _BenchmarkSetReport(ReportType):
    """Base for the per-benchmark reports (Figure 10, area, overhead)."""

    def _names(self, params: Mapping[str, Any]) -> List[str]:
        return list(params.get("benchmarks", FIGURE10_BENCHMARKS))

    def _switch_count(self, params: Mapping[str, Any]) -> int:
        return params.get("switch_count", FIGURE10_SWITCH_COUNT)

    def specs(self, params: Mapping[str, Any]) -> List[RunSpec]:
        seed = params.get("seed", 0)
        switch_count = self._switch_count(params)
        extra = _spec_params(params)
        return [
            RunSpec(benchmark=name, switch_count=switch_count, seed=seed, **extra)
            for name in self._names(params)
        ]


class _Figure10PowerReport(_BenchmarkSetReport):
    """Figure 10: power of resource ordering normalised to deadlock removal."""

    def render(self, params, lookup) -> Dict[str, Any]:
        results = self._results(params, lookup)
        savings = [r.power_saving_percent for r in results]
        return {
            "benchmarks": self._names(params),
            "switch_count": self._switch_count(params),
            "deadlock_removal_normalised_power": [1.0 for _ in results],
            "resource_ordering_normalised_power": [
                r.normalised_ordering_power for r in results
            ],
            "power_saving_percent": savings,
            "average_power_saving_percent": arithmetic_mean(savings),
        }


class _AreaSavingsReport(_BenchmarkSetReport):
    """The §5 area claim: VC and area reduction of removal vs. ordering."""

    def render(self, params, lookup) -> Dict[str, Any]:
        results = self._results(params, lookup)
        vc_reduction = [r.vc_reduction_percent for r in results]
        area_saving = [r.area_saving_percent for r in results]
        return {
            "benchmarks": self._names(params),
            "switch_count": self._switch_count(params),
            "removal_extra_vcs": [r.removal_extra_vcs for r in results],
            "ordering_extra_vcs": [r.ordering_extra_vcs for r in results],
            "vc_reduction_percent": vc_reduction,
            "area_saving_percent": area_saving,
            "average_vc_reduction_percent": arithmetic_mean(vc_reduction),
            "average_area_saving_percent": arithmetic_mean(area_saving),
        }


class _OverheadReport(_BenchmarkSetReport):
    """The §5 overhead claim: removal vs. designs with no deadlock handling."""

    def render(self, params, lookup) -> Dict[str, Any]:
        results = self._results(params, lookup)
        power_overhead = [r.removal_power_overhead_percent for r in results]
        area_overhead = [r.removal_area_overhead_percent for r in results]
        return {
            "benchmarks": self._names(params),
            "switch_count": self._switch_count(params),
            "power_overhead_percent": power_overhead,
            "area_overhead_percent": area_overhead,
            "average_power_overhead_percent": arithmetic_mean(power_overhead),
            "average_area_overhead_percent": arithmetic_mean(area_overhead),
        }


class _LatencyReport(ReportType):
    """Load–latency curves of one benchmark point, per design variant.

    One :class:`RunSpec` per injection scale, so every load point is an
    independently cached, independently parallelisable artifact; the render
    folds the per-spec simulation records into latency/throughput curves
    for the unprotected, deadlock-removal and resource-ordering variants,
    plus each variant's saturation scale (first deadlocked or
    saturated point — deliveries below 80 % of offers).

    Parameters: ``benchmark`` (default ``"D36_8"``), ``switch_count``
    (default 14, the Figure 10 setting), ``injection_scales``, ``seed`` and
    any simulation field (``sim_engine``, ``traffic_scenario``,
    ``sim_cycles``, ``buffer_depth``).
    """

    def _benchmark(self, params: Mapping[str, Any]) -> str:
        return params.get("benchmark", "D36_8")

    def _switch_count(self, params: Mapping[str, Any]) -> int:
        return params.get("switch_count", FIGURE10_SWITCH_COUNT)

    def _scales(self, params: Mapping[str, Any]) -> List[float]:
        return list(params.get("injection_scales", LATENCY_INJECTION_SCALES))

    def specs(self, params: Mapping[str, Any]) -> List[RunSpec]:
        seed = params.get("seed", 0)
        extra = _spec_params(params)
        return [
            RunSpec(
                benchmark=self._benchmark(params),
                switch_count=self._switch_count(params),
                seed=seed,
                injection_scale=scale,
                **extra,
            )
            for scale in self._scales(params)
        ]

    def render(self, params, lookup) -> Dict[str, Any]:
        from repro.api.runner import SIMULATED_VARIANTS  # local: avoid import cycle

        results = self._results(params, lookup)
        scales = self._scales(params)
        curves: Dict[str, Any] = {}
        for variant in SIMULATED_VARIANTS:
            metrics = [r.simulation["variants"][variant] for r in results]
            saturation = None
            for point in metrics:
                offered = point["offered_flits_per_cycle"]
                saturated = offered > 0 and (
                    point["delivered_flits_per_cycle"] < 0.8 * offered
                )
                if point["deadlocked"] or saturated:
                    saturation = point["injection_scale"]
                    break
            curves[variant] = {
                "offered_flits_per_cycle": [m["offered_flits_per_cycle"] for m in metrics],
                "delivered_flits_per_cycle": [
                    m["delivered_flits_per_cycle"] for m in metrics
                ],
                "average_latency": [m["average_latency"] for m in metrics],
                "max_latency": [m["max_latency"] for m in metrics],
                "packets_delivered": [m["packets_delivered"] for m in metrics],
                "deadlocked": [m["deadlocked"] for m in metrics],
                "saturation_scale": saturation,
            }
        first = results[0].simulation if results else {}
        return {
            "benchmark": self._benchmark(params),
            "switch_count": self._switch_count(params),
            "injection_scales": scales,
            "traffic_scenario": first.get("traffic_scenario", "flows"),
            "sim_engine": first.get("engine", "compiled"),
            "variants": curves,
        }


#: Default fault request of the ``resilience`` report: two link failures,
#: later repaired, drawn deterministically from the spec's seed.
DEFAULT_FAULT_SCHEDULE: Dict[str, Any] = {
    "random": {
        "link_failures": 2,
        "start_cycle": 100,
        "end_cycle": 1000,
        "restore_after": 600,
    }
}


class _ResilienceReport(ReportType):
    """Fault-injection outcome of one benchmark point, per design variant.

    One simulating :class:`RunSpec` with a ``fault_schedule``; the render
    folds each variant's ``resilience`` section (recovery latency, lost
    traffic, post-fault deadlock freedom) next to its headline performance
    numbers, so one record answers "what did the faults cost".

    Parameters: ``benchmark`` (default ``"D36_8"``), ``switch_count``
    (default 14), ``injection_scale`` (default 1.0), ``fault_schedule``
    (default :data:`DEFAULT_FAULT_SCHEDULE`), ``seed`` and any simulation
    field (``sim_engine``, ``traffic_scenario``, ``sim_cycles``,
    ``buffer_depth``).
    """

    def _benchmark(self, params: Mapping[str, Any]) -> str:
        return params.get("benchmark", "D36_8")

    def _switch_count(self, params: Mapping[str, Any]) -> int:
        return params.get("switch_count", FIGURE10_SWITCH_COUNT)

    def specs(self, params: Mapping[str, Any]) -> List[RunSpec]:
        extra = _spec_params(params)
        if "fault_model" not in extra:
            extra.setdefault("fault_schedule", dict(DEFAULT_FAULT_SCHEDULE))
        return [
            RunSpec(
                benchmark=self._benchmark(params),
                switch_count=self._switch_count(params),
                seed=params.get("seed", 0),
                injection_scale=params.get("injection_scale", 1.0),
                **extra,
            )
        ]

    def render(self, params, lookup) -> Dict[str, Any]:
        from repro.api.runner import SIMULATED_VARIANTS  # local: avoid import cycle

        result = self._results(params, lookup)[0]
        simulation = result.simulation or {}
        variants: Dict[str, Any] = {}
        for variant in SIMULATED_VARIANTS:
            metrics = simulation.get("variants", {}).get(variant, {})
            entry = _sentinel_free(dict(metrics.get("resilience", {})))
            entry.update(
                average_latency=metrics.get("average_latency"),
                delivered_flits_per_cycle=metrics.get("delivered_flits_per_cycle"),
                deadlocked=metrics.get("deadlocked"),
                deadlock_cycle=metrics.get("deadlock_cycle"),
            )
            variants[variant] = entry
        return {
            "benchmark": self._benchmark(params),
            "switch_count": self._switch_count(params),
            "injection_scale": simulation.get("injection_scale"),
            "sim_cycles": simulation.get("sim_cycles"),
            "sim_engine": simulation.get("engine", "compiled"),
            "fault_schedule": simulation.get("fault_schedule"),
            "variants": variants,
        }


#: Default recovery policies of the ``availability`` report, compared in
#: registry order.
DEFAULT_AVAILABILITY_POLICIES: List[str] = ["removal", "reroute", "idle", "protection"]

#: Default fault seeds of the ``availability`` report (a ten-draw grid, the
#: smallest sample the percentile columns are meaningful over).
DEFAULT_AVAILABILITY_SEEDS: List[int] = list(range(10))


class _AvailabilityReport(ReportType):
    """Multi-seed availability of one benchmark point under one fault model.

    The statistical upgrade of the single-schedule ``resilience`` report:
    one simulating :class:`RunSpec` per (recovery policy × fault seed),
    every point an independently cached artifact.  The spec's own ``seed``
    stays fixed across the grid — only ``fault_params["seed"]`` varies —
    so all points share one synthesized design (one design-cache entry)
    and identical traffic, isolating the fault draw as the only source of
    variance.  The render folds one chosen design variant (default
    ``"removal"``, the paper's protected design) into per-policy
    availability columns: delivered fraction, nearest-rank p50/p95/p99
    recovery latency over the pooled drained batches, the flit-loss
    distribution, never-drained batch counts and the fraction of seeds
    that stayed post-fault deadlock-free.

    Parameters: ``benchmark`` (default ``"D36_8"``), ``switch_count``
    (default 14), ``injection_scale`` (default 1.0), ``fault_model``
    (default ``"uniform"``), ``fault_params``, ``recovery_policies``
    (default :data:`DEFAULT_AVAILABILITY_POLICIES`), ``seeds`` (fault
    seeds, default :data:`DEFAULT_AVAILABILITY_SEEDS`), ``variant``,
    ``seed`` (the fixed design/traffic seed) and any simulation field
    (``sim_engine``, ``traffic_scenario``, ``sim_cycles``,
    ``buffer_depth``).
    """

    def _benchmark(self, params: Mapping[str, Any]) -> str:
        return params.get("benchmark", "D36_8")

    def _switch_count(self, params: Mapping[str, Any]) -> int:
        return params.get("switch_count", FIGURE10_SWITCH_COUNT)

    def _fault_model(self, params: Mapping[str, Any]) -> str:
        return params.get("fault_model", "uniform")

    def _policies(self, params: Mapping[str, Any]) -> List[str]:
        return list(params.get("recovery_policies", DEFAULT_AVAILABILITY_POLICIES))

    def _seeds(self, params: Mapping[str, Any]) -> List[int]:
        return list(params.get("seeds", DEFAULT_AVAILABILITY_SEEDS))

    def _variant(self, params: Mapping[str, Any]) -> str:
        return params.get("variant", "removal")

    def specs(self, params: Mapping[str, Any]) -> List[RunSpec]:
        extra = _spec_params(params)
        # The report's own axes, never a pass-through.
        extra.pop("fault_model", None)
        extra.pop("fault_params", None)
        extra.pop("fault_recovery", None)
        fault_params = dict(params.get("fault_params", {}))
        return [
            RunSpec(
                benchmark=self._benchmark(params),
                switch_count=self._switch_count(params),
                seed=params.get("seed", 0),
                injection_scale=params.get("injection_scale", 1.0),
                fault_model=self._fault_model(params),
                fault_params={**fault_params, "seed": fault_seed},
                fault_recovery=policy,
                **extra,
            )
            for policy in self._policies(params)
            for fault_seed in self._seeds(params)
        ]

    def render(self, params, lookup) -> Dict[str, Any]:
        policies = self._policies(params)
        seeds = self._seeds(params)
        variant = self._variant(params)
        results = self._results(params, lookup)
        per_policy: Dict[str, Any] = {}
        for index, policy in enumerate(policies):
            rows = results[index * len(seeds) : (index + 1) * len(seeds)]
            delivered: List[float] = []
            flits_lost: List[int] = []
            pooled_recovery: List[int] = []
            never_drained = 0
            deadlock_free_seeds = 0
            for row in rows:
                metrics = (row.simulation or {}).get("variants", {}).get(variant, {})
                injected = metrics.get("packets_injected") or 0
                delivered.append(
                    metrics.get("packets_delivered", 0) / injected if injected else 0.0
                )
                resilience = _sentinel_free(dict(metrics.get("resilience", {})))
                flits_lost.append(resilience.get("flits_lost", 0))
                cycles = resilience.get("recovery_cycles", [])
                pooled_recovery.extend(c for c in cycles if c >= 0)
                never_drained += resilience.get("batches_never_drained", 0)
                if resilience.get("post_fault_deadlock_free") is not False:
                    deadlock_free_seeds += 1
            per_policy[policy] = {
                "delivered_fraction": delivered,
                "mean_delivered_fraction": arithmetic_mean(delivered) if delivered else 0.0,
                "recovery_cycles_p50": _percentile(pooled_recovery, 50),
                "recovery_cycles_p95": _percentile(pooled_recovery, 95),
                "recovery_cycles_p99": _percentile(pooled_recovery, 99),
                "recovery_samples": len(pooled_recovery),
                "batches_never_drained": never_drained,
                "flits_lost": flits_lost,
                "mean_flits_lost": arithmetic_mean(flits_lost) if flits_lost else 0.0,
                "deadlock_free_fraction": (
                    deadlock_free_seeds / len(rows) if rows else 0.0
                ),
            }
        first = results[0].simulation if results else {}
        return {
            "benchmark": self._benchmark(params),
            "switch_count": self._switch_count(params),
            "injection_scale": params.get("injection_scale", 1.0),
            "fault_model": self._fault_model(params),
            "fault_params": dict(params.get("fault_params", {})),
            "seeds": seeds,
            "variant": variant,
            "sim_engine": first.get("engine", "compiled") if first else "compiled",
            "policies": per_policy,
        }


#: Default size sweeps of the ``scale`` report, per topology family.
DEFAULT_SCALE_POINTS: Dict[str, List[Dict[str, int]]] = {
    "ring": [{"n_switches": 4}, {"n_switches": 8}, {"n_switches": 16}],
    "mesh": [
        {"rows": 3, "cols": 3},
        {"rows": 4, "cols": 4},
        {"rows": 5, "cols": 5},
    ],
    "torus": [
        {"rows": 3, "cols": 3},
        {"rows": 4, "cols": 4},
        {"rows": 5, "cols": 5},
    ],
    "fat_tree": [{"k": 2}, {"k": 4}, {"k": 6}],
    "clos": [
        {"spines": 2, "leaves": 4},
        {"spines": 4, "leaves": 8},
        {"spines": 6, "leaves": 12},
    ],
    "vl2": [
        {"spines": 2, "leaves": 4},
        {"spines": 4, "leaves": 8},
        {"spines": 6, "leaves": 12},
    ],
    "dragonfly": [
        {"groups": 2, "routers": 2},
        {"groups": 3, "routers": 3},
        {"groups": 4, "routers": 4},
    ],
}


class _ScaleReport(ReportType):
    """Scaling curves of one topology family across sizes.

    One simulating :class:`RunSpec` per size point: each point synthesizes
    the family instance (``topology_family`` + that point's
    ``family_params``), runs the removal/ordering comparison and simulates
    all three variants at one load level, so the render can plot
    removal-time, extra-VC, latency and saturation curves against network
    size — the datacenter-scale question of whether the paper's algorithm
    keeps up as the fabric grows.

    Parameters: ``family`` (required), ``points`` (list of family-parameter
    dictionaries; default :data:`DEFAULT_SCALE_POINTS` for the family),
    ``benchmark`` (one registry name used at every size; default a
    parametric ``uniform_c{2·size}_f2`` synthetic per point, which scales
    the workload with the fabric), ``injection_scale`` (default 0.75),
    ``seed`` and any simulation field (``sim_engine``,
    ``traffic_scenario``, ``scenario_params``, ``sim_cycles``,
    ``buffer_depth``).
    """

    def _family(self, params: Mapping[str, Any]) -> str:
        from repro.errors import PlanError  # local: avoid import cycle

        family = params.get("family")
        if not isinstance(family, str) or not family:
            raise PlanError(
                "the scale report needs a 'family' parameter naming a "
                "topology family (e.g. 'fat_tree')"
            )
        return family

    def _points(self, params: Mapping[str, Any]) -> List[Dict[str, Any]]:
        from repro.errors import PlanError  # local: avoid import cycle

        family = self._family(params)
        points = params.get("points")
        if points is None:
            points = DEFAULT_SCALE_POINTS.get(family)
            if points is None:
                raise PlanError(
                    f"no default size sweep for topology family {family!r}; "
                    "pass explicit 'points'"
                )
        if not isinstance(points, (list, tuple)) or not points:
            raise PlanError("scale report 'points' must be a non-empty list")
        return [dict(point) for point in points]

    def _sizes(self, params: Mapping[str, Any]) -> List[int]:
        from repro.synthesis.families import family_size  # local: lazy import

        family = self._family(params)
        return [family_size(family, point) for point in self._points(params)]

    def _benchmarks(self, params: Mapping[str, Any]) -> List[str]:
        benchmark = params.get("benchmark")
        if benchmark is not None:
            return [benchmark for _ in self._points(params)]
        # Parametric synthetic workload growing with the fabric: two cores
        # per switch, two flows per core.
        return [f"uniform_c{2 * size}_f2" for size in self._sizes(params)]

    def specs(self, params: Mapping[str, Any]) -> List[RunSpec]:
        family = self._family(params)
        points = self._points(params)
        sizes = self._sizes(params)
        benchmarks = self._benchmarks(params)
        extra = _spec_params(params)
        # The family axis is the report's own sweep, never a pass-through.
        extra.pop("topology_family", None)
        extra.pop("family_params", None)
        return [
            RunSpec(
                benchmark=benchmark,
                switch_count=size,
                seed=params.get("seed", 0),
                injection_scale=params.get("injection_scale", 0.75),
                topology_family=family,
                family_params=point,
                **extra,
            )
            for benchmark, size, point in zip(benchmarks, sizes, points)
        ]

    def render(self, params, lookup) -> Dict[str, Any]:
        from repro.api.runner import SIMULATED_VARIANTS  # local: avoid import cycle

        results = self._results(params, lookup)
        curves: Dict[str, Any] = {}
        for variant in SIMULATED_VARIANTS:
            metrics = [r.simulation["variants"][variant] for r in results]
            saturated = [
                bool(
                    m["deadlocked"]
                    or (
                        m["offered_flits_per_cycle"] > 0
                        and m["delivered_flits_per_cycle"]
                        < 0.8 * m["offered_flits_per_cycle"]
                    )
                )
                for m in metrics
            ]
            curves[variant] = {
                "offered_flits_per_cycle": [m["offered_flits_per_cycle"] for m in metrics],
                "delivered_flits_per_cycle": [
                    m["delivered_flits_per_cycle"] for m in metrics
                ],
                "average_latency": [m["average_latency"] for m in metrics],
                "deadlocked": [m["deadlocked"] for m in metrics],
                "saturated": saturated,
            }
        first = results[0].simulation if results else {}
        return {
            "family": self._family(params),
            "points": self._points(params),
            "sizes": self._sizes(params),
            "benchmarks": self._benchmarks(params),
            "injection_scale": params.get("injection_scale", 0.75),
            "traffic_scenario": first.get("traffic_scenario", "flows"),
            "sim_engine": first.get("engine", "compiled"),
            "removal_extra_vcs": [r.removal_extra_vcs for r in results],
            "ordering_extra_vcs": [r.ordering_extra_vcs for r in results],
            "removal_runtime_s": [r.removal_runtime_s for r in results],
            "variants": curves,
        }


report_types.register("latency", _LatencyReport())
report_types.register("scale", _ScaleReport())
report_types.register("resilience", _ResilienceReport())
report_types.register("availability", _AvailabilityReport())
report_types.register("figure8", _SwitchCountSweepReport("D26_media", FIGURE8_SWITCH_COUNTS))
report_types.register("figure9", _SwitchCountSweepReport("D36_8", FIGURE9_SWITCH_COUNTS))
report_types.register("figure10", _Figure10PowerReport())
report_types.register("area", _AreaSavingsReport())
report_types.register("overhead", _OverheadReport())


def run_report(
    name: str,
    params: Optional[Mapping[str, Any]] = None,
    *,
    jobs: Optional[int] = None,
    cache_dir=None,
) -> Dict[str, Any]:
    """Execute one report end-to-end and return its rendered dictionary."""
    from repro.api.runner import Runner  # local: avoid import cycle

    request = ReportRequest(type=name, params=dict(params or {}))
    plan = ExperimentPlan(name=f"report-{name}", reports=[request])
    outcome = Runner(cache_dir=cache_dir, jobs=jobs).run(plan)
    return outcome.render_reports()[0][1]
