"""Whole-design consistency checks.

The checks here are what make the library safe to compose: the topology
synthesizer, the deadlock remover, the resource-ordering baseline and the
simulator all call :func:`validate_design` at their boundaries so a broken
intermediate design is caught where it is produced rather than three stages
later.
"""

from __future__ import annotations

from typing import List

from repro.errors import ValidationError
from repro.model.channels import channels_are_adjacent
from repro.model.design import NocDesign


def validate_topology(design: NocDesign) -> List[str]:
    """Topology-level findings (empty list when healthy)."""
    problems: List[str] = []
    topology = design.topology
    if topology.switch_count == 0:
        problems.append("topology has no switches")
    if topology.switch_count > 1 and not topology.is_connected():
        problems.append("topology is not connected")
    for link in topology.links:
        if topology.vc_count(link) < 1:
            problems.append(f"link {link.name} has no virtual channels")
    return problems


def validate_core_mapping(design: NocDesign) -> List[str]:
    """Core-to-switch mapping findings."""
    problems: List[str] = []
    for core in design.traffic.cores:
        if core not in design.core_map:
            problems.append(f"core {core!r} is not attached to any switch")
        elif not design.topology.has_switch(design.core_map[core]):
            problems.append(
                f"core {core!r} is attached to unknown switch {design.core_map[core]!r}"
            )
    for core in design.core_map:
        if not design.traffic.has_core(core):
            problems.append(f"core mapping mentions unknown core {core!r}")
    return problems


def validate_routes(design: NocDesign, require_all: bool = True) -> List[str]:
    """Route findings: existence, channel validity, endpoint correctness."""
    problems: List[str] = []
    topology = design.topology
    for flow in design.traffic.flows:
        if not design.routes.has_route(flow.name):
            if require_all:
                src_sw = design.core_map.get(flow.src)
                dst_sw = design.core_map.get(flow.dst)
                if src_sw is not None and src_sw == dst_sw:
                    # Cores on the same switch legitimately need no route.
                    continue
                problems.append(f"flow {flow.name!r} has no route")
            continue
        route = design.routes.route(flow.name)
        # One pass per route: channel validity, contiguity (designs can
        # arrive through serialization or tools that bypass the Route
        # constructor) and duplicate-channel detection share the same walk —
        # validate_design brackets every removal run, so the route walk is
        # on a hot path and must not be paid three times per flow.
        previous = None
        contiguity_reported = False
        duplicate_reported = False
        seen = set()
        for channel in route:
            if not topology.has_link(channel.link):
                problems.append(
                    f"flow {flow.name!r}: route uses unknown link {channel.link.name}"
                )
            elif not topology.has_channel(channel):
                problems.append(
                    f"flow {flow.name!r}: route uses VC {channel.vc} on link "
                    f"{channel.link.name} but the link only has "
                    f"{topology.vc_count(channel.link)} VC(s)"
                )
            if (
                previous is not None
                and not contiguity_reported
                and not channels_are_adjacent(previous, channel)
            ):
                problems.append(
                    f"flow {flow.name!r}: route is not contiguous — "
                    f"{previous.name} is followed by {channel.name} but "
                    f"{previous.dst!r} != {channel.src!r}"
                )
                contiguity_reported = True
            previous = channel
            if not duplicate_reported:
                if channel in seen:
                    problems.append(
                        f"flow {flow.name!r}: route traverses channel {channel.name} twice"
                    )
                    duplicate_reported = True
                else:
                    seen.add(channel)
        src_switch = design.core_map.get(flow.src)
        dst_switch = design.core_map.get(flow.dst)
        if src_switch is not None and route.source_switch != src_switch:
            problems.append(
                f"flow {flow.name!r}: route starts at {route.source_switch!r} but the "
                f"source core {flow.src!r} is attached to {src_switch!r}"
            )
        if dst_switch is not None and route.destination_switch != dst_switch:
            problems.append(
                f"flow {flow.name!r}: route ends at {route.destination_switch!r} but the "
                f"destination core {flow.dst!r} is attached to {dst_switch!r}"
            )
    for flow_name in design.routes.flow_names:
        if not design.traffic.has_flow(flow_name):
            problems.append(f"route defined for unknown flow {flow_name!r}")
    return problems


def collect_problems(design: NocDesign, require_all_routes: bool = True) -> List[str]:
    """All findings from every validation pass."""
    problems = []
    problems.extend(validate_topology(design))
    problems.extend(validate_core_mapping(design))
    problems.extend(validate_routes(design, require_all=require_all_routes))
    return problems


def validate_design(design: NocDesign, require_all_routes: bool = True) -> None:
    """Raise :class:`~repro.errors.ValidationError` when any check fails."""
    problems = collect_problems(design, require_all_routes=require_all_routes)
    if problems:
        raise ValidationError(problems)


def is_valid(design: NocDesign, require_all_routes: bool = True) -> bool:
    """True when :func:`validate_design` would not raise."""
    return not collect_problems(design, require_all_routes=require_all_routes)
