"""JSON serialization of NoC designs.

The on-disk format is a single JSON document with four sections (topology,
traffic, core_map, routes).  It is deliberately flat and human-editable so
designs produced by external synthesis tools can be imported, which mirrors
how the paper treats topology synthesis as an external input.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.errors import SerializationError
from repro.model.channels import Channel, Link
from repro.model.design import NocDesign
from repro.model.routes import Route, RouteSet
from repro.model.topology import Topology
from repro.model.traffic import CommunicationGraph

FORMAT_VERSION = 1


def design_to_dict(design: NocDesign) -> Dict[str, Any]:
    """Convert a design to a JSON-serializable dictionary."""
    topology = design.topology
    links = []
    for link in topology.links:
        links.append(
            {
                "src": link.src,
                "dst": link.dst,
                "index": link.index,
                "vc_count": topology.vc_count(link),
                "length_mm": topology.link_length(link),
            }
        )
    flows = []
    for flow in design.traffic.flows:
        flows.append(
            {
                "name": flow.name,
                "src": flow.src,
                "dst": flow.dst,
                "bandwidth": flow.bandwidth,
                "packet_size_flits": flow.packet_size_flits,
            }
        )
    routes = {}
    for flow_name, route in design.routes.items():
        routes[flow_name] = [
            {"src": ch.src, "dst": ch.dst, "index": ch.link.index, "vc": ch.vc}
            for ch in route
        ]
    return {
        "format_version": FORMAT_VERSION,
        "name": design.name,
        "topology": {
            "name": topology.name,
            "switches": topology.switches,
            "links": links,
        },
        "traffic": {
            "name": design.traffic.name,
            "cores": design.traffic.cores,
            "flows": flows,
        },
        "core_map": dict(sorted(design.core_map.items())),
        "routes": routes,
    }


def design_from_dict(data: Dict[str, Any]) -> NocDesign:
    """Rebuild a design from the dictionary produced by :func:`design_to_dict`."""
    try:
        version = data.get("format_version", FORMAT_VERSION)
        if version != FORMAT_VERSION:
            raise SerializationError(
                f"unsupported design format version {version} (expected {FORMAT_VERSION})"
            )
        topo_data = data["topology"]
        topology = Topology(topo_data.get("name", "topology"))
        topology.add_switches(topo_data["switches"])
        for entry in topo_data["links"]:
            link = topology.add_link(
                entry["src"],
                entry["dst"],
                index=entry.get("index", 0),
                vc_count=entry.get("vc_count", 1),
            )
            if "length_mm" in entry:
                topology.set_link_length(link, entry["length_mm"])

        traffic_data = data["traffic"]
        traffic = CommunicationGraph(traffic_data.get("name", "traffic"))
        traffic.add_cores(traffic_data["cores"])
        for entry in traffic_data["flows"]:
            traffic.add_flow(
                entry["name"],
                entry["src"],
                entry["dst"],
                entry.get("bandwidth", 1.0),
                entry.get("packet_size_flits", 8),
            )

        routes = RouteSet()
        for flow_name, channel_entries in data.get("routes", {}).items():
            channels = [
                Channel(Link(e["src"], e["dst"], e.get("index", 0)), e.get("vc", 0))
                for e in channel_entries
            ]
            routes.set_route(flow_name, Route(channels))

        design = NocDesign(
            name=data.get("name", "design"),
            topology=topology,
            traffic=traffic,
            core_map=dict(data.get("core_map", {})),
            routes=routes,
        )
        return design
    except SerializationError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed design document: {exc}") from exc


def save_design(design: NocDesign, path: Union[str, Path]) -> Path:
    """Write a design to ``path`` as JSON and return the path."""
    path = Path(path)
    try:
        path.write_text(json.dumps(design_to_dict(design), indent=2, sort_keys=True))
    except OSError as exc:
        raise SerializationError(f"could not write design to {path}: {exc}") from exc
    return path


def load_design(path: Union[str, Path]) -> NocDesign:
    """Read a design previously written by :func:`save_design`."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise SerializationError(f"could not read design from {path}: {exc}") from exc
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON in {path}: {exc}") from exc
    return design_from_dict(data)
