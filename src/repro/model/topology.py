"""The topology graph ``TG(S, L)`` — Definition 1.

A :class:`Topology` stores the switches, the directed physical links between
them and the number of virtual channels carried by each link.  Links start
with a single VC; both the deadlock-removal algorithm and the
resource-ordering baseline grow ``vc_count`` when they need extra channels.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import TopologyError
from repro.model.channels import Channel, Link


class Topology:
    """Directed switch-level topology graph.

    Parameters
    ----------
    name:
        Optional identifier used in reports and serialized files.

    Notes
    -----
    The class deliberately keeps the representation simple (dictionaries of
    switches and links) instead of wrapping :mod:`networkx`; the deadlock
    algorithms operate on the channel dependency graph, not directly on the
    topology, and a plain representation keeps copies cheap and the
    serialization obvious.
    """

    def __init__(self, name: str = "topology"):
        self.name = name
        self._switches: List[str] = []
        self._switch_set: set = set()
        # link -> number of virtual channels on that link (>= 1)
        self._links: Dict[Link, int] = {}
        # optional per-link physical length in millimetres (for link power)
        self._link_lengths: Dict[Link, float] = {}

    # ------------------------------------------------------------------
    # switches
    # ------------------------------------------------------------------
    def add_switch(self, switch: str) -> None:
        """Add a switch; adding an existing switch is an error."""
        if not switch:
            raise TopologyError("switch name must be non-empty")
        if switch in self._switch_set:
            raise TopologyError(f"switch {switch!r} already exists")
        self._switch_set.add(switch)
        self._switches.append(switch)

    def add_switches(self, switches: Iterable[str]) -> None:
        """Add several switches at once."""
        for switch in switches:
            self.add_switch(switch)

    def has_switch(self, switch: str) -> bool:
        """True when ``switch`` is part of the topology."""
        return switch in self._switch_set

    @property
    def switches(self) -> List[str]:
        """Switch names in insertion order (copy)."""
        return list(self._switches)

    @property
    def switch_count(self) -> int:
        """Number of switches in the topology."""
        return len(self._switches)

    # ------------------------------------------------------------------
    # links
    # ------------------------------------------------------------------
    def add_link(
        self,
        src: str,
        dst: str,
        *,
        index: int = 0,
        vc_count: int = 1,
        length_mm: Optional[float] = None,
    ) -> Link:
        """Add a directed physical link from ``src`` to ``dst``.

        Returns the created :class:`Link`.
        """
        if not self.has_switch(src):
            raise TopologyError(f"unknown source switch {src!r}")
        if not self.has_switch(dst):
            raise TopologyError(f"unknown destination switch {dst!r}")
        if vc_count < 1:
            raise TopologyError(f"a link must carry at least one VC, got {vc_count}")
        link = Link(src, dst, index)
        if link in self._links:
            raise TopologyError(f"link {link.name} already exists")
        self._links[link] = vc_count
        if length_mm is not None:
            self.set_link_length(link, length_mm)
        return link

    def add_bidirectional_link(
        self, a: str, b: str, *, index: int = 0, vc_count: int = 1, length_mm: Optional[float] = None
    ) -> Tuple[Link, Link]:
        """Add the pair of directed links ``a->b`` and ``b->a``."""
        forward = self.add_link(a, b, index=index, vc_count=vc_count, length_mm=length_mm)
        backward = self.add_link(b, a, index=index, vc_count=vc_count, length_mm=length_mm)
        return forward, backward

    def has_link(self, link: Link) -> bool:
        """True when the physical link exists."""
        return link in self._links

    def find_link(self, src: str, dst: str, index: int = 0) -> Optional[Link]:
        """Return the link ``src->dst`` with the given parallel index, or None."""
        candidate = Link(src, dst, index)
        return candidate if candidate in self._links else None

    @property
    def links(self) -> List[Link]:
        """All physical links, sorted for determinism (copy)."""
        return sorted(self._links)

    @property
    def link_count(self) -> int:
        """Number of directed physical links."""
        return len(self._links)

    def remove_link(self, link: Link) -> None:
        """Remove a physical link (and its VC/length bookkeeping)."""
        if link not in self._links:
            raise TopologyError(f"cannot remove unknown link {link.name}")
        del self._links[link]
        self._link_lengths.pop(link, None)

    # ------------------------------------------------------------------
    # link lengths (used by the link power model)
    # ------------------------------------------------------------------
    def set_link_length(self, link: Link, length_mm: float) -> None:
        """Record the physical length of a link in millimetres."""
        if link not in self._links:
            raise TopologyError(f"cannot set length of unknown link {link.name}")
        if length_mm <= 0:
            raise TopologyError(f"link length must be positive, got {length_mm}")
        self._link_lengths[link] = float(length_mm)

    def link_length(self, link: Link, default: float = 1.0) -> float:
        """Physical length of a link in millimetres (default 1 mm)."""
        return self._link_lengths.get(link, default)

    # ------------------------------------------------------------------
    # virtual channels
    # ------------------------------------------------------------------
    def vc_count(self, link: Link) -> int:
        """Number of virtual channels currently carried by ``link``."""
        if link not in self._links:
            raise TopologyError(f"unknown link {link.name}")
        return self._links[link]

    def add_virtual_channel(self, link: Link) -> Channel:
        """Add one VC to ``link`` and return the newly created channel."""
        if link not in self._links:
            raise TopologyError(f"cannot add a VC to unknown link {link.name}")
        new_vc = self._links[link]
        self._links[link] = new_vc + 1
        return Channel(link, new_vc)

    def add_parallel_link(self, link: Link, *, vc_count: int = 1) -> Link:
        """Add a physical link parallel to ``link`` (same endpoints, next free
        parallel index) and return it.

        This is the "add physical channels instead of VCs" option the paper
        mentions for NoC architectures without virtual-channel support: the
        new link carries its own buffer(s) and its own switch ports.
        """
        if link not in self._links:
            raise TopologyError(f"cannot parallel unknown link {link.name}")
        index = link.index
        while Link(link.src, link.dst, index) in self._links:
            index += 1
        new_link = self.add_link(link.src, link.dst, index=index, vc_count=vc_count)
        if link in self._link_lengths:
            self.set_link_length(new_link, self._link_lengths[link])
        return new_link

    @property
    def extra_parallel_link_count(self) -> int:
        """Number of physical links with a parallel index greater than zero.

        The physical-channel variant of the removal algorithm grows this
        counter instead of :attr:`extra_vc_count`.
        """
        return sum(1 for link in self._links if link.index > 0)

    def has_channel(self, channel: Channel) -> bool:
        """True when ``channel`` (link + VC index) exists."""
        return channel.link in self._links and channel.vc < self._links[channel.link]

    def channels(self) -> List[Channel]:
        """All channels ``(link, vc)`` in the topology, sorted."""
        result = []
        for link in sorted(self._links):
            for vc in range(self._links[link]):
                result.append(Channel(link, vc))
        return result

    @property
    def channel_count(self) -> int:
        """Total number of channels (sum of VC counts over all links)."""
        return sum(self._links.values())

    @property
    def extra_vc_count(self) -> int:
        """Number of VCs beyond the first one on each link.

        This is the quantity plotted on the y-axis of Figures 8 and 9 of the
        paper: how many *additional* channels a deadlock-handling scheme had
        to add on top of the bare topology.
        """
        return sum(count - 1 for count in self._links.values())

    # ------------------------------------------------------------------
    # graph queries
    # ------------------------------------------------------------------
    def out_links(self, switch: str) -> List[Link]:
        """Links leaving ``switch``, sorted."""
        if not self.has_switch(switch):
            raise TopologyError(f"unknown switch {switch!r}")
        return sorted(link for link in self._links if link.src == switch)

    def in_links(self, switch: str) -> List[Link]:
        """Links entering ``switch``, sorted."""
        if not self.has_switch(switch):
            raise TopologyError(f"unknown switch {switch!r}")
        return sorted(link for link in self._links if link.dst == switch)

    def neighbors(self, switch: str) -> List[str]:
        """Switches reachable over one outgoing link, sorted and deduplicated."""
        return sorted({link.dst for link in self.out_links(switch)})

    def degree(self, switch: str) -> int:
        """Total number of links touching ``switch`` (in + out)."""
        return len(self.out_links(switch)) + len(self.in_links(switch))

    def is_connected(self) -> bool:
        """True when every switch can reach every other switch treating links
        as undirected (the usual notion of connectivity for NoC floorplans)."""
        if not self._switches:
            return True
        adjacency: Dict[str, set] = {s: set() for s in self._switches}
        for link in self._links:
            adjacency[link.src].add(link.dst)
            adjacency[link.dst].add(link.src)
        seen = set()
        frontier = [self._switches[0]]
        while frontier:
            node = frontier.pop()
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(adjacency[node] - seen)
        return len(seen) == len(self._switches)

    def __iter__(self) -> Iterator[str]:
        return iter(self._switches)

    def __contains__(self, switch: str) -> bool:
        return switch in self._switch_set

    # ------------------------------------------------------------------
    # copying / equality / display
    # ------------------------------------------------------------------
    def copy(self) -> "Topology":
        """Deep-enough copy (switches, links, VC counts, lengths)."""
        clone = Topology(self.name)
        clone._switches = list(self._switches)
        clone._switch_set = set(self._switch_set)
        clone._links = dict(self._links)
        clone._link_lengths = dict(self._link_lengths)
        return clone

    def __eq__(self, other) -> bool:
        if not isinstance(other, Topology):
            return NotImplemented
        return (
            self._switch_set == other._switch_set
            and self._links == other._links
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Topology(name={self.name!r}, switches={self.switch_count}, "
            f"links={self.link_count}, channels={self.channel_count})"
        )
