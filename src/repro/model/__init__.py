"""NoC design model: switches, links, channels, cores, flows, routes.

This subpackage implements Definitions 1-4 of the paper:

* :class:`~repro.model.topology.Topology` — the topology graph ``TG(S, L)``
  of switches and directed physical links, each link carrying one or more
  virtual channels.
* :class:`~repro.model.traffic.CommunicationGraph` — the communication graph
  ``G(V, E)`` of cores and flows.
* :class:`~repro.model.routes.Route` / :class:`~repro.model.routes.RouteSet`
  — the per-flow ordered channel lists.
* :class:`~repro.model.design.NocDesign` — the bundle of all of the above
  plus the core-to-switch mapping, which is what the deadlock-removal
  algorithm, the resource-ordering baseline, the power models and the
  simulator all consume.
"""

from repro.model.channels import Channel, Link
from repro.model.design import NocDesign
from repro.model.routes import Route, RouteSet
from repro.model.topology import Topology
from repro.model.traffic import CommunicationGraph, Flow

__all__ = [
    "Channel",
    "Link",
    "Topology",
    "CommunicationGraph",
    "Flow",
    "Route",
    "RouteSet",
    "NocDesign",
]
