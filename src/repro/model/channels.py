"""Physical links and channels (link + virtual channel) — Definition 3/4.

A *physical link* is a directed connection between two switches.  A
*channel* is a physical link together with a virtual-channel (VC) index;
channels are the vertices of the channel dependency graph and the resources
that wormhole packets acquire hop by hop.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TopologyError


@dataclass(frozen=True, order=True)
class Link:
    """A directed physical link between two switches.

    Parameters
    ----------
    src:
        Name of the switch the link leaves.
    dst:
        Name of the switch the link enters.
    index:
        Disambiguates parallel physical links between the same pair of
        switches.  Almost always ``0``.
    """

    src: str
    dst: str
    index: int = 0

    def __post_init__(self):
        if not self.src or not self.dst:
            raise TopologyError("link endpoints must be non-empty switch names")
        if self.src == self.dst:
            raise TopologyError(f"self-loop link on switch {self.src!r} is not allowed")
        if self.index < 0:
            raise TopologyError(f"link index must be non-negative, got {self.index}")

    @property
    def name(self) -> str:
        """Human-readable name, e.g. ``SW1->SW2`` or ``SW1->SW2#1``."""
        suffix = "" if self.index == 0 else f"#{self.index}"
        return f"{self.src}->{self.dst}{suffix}"

    def reversed(self) -> "Link":
        """The link going the opposite direction (same parallel index)."""
        return Link(self.dst, self.src, self.index)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


@dataclass(frozen=True, order=True)
class Channel:
    """A physical link plus a virtual-channel index (Definition 3).

    Channels are the unit of resource acquisition under wormhole flow
    control and therefore the vertices of the channel dependency graph
    (Definition 4).  ``vc == 0`` is the default channel every link starts
    with; the deadlock-removal algorithm and the resource-ordering baseline
    add channels with higher ``vc`` indices.
    """

    link: Link
    vc: int = 0

    def __post_init__(self):
        if self.vc < 0:
            raise TopologyError(f"virtual channel index must be non-negative, got {self.vc}")

    @property
    def src(self) -> str:
        """Switch the channel leaves."""
        return self.link.src

    @property
    def dst(self) -> str:
        """Switch the channel enters."""
        return self.link.dst

    @property
    def name(self) -> str:
        """Human-readable name, e.g. ``SW1->SW2.vc0``."""
        return f"{self.link.name}.vc{self.vc}"

    def with_vc(self, vc: int) -> "Channel":
        """The channel on the same physical link but a different VC."""
        return Channel(self.link, vc)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


def channels_are_adjacent(first: Channel, second: Channel) -> bool:
    """True when a packet can traverse ``first`` and then ``second``.

    Two channels are adjacent when the switch the first one enters is the
    switch the second one leaves — i.e. the pair can appear consecutively in
    a route and therefore creates a dependency edge in the CDG.
    """
    return first.dst == second.src
