"""Routes — Definition 3.

A :class:`Route` is the ordered list of channels a flow's packets traverse
from the switch its source core is attached to, to the switch its
destination core is attached to.  A :class:`RouteSet` maps flow names to
routes and is one of the three inputs of the deadlock-removal algorithm
(Algorithm 1 of the paper), together with the topology and the traffic.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import RouteError
from repro.model.channels import Channel, Link, channels_are_adjacent


class Route:
    """An ordered, contiguous sequence of channels for one flow.

    The route is immutable from the outside; the deadlock-removal algorithm
    produces *new* Route objects when it moves a flow onto freshly added
    virtual channels.
    """

    def __init__(self, channels: Sequence[Channel]):
        channels = list(channels)
        if not channels:
            raise RouteError("a route must contain at least one channel")
        for first, second in zip(channels, channels[1:]):
            if not channels_are_adjacent(first, second):
                raise RouteError(
                    f"route is not contiguous: {first.name} is followed by "
                    f"{second.name} but {first.dst!r} != {second.src!r}"
                )
        self._channels: Tuple[Channel, ...] = tuple(channels)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def channels(self) -> Tuple[Channel, ...]:
        """The channels in traversal order."""
        return self._channels

    @property
    def links(self) -> Tuple[Link, ...]:
        """The physical links in traversal order."""
        return tuple(channel.link for channel in self._channels)

    @property
    def source_switch(self) -> str:
        """Switch the route starts from."""
        return self._channels[0].src

    @property
    def destination_switch(self) -> str:
        """Switch the route ends at."""
        return self._channels[-1].dst

    @property
    def hop_count(self) -> int:
        """Number of channels (switch-to-switch hops) in the route."""
        return len(self._channels)

    @property
    def switches(self) -> List[str]:
        """All switches visited, in order (source first, destination last)."""
        result = [self.source_switch]
        result.extend(channel.dst for channel in self._channels)
        return result

    def uses_channel(self, channel: Channel) -> bool:
        """True when the route traverses ``channel``."""
        return channel in self._channels

    def uses_link(self, link: Link) -> bool:
        """True when the route traverses any VC of ``link``."""
        return any(channel.link == link for channel in self._channels)

    def index_of(self, channel: Channel) -> int:
        """Position of the first occurrence of ``channel`` in the route."""
        try:
            return self._channels.index(channel)
        except ValueError:
            raise RouteError(f"route does not use channel {channel.name}") from None

    def dependencies(self) -> List[Tuple[Channel, Channel]]:
        """Consecutive channel pairs — the CDG edges this route contributes."""
        return list(zip(self._channels, self._channels[1:]))

    # ------------------------------------------------------------------
    # rewriting (used by the cycle breaker)
    # ------------------------------------------------------------------
    def replace_channels(self, mapping: Dict[Channel, Channel]) -> "Route":
        """Return a new route with every channel in ``mapping`` substituted.

        The substitution must preserve the endpoints of each replaced
        channel (a different VC of the same link, or a parallel physical
        link between the same two switches) so that contiguity is untouched.
        """
        for old, new in mapping.items():
            if (old.src, old.dst) != (new.src, new.dst):
                raise RouteError(
                    f"cannot replace {old.name} by {new.name}: different endpoints"
                )
        return Route([mapping.get(channel, channel) for channel in self._channels])

    def replace_at_positions(self, positions: Dict[int, Channel]) -> "Route":
        """Return a new route with the channel at each position replaced.

        Like :meth:`replace_channels` but indexed by position, which matters
        if a route were ever to traverse the same channel twice.
        """
        new_channels = list(self._channels)
        for position, new in positions.items():
            if position < 0 or position >= len(new_channels):
                raise RouteError(f"position {position} outside route of length {len(new_channels)}")
            old = new_channels[position]
            if (old.src, old.dst) != (new.src, new.dst):
                raise RouteError(
                    f"cannot replace {old.name} by {new.name} at "
                    f"position {position}: different endpoints"
                )
            new_channels[position] = new
        return Route(new_channels)

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Channel]:
        return iter(self._channels)

    def __len__(self) -> int:
        return len(self._channels)

    def __getitem__(self, index) -> Channel:
        return self._channels[index]

    def __eq__(self, other) -> bool:
        if not isinstance(other, Route):
            return NotImplemented
        return self._channels == other._channels

    def __hash__(self) -> int:
        return hash(self._channels)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Route(" + " -> ".join(channel.name for channel in self._channels) + ")"


class RouteSet:
    """Mapping from flow name to :class:`Route`."""

    def __init__(self, routes: Optional[Dict[str, Route]] = None):
        self._routes: Dict[str, Route] = dict(routes or {})
        self._version = 0

    @property
    def version(self) -> int:
        """Mutation counter, bumped by every route assignment or removal.

        Derived caches (e.g. the CDG index a
        :class:`~repro.perf.design_context.DesignContext` maintains) record
        the version they were built against and detect out-of-band route
        changes by comparing it — an O(1) staleness check where comparing
        the routes themselves would cost a full walk.
        """
        return self._version

    def set_route(self, flow_name: str, route: Route) -> None:
        """Assign (or replace) the route of a flow."""
        if not flow_name:
            raise RouteError("flow name must be non-empty")
        self._routes[flow_name] = route
        self._version += 1

    def route(self, flow_name: str) -> Route:
        """Look up the route of a flow."""
        try:
            return self._routes[flow_name]
        except KeyError:
            raise RouteError(f"no route for flow {flow_name!r}") from None

    def has_route(self, flow_name: str) -> bool:
        """True when a route is defined for the flow."""
        return flow_name in self._routes

    def remove_route(self, flow_name: str) -> None:
        """Delete a flow's route."""
        if flow_name not in self._routes:
            raise RouteError(f"no route for flow {flow_name!r}")
        del self._routes[flow_name]
        self._version += 1

    @property
    def flow_names(self) -> List[str]:
        """Sorted flow names with a route."""
        return sorted(self._routes)

    def items(self) -> List[Tuple[str, Route]]:
        """(flow name, route) pairs sorted by flow name."""
        return [(name, self._routes[name]) for name in self.flow_names]

    def channels_used(self) -> List[Channel]:
        """All distinct channels used by any route, sorted."""
        used = set()
        for route in self._routes.values():
            used.update(route.channels)
        return sorted(used)

    def links_used(self) -> List[Link]:
        """All distinct physical links used by any route, sorted."""
        used = set()
        for route in self._routes.values():
            used.update(route.links)
        return sorted(used)

    def flows_using_channel(self, channel: Channel) -> List[str]:
        """Names of flows whose route traverses ``channel``, sorted."""
        return [name for name, route in self.items() if route.uses_channel(channel)]

    def flows_using_link(self, link: Link) -> List[str]:
        """Names of flows whose route traverses any VC of ``link``, sorted."""
        return [name for name, route in self.items() if route.uses_link(link)]

    def max_hop_count(self) -> int:
        """Longest route length (0 when empty)."""
        if not self._routes:
            return 0
        return max(route.hop_count for route in self._routes.values())

    def total_hop_count(self) -> int:
        """Sum of route lengths (proportional to dynamic link traversals)."""
        return sum(route.hop_count for route in self._routes.values())

    def copy(self) -> "RouteSet":
        """Shallow copy (routes themselves are immutable)."""
        return RouteSet(dict(self._routes))

    def __iter__(self) -> Iterator[str]:
        return iter(self.flow_names)

    def __len__(self) -> int:
        return len(self._routes)

    def __contains__(self, flow_name: str) -> bool:
        return flow_name in self._routes

    def __eq__(self, other) -> bool:
        if not isinstance(other, RouteSet):
            return NotImplemented
        return self._routes == other._routes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RouteSet({len(self._routes)} routes)"
