"""The complete NoC design: topology + traffic + core mapping + routes.

:class:`NocDesign` is the object every stage of the library consumes and
produces: the topology synthesizer emits one, the deadlock-removal algorithm
and the resource-ordering baseline transform one, and the power models and
the wormhole simulator evaluate one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import DesignError
from repro.model.channels import Channel, Link
from repro.model.routes import Route, RouteSet
from repro.model.topology import Topology
from repro.model.traffic import CommunicationGraph, Flow


@dataclass
class NocDesign:
    """A fully specified application-specific NoC.

    Parameters
    ----------
    name:
        Identifier used in reports.
    topology:
        The switch-level topology graph ``TG(S, L)``.
    traffic:
        The core-level communication graph ``G(V, E)``.
    core_map:
        Mapping from core name to the switch its network interface attaches
        to.  Every core that appears in a flow must be mapped.
    routes:
        Per-flow channel sequences.
    """

    name: str
    topology: Topology
    traffic: CommunicationGraph
    core_map: Dict[str, str] = field(default_factory=dict)
    routes: RouteSet = field(default_factory=RouteSet)

    # ------------------------------------------------------------------
    # core mapping
    # ------------------------------------------------------------------
    def attach_core(self, core: str, switch: str) -> None:
        """Attach ``core`` to ``switch`` (the switch must exist)."""
        if not self.traffic.has_core(core):
            raise DesignError(f"unknown core {core!r}")
        if not self.topology.has_switch(switch):
            raise DesignError(f"unknown switch {switch!r}")
        self.core_map[core] = switch

    def switch_of(self, core: str) -> str:
        """The switch a core attaches to."""
        try:
            return self.core_map[core]
        except KeyError:
            raise DesignError(f"core {core!r} is not attached to any switch") from None

    def cores_on(self, switch: str) -> List[str]:
        """Cores attached to ``switch``, sorted."""
        return sorted(core for core, sw in self.core_map.items() if sw == switch)

    # ------------------------------------------------------------------
    # convenience accessors
    # ------------------------------------------------------------------
    @property
    def flows(self) -> List[Flow]:
        """All flows of the design, sorted by name."""
        return self.traffic.flows

    def route_of(self, flow_name: str) -> Route:
        """The route assigned to ``flow_name``."""
        return self.routes.route(flow_name)

    def flow_endpoints_switches(self, flow: Flow) -> tuple:
        """(source switch, destination switch) for a flow."""
        return self.switch_of(flow.src), self.switch_of(flow.dst)

    @property
    def extra_vc_count(self) -> int:
        """Number of VCs added beyond the first VC of every link."""
        return self.topology.extra_vc_count

    @property
    def channel_count(self) -> int:
        """Total number of channels in the topology."""
        return self.topology.channel_count

    def channel_load(self) -> Dict[Channel, float]:
        """Aggregate bandwidth carried by every channel (MB/s).

        Channels not used by any route are reported with a load of ``0.0``
        so power models can iterate over the complete topology.
        """
        load: Dict[Channel, float] = {channel: 0.0 for channel in self.topology.channels()}
        for flow in self.traffic.flows:
            if not self.routes.has_route(flow.name):
                continue
            for channel in self.routes.route(flow.name):
                load[channel] = load.get(channel, 0.0) + flow.bandwidth
        return load

    def link_load(self) -> Dict[Link, float]:
        """Aggregate bandwidth carried by every physical link (MB/s)."""
        load: Dict[Link, float] = {link: 0.0 for link in self.topology.links}
        for channel, value in self.channel_load().items():
            load[channel.link] = load.get(channel.link, 0.0) + value
        return load

    def switch_port_counts(self) -> Dict[str, Dict[str, int]]:
        """Per-switch port statistics used by the power/area models.

        Returns a mapping ``switch -> {"in_ports", "out_ports", "vcs"}``
        where the port counts include one port per attached core (the NI
        port) and ``vcs`` is the total number of virtual channels over the
        switch's *input* ports (core ports count one VC each), mirroring how
        router buffer area scales.
        """
        stats: Dict[str, Dict[str, int]] = {}
        for switch in self.topology.switches:
            in_links = self.topology.in_links(switch)
            out_links = self.topology.out_links(switch)
            local_ports = len(self.cores_on(switch))
            input_vcs = sum(self.topology.vc_count(link) for link in in_links) + local_ports
            stats[switch] = {
                "in_ports": len(in_links) + local_ports,
                "out_ports": len(out_links) + local_ports,
                "vcs": input_vcs,
            }
        return stats

    # ------------------------------------------------------------------
    # pickling
    # ------------------------------------------------------------------
    def __getstate__(self):
        """Pickle only the declared fields.

        Performance layers attach derived caches to design instances (e.g.
        the :class:`~repro.perf.design_context.DesignContext` with its
        switch graph and CDG index).  Those caches are per-process and
        rebuildable, so shipping them across process boundaries — every
        sweep worker returns designs through ``parallel_map`` — would only
        bloat the payload.
        """
        fields = self.__dataclass_fields__
        return {key: value for key, value in self.__dict__.items() if key in fields}

    # ------------------------------------------------------------------
    # copying
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "NocDesign":
        """Deep-enough copy: topology and routes are copied, traffic shared
        structure is copied, flows themselves are immutable.

        When a :class:`~repro.perf.design_context.DesignContext` with a
        synchronised CDG index is attached to this design, the copy's
        context is seeded from a clone of it (the link sets of a fresh copy
        are equal by construction), so a removal run on the copy skips the
        from-scratch index rebuild.  The fork is duck-typed through the
        attached object to keep the model layer free of perf imports.
        """
        clone = NocDesign(
            name=name or self.name,
            topology=self.topology.copy(),
            traffic=self.traffic.copy(),
            core_map=dict(self.core_map),
            routes=self.routes.copy(),
        )
        context = self.__dict__.get("_design_context")
        if context is not None:
            context.fork_to(clone)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NocDesign(name={self.name!r}, switches={self.topology.switch_count}, "
            f"links={self.topology.link_count}, cores={self.traffic.core_count}, "
            f"flows={self.traffic.flow_count}, extra_vcs={self.extra_vc_count})"
        )
