"""The communication graph ``G(V, E)`` — Definition 2.

Cores are plain string names; a :class:`Flow` is a directed communication
between two cores with an average bandwidth requirement.  The
:class:`CommunicationGraph` collects cores and flows and offers the queries
the synthesizer, the removal algorithm and the simulator need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

from repro.errors import TrafficError


@dataclass(frozen=True)
class Flow:
    """A directed communication flow between two cores.

    Parameters
    ----------
    name:
        Unique identifier, e.g. ``"F1"`` or ``"cpu->mem0"``.
    src:
        Source core name.
    dst:
        Destination core name.
    bandwidth:
        Average required bandwidth in MB/s.  Only relative magnitudes matter
        for the algorithms in this library (route weighting, synthesis
        clustering, simulator injection rates).
    packet_size_flits:
        Nominal packet length used by the wormhole simulator.
    """

    name: str
    src: str
    dst: str
    bandwidth: float = 1.0
    packet_size_flits: int = 8

    def __post_init__(self):
        if not self.name:
            raise TrafficError("flow name must be non-empty")
        if not self.src or not self.dst:
            raise TrafficError(f"flow {self.name!r} must have non-empty endpoints")
        if self.src == self.dst:
            raise TrafficError(f"flow {self.name!r} connects a core to itself")
        if self.bandwidth <= 0:
            raise TrafficError(f"flow {self.name!r} must have positive bandwidth")
        if self.packet_size_flits < 1:
            raise TrafficError(f"flow {self.name!r} must have at least 1 flit per packet")


@dataclass
class CommunicationGraph:
    """Cores and the flows between them (Definition 2)."""

    name: str = "traffic"
    _cores: List[str] = field(default_factory=list)
    _core_set: set = field(default_factory=set)
    _flows: Dict[str, Flow] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # cores
    # ------------------------------------------------------------------
    def add_core(self, core: str) -> None:
        """Add a core; adding an existing core is an error."""
        if not core:
            raise TrafficError("core name must be non-empty")
        if core in self._core_set:
            raise TrafficError(f"core {core!r} already exists")
        self._core_set.add(core)
        self._cores.append(core)

    def add_cores(self, cores: Iterable[str]) -> None:
        """Add several cores at once."""
        for core in cores:
            self.add_core(core)

    def has_core(self, core: str) -> bool:
        """True when ``core`` is part of the graph."""
        return core in self._core_set

    @property
    def cores(self) -> List[str]:
        """Core names in insertion order (copy)."""
        return list(self._cores)

    @property
    def core_count(self) -> int:
        """Number of cores."""
        return len(self._cores)

    # ------------------------------------------------------------------
    # flows
    # ------------------------------------------------------------------
    def add_flow(
        self,
        name: str,
        src: str,
        dst: str,
        bandwidth: float = 1.0,
        packet_size_flits: int = 8,
    ) -> Flow:
        """Create and register a flow; endpoints must be known cores."""
        if not self.has_core(src):
            raise TrafficError(f"flow {name!r}: unknown source core {src!r}")
        if not self.has_core(dst):
            raise TrafficError(f"flow {name!r}: unknown destination core {dst!r}")
        if name in self._flows:
            raise TrafficError(f"flow {name!r} already exists")
        flow = Flow(name, src, dst, bandwidth, packet_size_flits)
        self._flows[name] = flow
        return flow

    def register_flow(self, flow: Flow) -> None:
        """Register an already-constructed :class:`Flow`."""
        if not self.has_core(flow.src):
            raise TrafficError(f"flow {flow.name!r}: unknown source core {flow.src!r}")
        if not self.has_core(flow.dst):
            raise TrafficError(f"flow {flow.name!r}: unknown destination core {flow.dst!r}")
        if flow.name in self._flows:
            raise TrafficError(f"flow {flow.name!r} already exists")
        self._flows[flow.name] = flow

    def flow(self, name: str) -> Flow:
        """Look up a flow by name."""
        try:
            return self._flows[name]
        except KeyError:
            raise TrafficError(f"unknown flow {name!r}") from None

    def has_flow(self, name: str) -> bool:
        """True when a flow with this name exists."""
        return name in self._flows

    @property
    def flows(self) -> List[Flow]:
        """All flows sorted by name (copy)."""
        return [self._flows[k] for k in sorted(self._flows)]

    @property
    def flow_count(self) -> int:
        """Number of flows."""
        return len(self._flows)

    def flows_from(self, core: str) -> List[Flow]:
        """Flows whose source is ``core``, sorted by name."""
        return [f for f in self.flows if f.src == core]

    def flows_to(self, core: str) -> List[Flow]:
        """Flows whose destination is ``core``, sorted by name."""
        return [f for f in self.flows if f.dst == core]

    def flows_between(self, src: str, dst: str) -> List[Flow]:
        """Flows from ``src`` to ``dst``, sorted by name."""
        return [f for f in self.flows if f.src == src and f.dst == dst]

    def bandwidth_between(self, src: str, dst: str) -> float:
        """Total bandwidth of all flows from ``src`` to ``dst``."""
        return sum(f.bandwidth for f in self.flows_between(src, dst))

    @property
    def total_bandwidth(self) -> float:
        """Sum of all flow bandwidths."""
        return sum(f.bandwidth for f in self._flows.values())

    def out_degree(self, core: str) -> int:
        """Number of distinct destination cores ``core`` sends to."""
        return len({f.dst for f in self.flows_from(core)})

    def in_degree(self, core: str) -> int:
        """Number of distinct source cores sending to ``core``."""
        return len({f.src for f in self.flows_to(core)})

    def communication_partners(self, core: str) -> List[str]:
        """All cores ``core`` communicates with (either direction), sorted."""
        partners = {f.dst for f in self.flows_from(core)}
        partners |= {f.src for f in self.flows_to(core)}
        return sorted(partners)

    def __iter__(self) -> Iterator[Flow]:
        return iter(self.flows)

    def __len__(self) -> int:
        return len(self._flows)

    # ------------------------------------------------------------------
    # copying / display
    # ------------------------------------------------------------------
    def copy(self) -> "CommunicationGraph":
        """Copy of the graph (flows are immutable so a shallow copy suffices)."""
        clone = CommunicationGraph(self.name)
        clone._cores = list(self._cores)
        clone._core_set = set(self._core_set)
        clone._flows = dict(self._flows)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CommunicationGraph(name={self.name!r}, cores={self.core_count}, "
            f"flows={self.flow_count})"
        )


def merge_parallel_flows(traffic: CommunicationGraph) -> CommunicationGraph:
    """Collapse flows sharing the same (src, dst) pair into a single flow.

    Some benchmark generators emit one flow per logical transaction type;
    synthesis and route computation only care about the aggregate bandwidth
    between each core pair, so merging keeps the CDG smaller without changing
    its structure.
    """
    merged = CommunicationGraph(traffic.name + "_merged")
    merged.add_cores(traffic.cores)
    seen: Dict[tuple, float] = {}
    sizes: Dict[tuple, int] = {}
    for flow in traffic.flows:
        key = (flow.src, flow.dst)
        seen[key] = seen.get(key, 0.0) + flow.bandwidth
        sizes[key] = max(sizes.get(key, 0), flow.packet_size_flits)
    for i, (key, bandwidth) in enumerate(sorted(seen.items())):
        src, dst = key
        merged.add_flow(f"{src}->{dst}", src, dst, bandwidth, sizes[key])
    return merged
