"""Analytic router power and area model (ORION-2.0-style).

The model decomposes a wormhole router into the four blocks ORION uses —
input buffers, crossbar, allocators/arbiters and the clock tree — and gives
each a dynamic and a leakage contribution:

* **buffers** scale with the number of input virtual channels, the buffer
  depth and the flit width (one FIFO per input VC);
* **crossbar** scales with ``in_ports x out_ports x flit_width``;
* **allocators** scale with the number of VCs competing per output port;
* **clock** is a fixed fraction of the switched capacitance.

The default coefficients are calibrated to published ORION 2.0 numbers for a
65 nm, 1.1 V, 500 MHz router (a 5-port, 2-VC, 32-bit router comes out at
roughly 30 mW and 0.09 mm²).  Absolute accuracy is not the goal — the
paper's evaluation only uses *relative* power/area between designs that
differ in how many VCs they add, and any model monotone in the VC count with
roughly ORION-like proportions preserves those ratios.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PowerModelError


@dataclass(frozen=True)
class TechnologyParameters:
    """Process / operating-point parameters shared by all models.

    Attributes
    ----------
    tech_nm:
        Feature size in nanometres (scaling reference is 65 nm, the node the
        paper uses).
    voltage:
        Supply voltage in volts.
    frequency_hz:
        Router clock frequency.
    flit_width_bits:
        Data-path width; also the link width.
    buffer_depth_flits:
        FIFO depth of every virtual-channel buffer.
    """

    tech_nm: float = 65.0
    voltage: float = 1.1
    frequency_hz: float = 500e6
    flit_width_bits: int = 32
    buffer_depth_flits: int = 4

    def __post_init__(self):
        if self.tech_nm <= 0 or self.voltage <= 0 or self.frequency_hz <= 0:
            raise PowerModelError("technology parameters must be positive")
        if self.flit_width_bits < 1 or self.buffer_depth_flits < 1:
            raise PowerModelError("flit width and buffer depth must be at least 1")

    @property
    def scale(self) -> float:
        """Linear scaling factor relative to the 65 nm reference node."""
        return self.tech_nm / 65.0

    @property
    def link_capacity_mbps(self) -> float:
        """Peak bandwidth of one channel in MB/s (width/8 bytes per cycle)."""
        return (self.flit_width_bits / 8.0) * self.frequency_hz / 1e6


#: Reference energy/area coefficients at 65 nm, 1.1 V.  Units: energies in
#: picojoules per event and per bit, areas in square micrometres per bit or
#: per crosspoint, leakage in milliwatts per bit of storage / per crosspoint.
_COEFFICIENTS = {
    "buffer_energy_pj_per_bit": 0.065,      # one write + one read of one bit
    "crossbar_energy_pj_per_bit": 0.040,    # traversal of one bit
    "arbiter_energy_pj_per_req": 1.20,      # one arbitration decision
    "clock_fraction": 0.35,                 # clock tree as fraction of dynamic
    "buffer_leakage_mw_per_bit": 0.0040,
    "crossbar_leakage_mw_per_crosspoint_bit": 0.0010,
    "arbiter_leakage_mw_per_vc": 0.0100,
    "buffer_area_um2_per_bit": 12.0,
    "crossbar_area_um2_per_crosspoint_bit": 1.5,
    "arbiter_area_um2_per_vc": 120.0,
    "router_overhead_area_um2": 6000.0,     # control, NI glue, wiring overhead
}


@dataclass
class RouterPowerModel:
    """Power/area model of a single wormhole router.

    Parameters
    ----------
    tech:
        Technology/operating parameters (defaults to the 65 nm reference).
    """

    tech: TechnologyParameters = TechnologyParameters()

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _validate(self, in_ports: int, out_ports: int, input_vcs: int) -> None:
        if in_ports < 1 or out_ports < 1:
            raise PowerModelError(
                f"a router needs at least one input and one output port, got "
                f"{in_ports} in / {out_ports} out"
            )
        if input_vcs < in_ports:
            raise PowerModelError(
                f"total input VCs ({input_vcs}) cannot be smaller than the number of "
                f"input ports ({in_ports}) — every port has at least one VC"
            )

    def _scaled(self, value: float, exponent: float = 2.0) -> float:
        """Scale a 65 nm reference value to the configured node.

        Dynamic energy and area shrink roughly quadratically with feature
        size; leakage roughly linearly (exponent 1).
        """
        return value * (self.tech.scale ** exponent)

    # ------------------------------------------------------------------
    # power
    # ------------------------------------------------------------------
    def dynamic_power_mw(
        self, in_ports: int, out_ports: int, input_vcs: int, load: float
    ) -> float:
        """Dynamic power in milliwatts at the given average ``load``.

        ``load`` is the average fraction of cycles a flit traverses the
        router (0..1), taken over all ports.
        """
        self._validate(in_ports, out_ports, input_vcs)
        load = min(max(load, 0.0), 1.0)
        bits = self.tech.flit_width_bits
        flits_per_second = load * self.tech.frequency_hz * in_ports

        buffer_energy = self._scaled(_COEFFICIENTS["buffer_energy_pj_per_bit"]) * bits
        crossbar_energy = self._scaled(_COEFFICIENTS["crossbar_energy_pj_per_bit"]) * bits
        arbiter_energy = self._scaled(_COEFFICIENTS["arbiter_energy_pj_per_req"]) * (
            1.0 + 0.1 * (input_vcs / max(in_ports, 1))
        )
        energy_per_flit_pj = buffer_energy + crossbar_energy + arbiter_energy
        dynamic_mw = flits_per_second * energy_per_flit_pj * 1e-12 * 1e3
        dynamic_mw *= (self.tech.voltage / 1.1) ** 2
        dynamic_mw *= 1.0 + _COEFFICIENTS["clock_fraction"]
        return dynamic_mw

    def leakage_power_mw(self, in_ports: int, out_ports: int, input_vcs: int) -> float:
        """Leakage power in milliwatts (load independent)."""
        self._validate(in_ports, out_ports, input_vcs)
        bits = self.tech.flit_width_bits
        depth = self.tech.buffer_depth_flits
        buffer_bits = input_vcs * depth * bits
        buffer_leak = self._scaled(
            _COEFFICIENTS["buffer_leakage_mw_per_bit"], exponent=1.0
        ) * buffer_bits
        crossbar_leak = self._scaled(
            _COEFFICIENTS["crossbar_leakage_mw_per_crosspoint_bit"], exponent=1.0
        ) * in_ports * out_ports * bits
        arbiter_leak = self._scaled(
            _COEFFICIENTS["arbiter_leakage_mw_per_vc"], exponent=1.0
        ) * input_vcs * out_ports
        leakage = buffer_leak + crossbar_leak + arbiter_leak
        leakage *= self.tech.voltage / 1.1
        return leakage

    def total_power_mw(
        self, in_ports: int, out_ports: int, input_vcs: int, load: float
    ) -> float:
        """Dynamic + leakage power in milliwatts."""
        return self.dynamic_power_mw(in_ports, out_ports, input_vcs, load) + (
            self.leakage_power_mw(in_ports, out_ports, input_vcs)
        )

    # ------------------------------------------------------------------
    # area
    # ------------------------------------------------------------------
    def area_um2(self, in_ports: int, out_ports: int, input_vcs: int) -> float:
        """Router area in square micrometres."""
        self._validate(in_ports, out_ports, input_vcs)
        bits = self.tech.flit_width_bits
        depth = self.tech.buffer_depth_flits
        buffer_area = self._scaled(_COEFFICIENTS["buffer_area_um2_per_bit"]) * (
            input_vcs * depth * bits
        )
        crossbar_area = self._scaled(
            _COEFFICIENTS["crossbar_area_um2_per_crosspoint_bit"]
        ) * in_ports * out_ports * bits
        arbiter_area = self._scaled(_COEFFICIENTS["arbiter_area_um2_per_vc"]) * (
            input_vcs * out_ports
        )
        overhead = self._scaled(_COEFFICIENTS["router_overhead_area_um2"])
        return buffer_area + crossbar_area + arbiter_area + overhead

    def area_mm2(self, in_ports: int, out_ports: int, input_vcs: int) -> float:
        """Router area in square millimetres."""
        return self.area_um2(in_ports, out_ports, input_vcs) / 1e6
