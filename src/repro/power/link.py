"""Analytic link power and area model.

Links are modelled as repeated global wires: dynamic energy proportional to
switched capacitance (length x width x activity), leakage and repeater area
proportional to length x width.  Coefficients are 65 nm-calibrated like the
router model; only relative magnitudes matter for the paper's comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PowerModelError
from repro.power.orion import TechnologyParameters

#: Reference coefficients at 65 nm, 1.1 V.
_LINK_COEFFICIENTS = {
    "wire_energy_pj_per_bit_mm": 0.18,      # one bit toggling over 1 mm
    "wire_leakage_mw_per_bit_mm": 0.0006,   # repeater leakage
    "repeater_area_um2_per_bit_mm": 2.4,
}


@dataclass
class LinkPowerModel:
    """Power/area model of one physical inter-switch link."""

    tech: TechnologyParameters = TechnologyParameters()

    def dynamic_power_mw(self, length_mm: float, load: float) -> float:
        """Dynamic power of the link at average ``load`` (0..1)."""
        if length_mm <= 0:
            raise PowerModelError(f"link length must be positive, got {length_mm}")
        load = min(max(load, 0.0), 1.0)
        bits_per_second = load * self.tech.frequency_hz * self.tech.flit_width_bits
        energy_pj = _LINK_COEFFICIENTS["wire_energy_pj_per_bit_mm"] * length_mm
        energy_pj *= (self.tech.scale ** 2) * (self.tech.voltage / 1.1) ** 2
        return bits_per_second * energy_pj * 1e-12 * 1e3

    def leakage_power_mw(self, length_mm: float) -> float:
        """Leakage power of the link's repeaters."""
        if length_mm <= 0:
            raise PowerModelError(f"link length must be positive, got {length_mm}")
        leak = _LINK_COEFFICIENTS["wire_leakage_mw_per_bit_mm"]
        leak *= self.tech.flit_width_bits * length_mm * self.tech.scale
        leak *= self.tech.voltage / 1.1
        return leak

    def total_power_mw(self, length_mm: float, load: float) -> float:
        """Dynamic + leakage power of the link."""
        return self.dynamic_power_mw(length_mm, load) + self.leakage_power_mw(length_mm)

    def area_um2(self, length_mm: float) -> float:
        """Repeater/driver area of the link in square micrometres."""
        if length_mm <= 0:
            raise PowerModelError(f"link length must be positive, got {length_mm}")
        area = _LINK_COEFFICIENTS["repeater_area_um2_per_bit_mm"]
        return area * self.tech.flit_width_bits * length_mm * (self.tech.scale ** 2)

    def area_mm2(self, length_mm: float) -> float:
        """Repeater/driver area of the link in square millimetres."""
        return self.area_um2(length_mm) / 1e6
