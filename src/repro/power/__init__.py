"""ORION-style power and area models.

The paper estimates switch power and area with ORION 2.0 [20] at 65 nm.
ORION itself is not available offline, so this package implements an
analytic router/link model with the same structure (buffers, crossbar,
allocators, clock; dynamic + leakage) whose components scale the same way
with port count, virtual-channel count, buffer depth and flit width — which
is all the paper's comparisons rely on (see DESIGN.md, substitution 3).
"""

from repro.power.estimator import (
    NocAreaReport,
    NocPowerReport,
    estimate_area,
    estimate_power,
    estimate_power_and_area,
)
from repro.power.link import LinkPowerModel
from repro.power.orion import RouterPowerModel, TechnologyParameters

__all__ = [
    "TechnologyParameters",
    "RouterPowerModel",
    "LinkPowerModel",
    "estimate_power",
    "estimate_area",
    "estimate_power_and_area",
    "NocPowerReport",
    "NocAreaReport",
]
