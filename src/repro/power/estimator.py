"""NoC-level power and area estimation.

Aggregates the router and link models over a full
:class:`~repro.model.design.NocDesign`.  Per-router load is derived from the
bandwidth the routed flows actually push through each switch, relative to
the channel capacity of the technology operating point, so adding virtual
channels changes leakage/area directly and dynamic power only through the
(small) allocator term — the same behaviour ORION exhibits and the reason
the paper's VC savings translate into power savings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.model.channels import Link
from repro.model.design import NocDesign
from repro.power.link import LinkPowerModel
from repro.power.orion import RouterPowerModel, TechnologyParameters


@dataclass
class NocPowerReport:
    """Per-component and total power of a design, in milliwatts."""

    design_name: str
    router_power_mw: Dict[str, float] = field(default_factory=dict)
    link_power_mw: Dict[Link, float] = field(default_factory=dict)

    @property
    def total_router_power_mw(self) -> float:
        """Total power of all routers."""
        return sum(self.router_power_mw.values())

    @property
    def total_link_power_mw(self) -> float:
        """Total power of all links."""
        return sum(self.link_power_mw.values())

    @property
    def total_power_mw(self) -> float:
        """Total NoC power (routers + links)."""
        return self.total_router_power_mw + self.total_link_power_mw

    def summary(self) -> str:
        """Short human-readable report."""
        return (
            f"Power of {self.design_name!r}: {self.total_power_mw:.2f} mW "
            f"(routers {self.total_router_power_mw:.2f} mW, "
            f"links {self.total_link_power_mw:.2f} mW)"
        )


@dataclass
class NocAreaReport:
    """Per-component and total area of a design, in square millimetres."""

    design_name: str
    router_area_mm2: Dict[str, float] = field(default_factory=dict)
    link_area_mm2: Dict[Link, float] = field(default_factory=dict)

    @property
    def total_router_area_mm2(self) -> float:
        """Total area of all routers."""
        return sum(self.router_area_mm2.values())

    @property
    def total_link_area_mm2(self) -> float:
        """Total repeater area of all links."""
        return sum(self.link_area_mm2.values())

    @property
    def total_area_mm2(self) -> float:
        """Total NoC area (routers + link repeaters)."""
        return self.total_router_area_mm2 + self.total_link_area_mm2

    def summary(self) -> str:
        """Short human-readable report."""
        return (
            f"Area of {self.design_name!r}: {self.total_area_mm2:.3f} mm² "
            f"(routers {self.total_router_area_mm2:.3f} mm², "
            f"links {self.total_link_area_mm2:.3f} mm²)"
        )


def _router_loads(design: NocDesign, tech: TechnologyParameters) -> Dict[str, float]:
    """Average per-router load (0..1) derived from the routed bandwidth."""
    capacity = tech.link_capacity_mbps
    loads: Dict[str, float] = {switch: 0.0 for switch in design.topology.switches}
    port_counts = design.switch_port_counts()
    link_load = design.link_load()
    incoming_bw: Dict[str, float] = {switch: 0.0 for switch in design.topology.switches}
    for link, bandwidth in link_load.items():
        incoming_bw[link.dst] += bandwidth
    # Traffic injected locally also crosses the router once.
    for flow in design.traffic.flows:
        if design.routes.has_route(flow.name):
            incoming_bw[design.switch_of(flow.src)] += flow.bandwidth
    for switch, bandwidth in incoming_bw.items():
        ports = max(port_counts[switch]["in_ports"], 1)
        loads[switch] = min(bandwidth / (capacity * ports), 1.0)
    return loads


def estimate_power(
    design: NocDesign,
    *,
    tech: Optional[TechnologyParameters] = None,
    router_model: Optional[RouterPowerModel] = None,
    link_model: Optional[LinkPowerModel] = None,
) -> NocPowerReport:
    """Estimate the power of every router and link of a design."""
    tech = tech or TechnologyParameters()
    router_model = router_model or RouterPowerModel(tech)
    link_model = link_model or LinkPowerModel(tech)

    report = NocPowerReport(design_name=design.name)
    loads = _router_loads(design, tech)
    port_counts = design.switch_port_counts()
    for switch in design.topology.switches:
        counts = port_counts[switch]
        report.router_power_mw[switch] = router_model.total_power_mw(
            counts["in_ports"], counts["out_ports"], counts["vcs"], loads[switch]
        )
    capacity = tech.link_capacity_mbps
    for link, bandwidth in design.link_load().items():
        length = design.topology.link_length(link)
        load = min(bandwidth / capacity, 1.0)
        report.link_power_mw[link] = link_model.total_power_mw(length, load)
    return report


def estimate_area(
    design: NocDesign,
    *,
    tech: Optional[TechnologyParameters] = None,
    router_model: Optional[RouterPowerModel] = None,
    link_model: Optional[LinkPowerModel] = None,
) -> NocAreaReport:
    """Estimate the silicon area of every router and link of a design."""
    tech = tech or TechnologyParameters()
    router_model = router_model or RouterPowerModel(tech)
    link_model = link_model or LinkPowerModel(tech)

    report = NocAreaReport(design_name=design.name)
    port_counts = design.switch_port_counts()
    for switch in design.topology.switches:
        counts = port_counts[switch]
        report.router_area_mm2[switch] = router_model.area_mm2(
            counts["in_ports"], counts["out_ports"], counts["vcs"]
        )
    for link in design.topology.links:
        length = design.topology.link_length(link)
        report.link_area_mm2[link] = link_model.area_mm2(length)
    return report


def power_overhead(reference: NocPowerReport, candidate: NocPowerReport) -> float:
    """Relative power overhead of ``candidate`` with respect to ``reference``.

    Positive values mean the candidate consumes more power; this is the
    quantity behind Figure 10 (resource ordering vs. deadlock removal) and
    the <5% overhead claim (deadlock removal vs. unprotected design).
    """
    if reference.total_power_mw == 0:
        return 0.0
    return candidate.total_power_mw / reference.total_power_mw - 1.0


def area_overhead(reference: NocAreaReport, candidate: NocAreaReport) -> float:
    """Relative area overhead of ``candidate`` with respect to ``reference``."""
    if reference.total_area_mm2 == 0:
        return 0.0
    return candidate.total_area_mm2 / reference.total_area_mm2 - 1.0
