"""NoC-level power and area estimation.

Aggregates the router and link models over a full
:class:`~repro.model.design.NocDesign`.  Per-router load is derived from the
bandwidth the routed flows actually push through each switch, relative to
the channel capacity of the technology operating point, so adding virtual
channels changes leakage/area directly and dynamic power only through the
(small) allocator term — the same behaviour ORION exhibits and the reason
the paper's VC savings translate into power savings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.model.channels import Link
from repro.model.design import NocDesign
from repro.power.link import LinkPowerModel
from repro.power.orion import RouterPowerModel, TechnologyParameters


@dataclass
class NocPowerReport:
    """Per-component and total power of a design, in milliwatts."""

    design_name: str
    router_power_mw: Dict[str, float] = field(default_factory=dict)
    link_power_mw: Dict[Link, float] = field(default_factory=dict)

    @property
    def total_router_power_mw(self) -> float:
        """Total power of all routers."""
        return sum(self.router_power_mw.values())

    @property
    def total_link_power_mw(self) -> float:
        """Total power of all links."""
        return sum(self.link_power_mw.values())

    @property
    def total_power_mw(self) -> float:
        """Total NoC power (routers + links)."""
        return self.total_router_power_mw + self.total_link_power_mw

    def summary(self) -> str:
        """Short human-readable report."""
        return (
            f"Power of {self.design_name!r}: {self.total_power_mw:.2f} mW "
            f"(routers {self.total_router_power_mw:.2f} mW, "
            f"links {self.total_link_power_mw:.2f} mW)"
        )


@dataclass
class NocAreaReport:
    """Per-component and total area of a design, in square millimetres."""

    design_name: str
    router_area_mm2: Dict[str, float] = field(default_factory=dict)
    link_area_mm2: Dict[Link, float] = field(default_factory=dict)

    @property
    def total_router_area_mm2(self) -> float:
        """Total area of all routers."""
        return sum(self.router_area_mm2.values())

    @property
    def total_link_area_mm2(self) -> float:
        """Total repeater area of all links."""
        return sum(self.link_area_mm2.values())

    @property
    def total_area_mm2(self) -> float:
        """Total NoC area (routers + link repeaters)."""
        return self.total_router_area_mm2 + self.total_link_area_mm2

    def summary(self) -> str:
        """Short human-readable report."""
        return (
            f"Area of {self.design_name!r}: {self.total_area_mm2:.3f} mm² "
            f"(routers {self.total_router_area_mm2:.3f} mm², "
            f"links {self.total_link_area_mm2:.3f} mm²)"
        )


def _router_loads(
    design: NocDesign,
    tech: TechnologyParameters,
    port_counts: Optional[Dict[str, Dict[str, int]]] = None,
    link_load: Optional[Dict[Link, float]] = None,
) -> Dict[str, float]:
    """Average per-router load (0..1) derived from the routed bandwidth.

    ``port_counts`` and ``link_load`` let the fused estimation path share
    the design-level derivations it already computed.
    """
    capacity = tech.link_capacity_mbps
    loads: Dict[str, float] = {switch: 0.0 for switch in design.topology.switches}
    if port_counts is None:
        port_counts = design.switch_port_counts()
    if link_load is None:
        link_load = design.link_load()
    incoming_bw: Dict[str, float] = {switch: 0.0 for switch in design.topology.switches}
    for link, bandwidth in link_load.items():
        incoming_bw[link.dst] += bandwidth
    # Traffic injected locally also crosses the router once.
    for flow in design.traffic.flows:
        if design.routes.has_route(flow.name):
            incoming_bw[design.switch_of(flow.src)] += flow.bandwidth
    for switch, bandwidth in incoming_bw.items():
        ports = max(port_counts[switch]["in_ports"], 1)
        loads[switch] = min(bandwidth / (capacity * ports), 1.0)
    return loads


def _estimate(
    design: NocDesign,
    tech: Optional[TechnologyParameters],
    router_model: Optional[RouterPowerModel],
    link_model: Optional[LinkPowerModel],
    *,
    want_power: bool,
    want_area: bool,
) -> Tuple[Optional[NocPowerReport], Optional[NocAreaReport]]:
    """Shared estimation core: derive each design-level input exactly once.

    Power and area both walk the same port counts, and power additionally
    needs the router loads and link loads; fusing the two report builds
    means one ``switch_port_counts``/``link_load``/``_router_loads`` pass
    serves both, instead of each public entry point re-deriving them.  The
    per-component float expressions are unchanged, so fused and standalone
    reports are identical.
    """
    tech = tech or TechnologyParameters()
    router_model = router_model or RouterPowerModel(tech)
    link_model = link_model or LinkPowerModel(tech)

    port_counts = design.switch_port_counts()
    topology = design.topology
    power_report: Optional[NocPowerReport] = None
    area_report: Optional[NocAreaReport] = None

    if want_power:
        power_report = NocPowerReport(design_name=design.name)
        link_load = design.link_load()
        loads = _router_loads(design, tech, port_counts, link_load)
        for switch in topology.switches:
            counts = port_counts[switch]
            power_report.router_power_mw[switch] = router_model.total_power_mw(
                counts["in_ports"], counts["out_ports"], counts["vcs"], loads[switch]
            )
        capacity = tech.link_capacity_mbps
        for link, bandwidth in link_load.items():
            length = topology.link_length(link)
            load = min(bandwidth / capacity, 1.0)
            power_report.link_power_mw[link] = link_model.total_power_mw(length, load)

    if want_area:
        area_report = NocAreaReport(design_name=design.name)
        for switch in topology.switches:
            counts = port_counts[switch]
            area_report.router_area_mm2[switch] = router_model.area_mm2(
                counts["in_ports"], counts["out_ports"], counts["vcs"]
            )
        for link in topology.links:
            length = topology.link_length(link)
            area_report.link_area_mm2[link] = link_model.area_mm2(length)

    return power_report, area_report


def estimate_power(
    design: NocDesign,
    *,
    tech: Optional[TechnologyParameters] = None,
    router_model: Optional[RouterPowerModel] = None,
    link_model: Optional[LinkPowerModel] = None,
) -> NocPowerReport:
    """Estimate the power of every router and link of a design."""
    power, _ = _estimate(
        design, tech, router_model, link_model, want_power=True, want_area=False
    )
    return power


def estimate_area(
    design: NocDesign,
    *,
    tech: Optional[TechnologyParameters] = None,
    router_model: Optional[RouterPowerModel] = None,
    link_model: Optional[LinkPowerModel] = None,
) -> NocAreaReport:
    """Estimate the silicon area of every router and link of a design."""
    _, area = _estimate(
        design, tech, router_model, link_model, want_power=False, want_area=True
    )
    return area


def estimate_power_and_area(
    design: NocDesign,
    *,
    tech: Optional[TechnologyParameters] = None,
    router_model: Optional[RouterPowerModel] = None,
    link_model: Optional[LinkPowerModel] = None,
) -> Tuple[NocPowerReport, NocAreaReport]:
    """Both reports of a design from one pass over the derived inputs.

    Identical to calling :func:`estimate_power` and :func:`estimate_area`
    separately, but the router loads, port counts and link loads — the
    expensive design-level derivations — are computed once and shared.
    The evaluation pipeline reports both quantities for every design it
    touches, which previously doubled that work per sweep point.
    """
    power, area = _estimate(
        design, tech, router_model, link_model, want_power=True, want_area=True
    )
    return power, area


def power_overhead(reference: NocPowerReport, candidate: NocPowerReport) -> float:
    """Relative power overhead of ``candidate`` with respect to ``reference``.

    Positive values mean the candidate consumes more power; this is the
    quantity behind Figure 10 (resource ordering vs. deadlock removal) and
    the <5% overhead claim (deadlock removal vs. unprotected design).

    Raises :class:`ValueError` when the reference consumes no power at all
    — the ratio is undefined there, and silently reporting "no overhead"
    hid mis-wired comparisons (e.g. an empty reference design).
    """
    if reference.total_power_mw == 0:
        raise ValueError(
            f"reference power report {reference.design_name!r} totals 0 mW; "
            "the relative overhead is undefined for a powerless reference"
        )
    return candidate.total_power_mw / reference.total_power_mw - 1.0


def area_overhead(reference: NocAreaReport, candidate: NocAreaReport) -> float:
    """Relative area overhead of ``candidate`` with respect to ``reference``.

    Raises :class:`ValueError` when the reference occupies no area (the
    ratio is undefined), mirroring :func:`power_overhead`.
    """
    if reference.total_area_mm2 == 0:
        raise ValueError(
            f"reference area report {reference.design_name!r} totals 0 mm²; "
            "the relative overhead is undefined for a zero-area reference"
        )
    return candidate.total_area_mm2 / reference.total_area_mm2 - 1.0
