"""Traffic generation: turning flow bandwidths into injected packets.

Every flow injects packets with a Bernoulli process whose rate is derived
from the flow's bandwidth relative to the channel capacity of the
technology operating point, multiplied by a global ``injection_scale`` the
experiments use to push a design towards or beyond saturation (deadlocks in
cyclic designs only manifest under enough pressure).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.model.design import NocDesign
from repro.power.orion import TechnologyParameters
from repro.simulation.flit import Packet


class FlowTrafficGenerator:
    """Generates packets for every routed flow of a design.

    Parameters
    ----------
    design:
        The design being simulated (provides flows and routes).
    injection_scale:
        Multiplier on every flow's nominal rate.  1.0 injects at the
        bandwidths the traffic specification asks for; experiments that want
        to provoke deadlocks use values well above 1.
    tech:
        Technology parameters (channel capacity).
    seed:
        Seed of the Bernoulli draws — simulations are reproducible.
    """

    def __init__(
        self,
        design: NocDesign,
        *,
        injection_scale: float = 1.0,
        tech: Optional[TechnologyParameters] = None,
        seed: int = 0,
    ):
        self.design = design
        self.tech = tech or TechnologyParameters()
        self.injection_scale = injection_scale
        self._rng = random.Random(seed)
        self._next_packet_id = 0
        self._rates: Dict[str, float] = {}
        capacity = self.tech.link_capacity_mbps
        for flow in design.traffic.flows:
            if not design.routes.has_route(flow.name):
                # Flows between cores on the same switch never enter the
                # network but still inject traffic through the local NI.
                if design.switch_of(flow.src) != design.switch_of(flow.dst):
                    continue
            packets_per_cycle = (
                flow.bandwidth * injection_scale / (capacity * flow.packet_size_flits)
            )
            self._rates[flow.name] = min(packets_per_cycle, 1.0)

    @property
    def flow_rates(self) -> Dict[str, float]:
        """Per-flow packet injection probabilities per cycle (copy)."""
        return dict(self._rates)

    def generate(self, cycle: int) -> List[Packet]:
        """Packets created at ``cycle`` (possibly empty), in flow-name order."""
        packets: List[Packet] = []
        for flow_name in sorted(self._rates):
            if self._rng.random() >= self._rates[flow_name]:
                continue
            flow = self.design.traffic.flow(flow_name)
            if self.design.routes.has_route(flow_name):
                route_channels = self.design.routes.route(flow_name).channels
            else:
                route_channels = ()
            packet = Packet(
                packet_id=self._next_packet_id,
                flow_name=flow_name,
                route=route_channels,
                size_flits=flow.packet_size_flits,
                created_cycle=cycle,
            )
            self._next_packet_id += 1
            packets.append(packet)
        return packets
