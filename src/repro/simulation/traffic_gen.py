"""Traffic generation: turning flow bandwidths into injected packets.

Every flow injects packets with a Bernoulli process whose rate is derived
from the flow's bandwidth relative to the channel capacity of the
technology operating point, multiplied by a global ``injection_scale`` the
experiments use to push a design towards or beyond saturation (deadlocks in
cyclic designs only manifest under enough pressure).

:class:`FlowTrafficGenerator` is the paper's traffic (the ``"flows"``
scenario); :mod:`repro.simulation.scenarios` subclasses it with alternative
spatial and temporal injection patterns (uniform, hotspot, transpose,
bursty), all registered in the pluggable
:data:`repro.api.registry.traffic_scenarios` registry.  All generators draw
exclusively from one :class:`random.Random` seeded with an explicit
``seed`` (threaded from :attr:`repro.api.spec.RunSpec.seed` by the
experiment API), so repeated simulations of the same spec are reproducible.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.model.design import NocDesign
from repro.power.orion import TechnologyParameters
from repro.simulation.flit import Packet


class FlowTrafficGenerator:
    """Generates packets for every routed flow of a design.

    Parameters
    ----------
    design:
        The design being simulated (provides flows and routes).
    injection_scale:
        Multiplier on every flow's nominal rate.  1.0 injects at the
        bandwidths the traffic specification asks for; experiments that want
        to provoke deadlocks use values well above 1.
    tech:
        Technology parameters (channel capacity).
    seed:
        Seed of the Bernoulli draws — simulations are reproducible.  Every
        random decision of a generator comes from the instance RNG this
        seeds (never module-level randomness), so two generators built with
        the same arguments emit identical packet sequences.
    """

    #: Scenario name this generator is registered under.
    scenario = "flows"

    def __init__(
        self,
        design: NocDesign,
        *,
        injection_scale: float = 1.0,
        tech: Optional[TechnologyParameters] = None,
        seed: int = 0,
    ):
        self.design = design
        self.tech = tech or TechnologyParameters()
        self.injection_scale = injection_scale
        self.seed = seed
        self._rng = random.Random(seed)
        self._next_packet_id = 0
        self._rates: Dict[str, float] = self._compute_rates()
        self._flow_order: List[str] = sorted(self._rates)

    # ------------------------------------------------------------------
    def _eligible_flows(self) -> List[str]:
        """Flows that inject traffic: routed ones plus same-switch locals."""
        design = self.design
        names: List[str] = []
        for flow in design.traffic.flows:
            if not design.routes.has_route(flow.name):
                # Flows between cores on the same switch never enter the
                # network but still inject traffic through the local NI.
                if design.switch_of(flow.src) != design.switch_of(flow.dst):
                    continue
            names.append(flow.name)
        return names

    def _compute_rates(self) -> Dict[str, float]:
        """Per-flow packet injection probabilities (the scenario hook).

        The base implementation is the paper's traffic: every flow's rate is
        proportional to its nominal bandwidth.  Scenario subclasses override
        this to redistribute the offered load spatially; the Bernoulli
        sampling in :meth:`generate` is shared.
        """
        capacity = self.tech.link_capacity_mbps
        rates: Dict[str, float] = {}
        for name in self._eligible_flows():
            flow = self.design.traffic.flow(name)
            packets_per_cycle = (
                flow.bandwidth * self.injection_scale
                / (capacity * flow.packet_size_flits)
            )
            rates[name] = min(packets_per_cycle, 1.0)
        return rates

    # ------------------------------------------------------------------
    @property
    def flow_rates(self) -> Dict[str, float]:
        """Per-flow packet injection probabilities per cycle (copy)."""
        return dict(self._rates)

    @property
    def offered_flits_per_cycle(self) -> float:
        """Aggregate offered load: expected injected flits per cycle."""
        traffic = self.design.traffic
        return sum(
            rate * traffic.flow(name).packet_size_flits
            for name, rate in self._rates.items()
        )

    def _injects(self, flow_name: str) -> bool:
        """One Bernoulli draw: does ``flow_name`` inject a packet this cycle?

        Temporal scenarios (e.g. bursty on/off modulation) override this;
        the draw order over flows is fixed by :meth:`generate`, so every
        override stays seed-deterministic.
        """
        return self._rng.random() < self._rates[flow_name]

    def generate(self, cycle: int) -> List[Packet]:
        """Packets created at ``cycle`` (possibly empty), in flow-name order."""
        packets: List[Packet] = []
        for flow_name in self._flow_order:
            if not self._injects(flow_name):
                continue
            flow = self.design.traffic.flow(flow_name)
            if self.design.routes.has_route(flow_name):
                route_channels = self.design.routes.route(flow_name).channels
            else:
                route_channels = ()
            packet = Packet(
                packet_id=self._next_packet_id,
                flow_name=flow_name,
                route=route_channels,
                size_flits=flow.packet_size_flits,
                created_cycle=cycle,
            )
            self._next_packet_id += 1
            packets.append(packet)
        return packets
