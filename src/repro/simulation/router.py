"""Per-switch router state.

A :class:`Router` owns the input buffers of its incoming channels, the
injection queues of the flows sourced at its switch and the wormhole
ownership state of its outgoing channels.  The cycle-by-cycle movement of
flits is coordinated by :class:`repro.simulation.network.WormholeNetwork`,
because a transfer needs both the upstream router (ownership, arbitration)
and the downstream router (buffer space).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple, Union

from repro.model.channels import Channel, Link
from repro.simulation.buffers import VirtualChannelBuffer
from repro.simulation.flit import Flit

#: A flit source inside a router: either the input buffer of an incoming
#: channel or the injection queue of a locally sourced flow.
SourceKey = Tuple[str, Union[Channel, str]]


def buffer_source(channel: Channel) -> SourceKey:
    """Source key for the input buffer of ``channel``."""
    return ("buffer", channel)


def injection_source(flow_name: str) -> SourceKey:
    """Source key for the injection queue of ``flow_name``."""
    return ("injection", flow_name)


class Router:
    """State of one switch of the simulated network."""

    def __init__(self, switch: str, buffer_depth: int):
        self.switch = switch
        self.buffer_depth = buffer_depth
        #: Input buffer per incoming channel.
        self.input_buffers: Dict[Channel, VirtualChannelBuffer] = {}
        #: Injection queue per locally sourced flow (flits in order).
        self.injection_queues: Dict[str, Deque[Flit]] = {}
        #: Which packet currently owns each outgoing channel (wormhole
        #: allocation from head to tail), and from which source its flits
        #: come.
        self.output_owner: Dict[Channel, Optional[int]] = {}
        self.output_source: Dict[Channel, Optional[SourceKey]] = {}
        #: Round-robin pointers: per outgoing link (VC arbitration) and per
        #: outgoing channel (input arbitration).
        self.link_pointer: Dict[Link, int] = {}
        self.alloc_pointer: Dict[Channel, int] = {}

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def add_input_channel(self, channel: Channel) -> None:
        """Register an incoming channel (creates its buffer)."""
        self.input_buffers[channel] = VirtualChannelBuffer(self.buffer_depth)

    def add_output_channel(self, channel: Channel) -> None:
        """Register an outgoing channel (creates its ownership slot)."""
        self.output_owner[channel] = None
        self.output_source[channel] = None
        self.link_pointer.setdefault(channel.link, 0)
        self.alloc_pointer[channel] = 0

    def add_injection_flow(self, flow_name: str) -> None:
        """Register a locally sourced flow (creates its injection queue)."""
        self.injection_queues[flow_name] = deque()

    # ------------------------------------------------------------------
    # queries used by the network scheduler
    # ------------------------------------------------------------------
    def source_head(self, source: SourceKey) -> Optional[Flit]:
        """Head-of-line flit of a source (None when the source is empty)."""
        kind, key = source
        if kind == "buffer":
            return self.input_buffers[key].peek()
        return self.injection_queues[key][0] if self.injection_queues[key] else None

    def pop_source(self, source: SourceKey) -> Flit:
        """Remove and return the head-of-line flit of a source."""
        kind, key = source
        if kind == "buffer":
            return self.input_buffers[key].pop()
        return self.injection_queues[key].popleft()

    def all_sources(self) -> List[SourceKey]:
        """Every flit source of this router, in deterministic order."""
        sources: List[SourceKey] = [buffer_source(c) for c in sorted(self.input_buffers)]
        sources.extend(injection_source(f) for f in sorted(self.injection_queues))
        return sources

    def occupied_buffers(self) -> List[Channel]:
        """Incoming channels whose buffer currently holds at least one flit."""
        return [c for c, buf in self.input_buffers.items() if not buf.is_empty]

    def pending_injection_flits(self) -> int:
        """Flits still waiting in this router's injection queues."""
        return sum(len(queue) for queue in self.injection_queues.values())

    def buffered_flits(self) -> int:
        """Flits currently stored in this router's input buffers."""
        return sum(buf.occupancy for buf in self.input_buffers.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Router({self.switch!r}, buffered={self.buffered_flits()}, "
            f"pending_injection={self.pending_injection_flits()})"
        )
