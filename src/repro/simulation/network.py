"""The wormhole network: flit movement across routers, cycle by cycle.

Scheduling model (one call to :meth:`WormholeNetwork.step` = one clock
cycle):

* every outgoing **physical link** moves at most one flit per cycle; its
  virtual channels are served round-robin;
* an outgoing **channel** (link + VC) is owned by at most one packet from
  the head flit until the tail flit has crossed it (wormhole allocation);
  free channels are granted round-robin among the requesting input buffers
  and injection queues of the upstream router;
* a flit advances only when the downstream input buffer of the channel has
  a free slot (credit-based flow control with zero credit latency); the
  final hop ejects directly into the destination network interface, which
  is never back-pressured;
* a flit moves at most one hop per cycle.

These rules are exactly the preconditions of the CDG-based deadlock
analysis: packets hold channels while waiting for the next channel of their
route, so a cyclic channel dependency can (and under pressure does) turn
into a cyclic wait.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import SimulationError
from repro.model.channels import Channel, Link
from repro.model.design import NocDesign
from repro.simulation.flit import Flit, Packet, make_flits
from repro.simulation.router import Router, SourceKey, buffer_source, injection_source
from repro.simulation.stats import SimulationStats


class WormholeNetwork:
    """All routers of a design plus the global flit-movement scheduler."""

    def __init__(self, design: NocDesign, *, buffer_depth: int = 4):
        self.design = design
        self.buffer_depth = buffer_depth
        self.routers: Dict[str, Router] = {}
        self._pending_arrivals: List[Tuple[Channel, Flit]] = []
        self._undelivered_flits = 0
        #: Packets injected but not yet fully delivered (or dropped), by id.
        #: Fault recovery uses this to watch in-flight packets drain.
        self._live_packets: Dict[int, Packet] = {}
        self._build()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        topology = self.design.topology
        for switch in topology.switches:
            self.routers[switch] = Router(switch, self.buffer_depth)
        for channel in topology.channels():
            self.routers[channel.dst].add_input_channel(channel)
            self.routers[channel.src].add_output_channel(channel)
        for flow in self.design.traffic.flows:
            if not self.design.routes.has_route(flow.name):
                continue
            source_switch = self.design.switch_of(flow.src)
            self.routers[source_switch].add_injection_flow(flow.name)

    # ------------------------------------------------------------------
    # injection
    # ------------------------------------------------------------------
    def inject(self, packet: Packet) -> None:
        """Queue all flits of ``packet`` at its source router."""
        source_switch = self.design.switch_of(
            self.design.traffic.flow(packet.flow_name).src
        )
        router = self.routers[source_switch]
        if packet.flow_name not in router.injection_queues:
            raise SimulationError(
                f"flow {packet.flow_name!r} has no injection queue at {source_switch!r}"
            )
        self._live_packets[packet.packet_id] = packet
        for flit in make_flits(packet):
            router.injection_queues[packet.flow_name].append(flit)
            self._undelivered_flits += 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def undelivered_flits(self) -> int:
        """Flits injected but not yet ejected at their destination.

        Maintained as an O(1) counter (incremented at injection,
        decremented at final-hop delivery), so the simulator's drain loop
        can test "everything in flight has been delivered" each cycle
        without walking every router's buffers and injection queues.
        Always equals ``flits_in_network() + flits_pending_injection()``.
        """
        return self._undelivered_flits

    def flits_in_network(self) -> int:
        """Flits stored in input buffers (excludes injection queues)."""
        return sum(router.buffered_flits() for router in self.routers.values())

    def flits_pending_injection(self) -> int:
        """Flits still waiting in injection queues."""
        return sum(router.pending_injection_flits() for router in self.routers.values())

    def buffer_of(self, channel: Channel):
        """The downstream input buffer of ``channel``."""
        return self.routers[channel.dst].input_buffers[channel]

    def wait_for_edges(self) -> List[Tuple[Channel, Channel]]:
        """Channel wait-for edges: occupied channel -> channel its head flit needs.

        Used by the deadlock detector: a cycle among *blocked* channels is a
        wormhole deadlock.
        """
        edges: List[Tuple[Channel, Channel]] = []
        for router in self.routers.values():
            for channel, buffer in router.input_buffers.items():
                head = buffer.peek()
                if head is None:
                    continue
                wanted = head.next_channel
                if wanted is not None:
                    edges.append((channel, wanted))
        return edges

    # ------------------------------------------------------------------
    # fault recovery support
    # ------------------------------------------------------------------
    def is_packet_live(self, packet_id: int) -> bool:
        """True while the packet has undelivered flits (and was not dropped)."""
        return packet_id in self._live_packets

    def live_packet_ids(self) -> Set[int]:
        """Ids of every packet currently in flight (copy)."""
        return set(self._live_packets)

    def drop_flows(self, flow_names: Iterable[str]) -> Tuple[int, int]:
        """Remove every in-flight packet of the named flows.

        Fault recovery calls this for flows whose route changed (or
        vanished): their flits were emitted against the old route and can
        no longer be forwarded consistently.  Clears the flows' injection
        queues, drains every input buffer occupied by a doomed packet and
        releases the output channels it owns.  Returns ``(packets, flits)``
        dropped, counting only undelivered flits.
        """
        names = set(flow_names)
        doomed = {
            pid
            for pid, packet in self._live_packets.items()
            if packet.flow_name in names
        }
        if not doomed:
            return (0, 0)
        dropped_flits = 0
        for router in self.routers.values():
            for name, queue in router.injection_queues.items():
                if name in names and queue:
                    dropped_flits += len(queue)
                    queue.clear()
            for buffer in router.input_buffers.values():
                if buffer.current_packet_id in doomed:
                    dropped_flits += buffer.drain()
            for channel, owner in router.output_owner.items():
                if owner in doomed:
                    router.output_owner[channel] = None
                    router.output_source[channel] = None
        self._undelivered_flits -= dropped_flits
        for pid in doomed:
            del self._live_packets[pid]
        return (len(doomed), dropped_flits)

    def sync_with_design(self) -> None:
        """Reconcile the router state with the design's current topology/routes.

        Fault recovery mutates the design in place (links removed/restored,
        flows re-routed, deadlock removal adding VCs); this brings the
        live network structures back in line:

        * input buffers / output slots of vanished channels are deleted
          (recovery drops the affected packets first, so they are empty)
          and slots for new channels are created;
        * a link whose last output channel vanished loses its round-robin
          pointer, so a later restore starts from VC 0 exactly like a
          freshly built network (and like the compiled engine);
        * each router's input-buffer dict is re-sorted so the wait-for-edge
          iteration order — which feeds the deadlock verdict — matches a
          freshly built network;
        * injection queues mirror the currently *routed* flows (an
          unrouted flow must not take part in arbitration).
        """
        topology = self.design.topology
        channel_set = set(topology.channels())
        for router in self.routers.values():
            for channel in list(router.input_buffers):
                if channel not in channel_set:
                    del router.input_buffers[channel]
            for channel in list(router.output_owner):
                if channel not in channel_set:
                    del router.output_owner[channel]
                    del router.output_source[channel]
                    del router.alloc_pointer[channel]
            live_links = {channel.link for channel in router.output_owner}
            for link in list(router.link_pointer):
                if link not in live_links:
                    del router.link_pointer[link]
        for channel in topology.channels():
            dst_router = self.routers[channel.dst]
            if channel not in dst_router.input_buffers:
                dst_router.add_input_channel(channel)
            src_router = self.routers[channel.src]
            if channel not in src_router.output_owner:
                src_router.add_output_channel(channel)
        for router in self.routers.values():
            router.input_buffers = dict(sorted(router.input_buffers.items()))
            for name in list(router.injection_queues):
                if not self.design.routes.has_route(name):
                    del router.injection_queues[name]
        for flow in self.design.traffic.flows:
            if not self.design.routes.has_route(flow.name):
                continue
            router = self.routers[self.design.switch_of(flow.src)]
            if flow.name not in router.injection_queues:
                router.add_injection_flow(flow.name)

    # ------------------------------------------------------------------
    # one simulation cycle
    # ------------------------------------------------------------------
    def step(self, cycle: int, stats: SimulationStats) -> int:
        """Advance the network by one cycle; returns the number of flit moves.

        The cycle is evaluated in two phases: every router decides and
        commits its transfers against the *start-of-cycle* buffer state (a
        flit sent this cycle is parked in ``_pending_arrivals``), and only
        after all routers have been served are the arrivals pushed into the
        downstream buffers.  Without this, a flit could traverse a buffer
        that another router already inspected this cycle, making the
        schedule depend on the processing order of the switches.
        """
        moved_flits: Set[int] = set()
        self._pending_arrivals: List[Tuple[Channel, Flit]] = []
        transfers = 0
        for switch in sorted(self.routers):
            transfers += self._step_router(self.routers[switch], cycle, stats, moved_flits)
        for channel, flit in self._pending_arrivals:
            self.buffer_of(channel).push(flit)
        self._pending_arrivals = []
        stats.flit_transfers += transfers
        return transfers

    # ------------------------------------------------------------------
    def _step_router(
        self,
        router: Router,
        cycle: int,
        stats: SimulationStats,
        moved_flits: Set[int],
    ) -> int:
        transfers = 0
        out_links = sorted({channel.link for channel in router.output_owner})
        for link in out_links:
            channels = sorted(
                (c for c in router.output_owner if c.link == link),
                key=lambda c: c.vc,
            )
            if not channels:
                continue
            start = router.link_pointer[link] % len(channels)
            ordered = channels[start:] + channels[:start]
            for channel in ordered:
                if self._try_transfer(router, channel, cycle, stats, moved_flits):
                    transfers += 1
                    # one flit per physical link per cycle; advance the VC
                    # round-robin pointer past the channel that was served
                    router.link_pointer[link] = (channels.index(channel) + 1) % len(channels)
                    break
        return transfers

    def _try_transfer(
        self,
        router: Router,
        channel: Channel,
        cycle: int,
        stats: SimulationStats,
        moved_flits: Set[int],
    ) -> bool:
        """Attempt to move one flit over ``channel``; returns True on success."""
        source = self._resolve_owner(router, channel)
        if source is None:
            return False
        flit = router.source_head(source)
        if flit is None:
            return False
        if id(flit) in moved_flits:
            return False
        if flit.next_channel != channel:
            return False
        if flit.packet.packet_id != router.output_owner[channel]:
            return False

        is_last_hop = flit.hops_done == len(flit.packet.route) - 1
        if not is_last_hop:
            downstream = self.buffer_of(channel)
            if not downstream.can_accept(flit):
                return False

        # Commit the transfer.
        router.pop_source(source)
        flit.hops_done += 1
        moved_flits.add(id(flit))
        stats.channel_busy_cycles[channel] = stats.channel_busy_cycles.get(channel, 0) + 1
        if flit.is_tail:
            router.output_owner[channel] = None
            router.output_source[channel] = None
        if is_last_hop:
            stats.flits_delivered += 1
            self._undelivered_flits -= 1
            if flit.is_tail:
                flit.packet.delivered_cycle = cycle
                stats.packets_delivered += 1
                stats.latencies.append(flit.packet.latency)
                self._live_packets.pop(flit.packet.packet_id, None)
        else:
            self._pending_arrivals.append((channel, flit))
        return True

    def _resolve_owner(self, router: Router, channel: Channel) -> Optional[SourceKey]:
        """Current source feeding ``channel``, allocating it when it is free."""
        if router.output_owner[channel] is not None:
            return router.output_source[channel]

        # Switch/VC allocation: find a source whose head flit is a head flit
        # requesting this channel, round-robin over the router's sources.
        sources = router.all_sources()
        if not sources:
            return None
        start = router.alloc_pointer[channel] % len(sources)
        ordered = sources[start:] + sources[:start]
        for offset, source in enumerate(ordered):
            head = router.source_head(source)
            if head is None or not head.is_head:
                continue
            if head.next_channel != channel:
                continue
            router.output_owner[channel] = head.packet.packet_id
            router.output_source[channel] = source
            router.alloc_pointer[channel] = (start + offset + 1) % len(sources)
            return source
        return None
