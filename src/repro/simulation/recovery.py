"""Online recovery from link/router failures during a simulation run.

The :class:`RecoveryController` owns the fault axis of a run: it consumes
one :class:`~repro.simulation.events.EventSchedule`, applies each due
batch of events to the *running* design at the start of its cycle, and
hands the damage to a pluggable :class:`RecoveryPolicy` before the
network takes another step:

1. the failed links leave the topology (recording their VC count and
   physical length so a later restore can resurrect them faithfully);
2. every route crossing a failed link is dropped, and the configured
   policy repairs the route set — see below;
3. packets in flight on any flow whose route changed are dropped (their
   wormhole path no longer exists) and the network re-synchronises its
   channel state with the degraded design.

Policies live in the :data:`repro.api.registry.recovery_policies`
registry and :attr:`repro.simulation.simulator.SimulationConfig
.fault_recovery` names one:

``removal`` (default)
    Re-route every severed flow through the design context's router
    (:meth:`~repro.perf.design_context.DesignContext.router`) with the
    same congestion-aware ordering the synthesis pipeline uses, then
    re-run deadlock removal through the dirty-region ``"context"``
    engine, so the post-fault route set is again provably deadlock-free.
``reroute``
    The same re-routing pass without the removal re-run — leaves the
    degraded CDG as the re-router made it (used by the resilience
    test-suite to provoke genuine post-fault deadlocks).
``idle``
    No re-routing at all: severed flows are quiesced — their routes are
    parked and their traffic is lost at injection — until every link of
    the parked route is back, at which point the original route is
    reinstated verbatim.  The route set only ever shrinks back towards
    the pre-fault one, so a deadlock-removed design stays deadlock-free
    through any fail/restore sequence.
``protection``
    Protection switching: before the run starts the policy provisions a
    backup route per flow (link-disjoint from the primary where the
    topology allows) and re-runs deadlock removal on primaries and
    backups *together*, so every mixture of the two is a subset of one
    acyclic CDG.  At failure the backup is swapped in as-is; no mid-run
    routing or removal ever happens.  Switching is non-revertive — a
    flow stays on its backup when the primary's links return.

Determinism: the controller works on the simulator's private design copy,
draws no randomness of its own, and touches the network only between
cycles — so compiled and legacy engines replaying the same schedule stay
field-identical, which ``cross_check=True`` enforces for every policy.

The per-batch *recovery latency* is the number of cycles until every
packet that was in flight when the batch hit has left the network (by
delivery — the dropped ones are gone immediately); ``-1`` marks a batch
whose survivors never drained before the run ended.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.api.registry import recovery_policies
from repro.core.cdg import build_cdg
from repro.core.cycles import count_cycles
from repro.core.removal import remove_deadlocks
from repro.errors import RouteError, SimulationError
from repro.model.channels import Channel, Link
from repro.model.design import NocDesign
from repro.model.routes import Route, RouteSet
from repro.perf.design_context import DesignContext
from repro.simulation.events import EventSchedule

#: Names of the two PR 6 policies, kept as importable constants.
MODE_REMOVAL = "removal"
MODE_REROUTE = "reroute"


class RecoveryPolicy:
    """How the route set is repaired after a batch of fault events.

    A policy is registered by name in
    :data:`repro.api.registry.recovery_policies` and instantiated once
    per :class:`RecoveryController` (i.e. once per simulation run), so it
    may keep per-run state such as parked routes or provisioned backups.
    """

    #: Re-run deadlock removal after a repair that changed any route.
    runs_removal = False

    def __init__(self, controller: "RecoveryController"):
        self.controller = controller

    def prepare(self, design: NocDesign) -> NocDesign:
        """Pre-run hook; the returned design is the one the run uses.

        Called once, before the network is built.  The default returns
        the design unchanged; ``protection`` returns a re-provisioned
        design with backup resources baked in.
        """
        return design

    def repair(
        self,
        context: DesignContext,
        *,
        removed: List[Link],
        restored: List[Link],
        severed: List[str],
        old_routes: Dict[str, Route],
    ) -> None:
        """Repair ``controller.design.routes`` after a fault batch.

        Runs after the ``severed`` flows' routes (which crossed a link in
        ``removed``) were dropped; ``old_routes`` snapshots every route
        as it was when the batch hit and ``restored`` lists the links the
        same batch brought back.
        """
        raise NotImplementedError


@recovery_policies.register(MODE_REMOVAL)
class RemovalPolicy(RecoveryPolicy):
    """PR 6 default: congestion-aware re-routing + deadlock re-removal."""

    runs_removal = True

    def repair(self, context, *, removed, restored, severed, old_routes):
        self.controller.reroute_unrouted(context)


@recovery_policies.register(MODE_REROUTE)
class ReroutePolicy(RecoveryPolicy):
    """Re-routing only; the degraded CDG keeps whatever cycles it grew."""

    def repair(self, context, *, removed, restored, severed, old_routes):
        self.controller.reroute_unrouted(context)


@recovery_policies.register("idle")
class IdlePolicy(RecoveryPolicy):
    """Quiesce severed flows until their links restore; never re-route.

    A severed flow's route is parked verbatim; while parked the flow is
    unrouted, so its packets are lost at injection (the quiescing).  On
    every batch that restores links, any parked route whose links are all
    back is reinstated unchanged.  Because the live route set is always a
    subset of the pre-fault one, the CDG only ever loses edges relative
    to the (deadlock-removed) original.
    """

    def __init__(self, controller):
        super().__init__(controller)
        self._parked: Dict[str, Route] = {}

    def repair(self, context, *, removed, restored, severed, old_routes):
        for name in severed:
            self._parked[name] = old_routes[name]
        if not restored:
            return
        design = self.controller.design
        topology = design.topology
        for name in sorted(self._parked):
            route = self._parked[name]
            if all(topology.has_link(link) for link in route.links):
                design.routes.set_route(name, route)
                del self._parked[name]


#: Suffix of the pseudo-flows carrying backup routes through the
#: protection policy's joint deadlock-removal run.
BACKUP_SUFFIX = "__backup"


def _disjoint_path(
    topology, source: str, destination: str, avoid: Set[Link]
) -> Optional[Tuple[Link, ...]]:
    """Deterministic BFS shortest link path avoiding the ``avoid`` set.

    Ties break on sorted link order (lowest parallel index first), so the
    backup route is a pure function of the topology and the primary.
    """
    best: Dict[Tuple[str, str], Link] = {}
    for link in topology.links:  # sorted: lowest index wins per (src, dst)
        if link in avoid:
            continue
        best.setdefault((link.src, link.dst), link)
    adjacency: Dict[str, List[Tuple[str, Link]]] = {}
    for (src, dst), link in sorted(best.items()):
        adjacency.setdefault(src, []).append((dst, link))
    parents: Dict[str, Optional[Tuple[str, Link]]] = {source: None}
    frontier = [source]
    while frontier and destination not in parents:
        next_frontier: List[str] = []
        for switch in frontier:
            for neighbor, link in adjacency.get(switch, ()):
                if neighbor not in parents:
                    parents[neighbor] = (switch, link)
                    next_frontier.append(neighbor)
        frontier = next_frontier
    if destination not in parents:
        return None
    path: List[Link] = []
    node = destination
    while parents[node] is not None:
        switch, link = parents[node]
        path.append(link)
        node = switch
    return tuple(reversed(path))


@recovery_policies.register("protection")
class ProtectionPolicy(RecoveryPolicy):
    """Protection switching with pre-provisioned, jointly removed backups.

    :meth:`prepare` computes one backup route per flow — the shortest
    path avoiding every link of the primary, falling back to no backup
    when the topology has no disjoint path — then re-runs deadlock
    removal on a combined design carrying the primaries plus the backups
    as equal-bandwidth pseudo-flows.  Removal may re-home either onto
    fresh virtual channels; since the combined CDG ends up acyclic, every
    runtime mixture of primaries and swapped-in backups (a subset of the
    combined route set) is acyclic too.  The run then starts from the
    ported design: combined topology (with the provisioned VCs), original
    traffic, post-removal primary routes.

    At failure each severed flow switches to its first pre-provisioned
    candidate whose links all survive (primary first, then backup); a
    flow with no surviving candidate is quiesced like under ``idle``.
    Switching is non-revertive, but a quiesced flow re-enters on the
    first restore batch that revives one of its candidates.
    """

    def __init__(self, controller):
        super().__init__(controller)
        self._candidates: Dict[str, Tuple[Route, ...]] = {}

    def prepare(self, design: NocDesign) -> NocDesign:
        combined = design.copy()
        backup_names: Dict[str, str] = {}
        flows = sorted(design.traffic.flows, key=lambda f: (-f.bandwidth, f.name))
        for flow in flows:
            if not design.routes.has_route(flow.name):
                continue
            primary = design.routes.route(flow.name)
            if not primary.channels:
                continue  # intra-switch flow; nothing to protect
            backup_name = flow.name + BACKUP_SUFFIX
            if design.traffic.has_flow(backup_name):
                raise SimulationError(
                    f"flow name {backup_name!r} collides with the protection "
                    f"policy's backup namespace ({BACKUP_SUFFIX!r} suffix)"
                )
            path = _disjoint_path(
                design.topology,
                design.switch_of(flow.src),
                design.switch_of(flow.dst),
                set(primary.links),
            )
            if path is None:
                continue  # no disjoint path: the flow runs unprotected
            combined.traffic.add_flow(
                backup_name,
                flow.src,
                flow.dst,
                bandwidth=flow.bandwidth,
                packet_size_flits=flow.packet_size_flits,
            )
            combined.routes.set_route(
                backup_name, Route([Channel(link, 0) for link in path])
            )
            backup_names[flow.name] = backup_name
        if backup_names:
            remove_deadlocks(
                combined,
                in_place=True,
                engine="context",
                validate=False,
                count_initial_cycles=False,
            )
        ported_routes: Dict[str, Route] = {}
        for name in design.routes.flow_names:
            primary = combined.routes.route(name)
            ported_routes[name] = primary
            candidates = [primary]
            if name in backup_names:
                candidates.append(combined.routes.route(backup_names[name]))
            self._candidates[name] = tuple(candidates)
        return NocDesign(
            name=design.name,
            topology=combined.topology,
            traffic=design.traffic,
            core_map=dict(design.core_map),
            routes=RouteSet(ported_routes),
        )

    def repair(self, context, *, removed, restored, severed, old_routes):
        design = self.controller.design
        topology = design.topology
        routes = design.routes
        for name in sorted(self._candidates):
            if routes.has_route(name):
                continue
            for candidate in self._candidates[name]:
                if all(topology.has_link(link) for link in candidate.links):
                    routes.set_route(name, candidate)
                    break


class RecoveryController:
    """Applies a fault schedule to a running simulation and recovers.

    One controller serves one run: it keeps a cursor into the (sorted)
    event list, the VC/length book-keeping of currently failed links, the
    live-packet watch sets behind the per-batch recovery latencies, and
    the policy instance repairing the route set.  ``mode`` names an entry
    of :data:`repro.api.registry.recovery_policies`; the policy's
    :meth:`~RecoveryPolicy.prepare` hook may replace the design, so
    callers must build the network from :attr:`design` *after*
    construction.
    """

    def __init__(
        self,
        design: NocDesign,
        schedule: EventSchedule,
        *,
        mode: str = MODE_REMOVAL,
        congestion_factor: float = 0.5,
    ):
        self.mode = mode
        self.congestion_factor = congestion_factor
        self.policy: RecoveryPolicy = recovery_policies.get(mode)(self)
        self.design = self.policy.prepare(design)
        self._events = schedule.events
        self._cursor = 0
        #: Links currently failed: link -> (vc_count, length_mm or None).
        self._failed: Dict[Link, Tuple[int, Optional[float]]] = {}
        #: Active recovery watches: (stats index, batch cycle, live pids).
        self._watches: List[Tuple[int, int, Set[int]]] = []
        #: Links removed / restored by the batch currently being applied.
        self._batch_removed: List[Link] = []
        self._batch_restored: List[Link] = []

    # ------------------------------------------------------------------
    # topology surgery
    # ------------------------------------------------------------------
    def _fail_link(self, link: Link) -> bool:
        topology = self.design.topology
        if not topology.has_link(link):
            return False
        self._failed[link] = (
            topology.vc_count(link),
            topology.link_length(link, None),
        )
        topology.remove_link(link)
        self._batch_removed.append(link)
        return True

    def _restore_link(self, link: Link) -> bool:
        topology = self.design.topology
        if link not in self._failed or topology.has_link(link):
            return False
        vc_count, length_mm = self._failed.pop(link)
        topology.add_link(
            link.src, link.dst, index=link.index, vc_count=vc_count, length_mm=length_mm
        )
        self._batch_restored.append(link)
        return True

    def _apply_event(self, event) -> bool:
        topology = self.design.topology
        if event.action == "fail_link":
            return self._fail_link(event.link)
        if event.action == "restore_link":
            return self._restore_link(event.link)
        if event.action == "fail_router":
            if not topology.has_switch(event.switch):
                return False
            changed = False
            for link in topology.in_links(event.switch) + topology.out_links(event.switch):
                changed |= self._fail_link(link)
            return changed
        # restore_router
        changed = False
        for link in sorted(self._failed):
            if link.src == event.switch or link.dst == event.switch:
                changed |= self._restore_link(link)
        return changed

    # ------------------------------------------------------------------
    # recovery pipeline
    # ------------------------------------------------------------------
    def reroute_unrouted(self, context: DesignContext) -> None:
        """Re-route every unrouted flow against the degraded topology.

        The shared repair step of the ``removal`` and ``reroute``
        policies.  Mirrors the synthesis routing pass: flows in
        descending-bandwidth order, surviving routes committed first so
        the congestion weights the re-routed flows see reflect the
        traffic that is actually staying put.  A flow with no remaining
        path stays unrouted (its future packets are lost at injection).
        """
        design = self.design
        routes = design.routes
        router = context.router(
            congestion_factor=self.congestion_factor,
            total_bandwidth=max(design.traffic.total_bandwidth, 1e-9),
        )
        flows = sorted(design.traffic.flows, key=lambda f: (-f.bandwidth, f.name))
        unrouted = []
        for flow in flows:
            if routes.has_route(flow.name):
                router.commit(routes.route(flow.name), flow.bandwidth)
            elif design.switch_of(flow.src) != design.switch_of(flow.dst):
                unrouted.append(flow)
        for flow in unrouted:
            try:
                route = router.route(
                    design.switch_of(flow.src), design.switch_of(flow.dst)
                )
            except RouteError:
                continue
            routes.set_route(flow.name, route)
            router.commit(route, flow.bandwidth)

    def on_cycle(self, cycle: int, network, stats) -> None:
        """Apply every event due at (or before) ``cycle``, then recover."""
        events = self._events
        due = []
        while self._cursor < len(events) and events[self._cursor].cycle <= cycle:
            due.append(events[self._cursor])
            self._cursor += 1
        if not due:
            return
        stats.fault_events_applied += len(due)

        design = self.design
        routes = design.routes
        old_routes = {name: routes.route(name) for name in routes.flow_names}

        self._batch_removed = []
        self._batch_restored = []
        changed_topology = False
        for event in due:
            changed_topology |= self._apply_event(event)
        removed = self._batch_removed
        restored = self._batch_restored
        if not changed_topology:
            return

        context = DesignContext.of(design)
        context.notify_topology_changed()
        severed = []
        for link in removed:
            for name in routes.flows_using_link(link):
                routes.remove_route(name)
                severed.append(name)

        self.policy.repair(
            context,
            removed=removed,
            restored=restored,
            severed=severed,
            old_routes=old_routes,
        )
        route_changed = routes.flow_names != sorted(old_routes) or any(
            routes.route(name) != old_routes[name] for name in routes.flow_names
        )
        if route_changed and self.policy.runs_removal:
            remove_deadlocks(
                design,
                in_place=True,
                engine="context",
                validate=False,
                count_initial_cycles=False,
            )

        # Resilience book-keeping against the *final* post-recovery routes.
        doomed = []
        rerouted = 0
        for name, old_route in old_routes.items():
            if not routes.has_route(name):
                doomed.append(name)
                rerouted += 1
            elif routes.route(name) != old_route:
                doomed.append(name)
                rerouted += 1
        for name in routes.flow_names:
            if name not in old_routes:
                rerouted += 1
        stats.flows_rerouted += rerouted

        dropped_packets, dropped_flits = network.drop_flows(doomed)
        stats.packets_lost += dropped_packets
        stats.flits_lost += dropped_flits
        network.sync_with_design()

        acyclic = count_cycles(build_cdg(design), limit=1) == 0
        stats.post_fault_deadlock_free = (
            acyclic
            if stats.post_fault_deadlock_free is None
            else stats.post_fault_deadlock_free and acyclic
        )

        survivors = network.live_packet_ids()
        index = len(stats.recovery_cycles)
        if survivors:
            stats.recovery_cycles.append(-1)
            self._watches.append((index, cycle, survivors))
        else:
            stats.recovery_cycles.append(0)

    def after_step(self, cycle: int, network, stats) -> None:
        """Advance the recovery-latency watches after one network step."""
        if not self._watches:
            return
        remaining = []
        for index, batch_cycle, pids in self._watches:
            pids = {pid for pid in pids if network.is_packet_live(pid)}
            if pids:
                remaining.append((index, batch_cycle, pids))
            else:
                stats.recovery_cycles[index] = cycle - batch_cycle + 1
        self._watches = remaining

    def finalise(self, stats) -> None:
        """End-of-run hook: undrained watches keep their ``-1`` marker."""
        self._watches.clear()
