"""Online recovery from link/router failures during a simulation run.

The :class:`RecoveryController` owns the fault axis of a run: it consumes
one :class:`~repro.simulation.events.EventSchedule`, applies each due
batch of events to the *running* design at the start of its cycle, and
repairs the damage before the network takes another step:

1. the failed links leave the topology (recording their VC count and
   physical length so a later restore can resurrect them faithfully);
2. every route crossing a failed link is dropped, and every unrouted flow
   is re-routed through the design context's router
   (:meth:`~repro.perf.design_context.DesignContext.router`) with the same
   congestion-aware ordering the synthesis pipeline uses
   (flows sorted by descending bandwidth, surviving routes committed
   first so re-routes see the real congestion picture);
3. deadlock removal re-runs on the degraded design through the default
   dirty-region ``"context"`` engine, so the post-fault route set is again
   provably deadlock-free (skippable via ``mode="reroute"`` — used by the
   resilience test-suite to provoke genuine post-fault deadlocks);
4. packets in flight on any flow whose route changed are dropped (their
   wormhole path no longer exists) and the network re-synchronises its
   channel state with the degraded design.

Determinism: the controller works on the simulator's private design copy,
draws no randomness of its own, and touches the network only between
cycles — so compiled and legacy engines replaying the same schedule stay
field-identical, which ``cross_check=True`` enforces.

The per-batch *recovery latency* is the number of cycles until every
packet that was in flight when the batch hit has left the network (by
delivery — the dropped ones are gone immediately); ``-1`` marks a batch
whose survivors never drained before the run ended.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.cdg import build_cdg
from repro.core.cycles import count_cycles
from repro.core.removal import remove_deadlocks
from repro.errors import RouteError, SimulationError
from repro.model.channels import Link
from repro.model.design import NocDesign
from repro.perf.design_context import DesignContext
from repro.simulation.events import EventSchedule

#: Recovery modes: full re-routing plus deadlock re-removal (the default),
#: or re-routing only (leaves the degraded CDG as the re-router made it).
MODE_REMOVAL = "removal"
MODE_REROUTE = "reroute"
_MODES = (MODE_REMOVAL, MODE_REROUTE)


class RecoveryController:
    """Applies a fault schedule to a running simulation and recovers.

    One controller serves one run: it keeps a cursor into the (sorted)
    event list, the VC/length book-keeping of currently failed links, and
    the live-packet watch sets behind the per-batch recovery latencies.
    """

    def __init__(
        self,
        design: NocDesign,
        schedule: EventSchedule,
        *,
        mode: str = MODE_REMOVAL,
        congestion_factor: float = 0.5,
    ):
        if mode not in _MODES:
            raise SimulationError(
                f"unknown fault recovery mode {mode!r}; valid: {', '.join(_MODES)}"
            )
        self.design = design
        self.mode = mode
        self.congestion_factor = congestion_factor
        self._events = schedule.events
        self._cursor = 0
        #: Links currently failed: link -> (vc_count, length_mm or None).
        self._failed: Dict[Link, Tuple[int, Optional[float]]] = {}
        #: Active recovery watches: (stats index, batch cycle, live pids).
        self._watches: List[Tuple[int, int, Set[int]]] = []
        #: Links removed by the batch currently being applied.
        self._batch_removed: List[Link] = []

    # ------------------------------------------------------------------
    # topology surgery
    # ------------------------------------------------------------------
    def _fail_link(self, link: Link) -> bool:
        topology = self.design.topology
        if not topology.has_link(link):
            return False
        self._failed[link] = (
            topology.vc_count(link),
            topology.link_length(link, None),
        )
        topology.remove_link(link)
        self._batch_removed.append(link)
        return True

    def _restore_link(self, link: Link) -> bool:
        topology = self.design.topology
        if link not in self._failed or topology.has_link(link):
            return False
        vc_count, length_mm = self._failed.pop(link)
        topology.add_link(
            link.src, link.dst, index=link.index, vc_count=vc_count, length_mm=length_mm
        )
        return True

    def _apply_event(self, event) -> bool:
        topology = self.design.topology
        if event.action == "fail_link":
            return self._fail_link(event.link)
        if event.action == "restore_link":
            return self._restore_link(event.link)
        if event.action == "fail_router":
            if not topology.has_switch(event.switch):
                return False
            changed = False
            for link in topology.in_links(event.switch) + topology.out_links(event.switch):
                changed |= self._fail_link(link)
            return changed
        # restore_router
        changed = False
        for link in sorted(self._failed):
            if link.src == event.switch or link.dst == event.switch:
                changed |= self._restore_link(link)
        return changed

    # ------------------------------------------------------------------
    # recovery pipeline
    # ------------------------------------------------------------------
    def _reroute(self, context: DesignContext) -> None:
        """Re-route every unrouted flow against the degraded topology.

        Mirrors the synthesis routing pass: flows in descending-bandwidth
        order, surviving routes committed first so the congestion weights
        the re-routed flows see reflect the traffic that is actually
        staying put.  A flow with no remaining path stays unrouted (its
        future packets are lost at injection).
        """
        design = self.design
        routes = design.routes
        router = context.router(
            congestion_factor=self.congestion_factor,
            total_bandwidth=max(design.traffic.total_bandwidth, 1e-9),
        )
        flows = sorted(design.traffic.flows, key=lambda f: (-f.bandwidth, f.name))
        unrouted = []
        for flow in flows:
            if routes.has_route(flow.name):
                router.commit(routes.route(flow.name), flow.bandwidth)
            elif design.switch_of(flow.src) != design.switch_of(flow.dst):
                unrouted.append(flow)
        for flow in unrouted:
            try:
                route = router.route(
                    design.switch_of(flow.src), design.switch_of(flow.dst)
                )
            except RouteError:
                continue
            routes.set_route(flow.name, route)
            router.commit(route, flow.bandwidth)

    def on_cycle(self, cycle: int, network, stats) -> None:
        """Apply every event due at (or before) ``cycle``, then recover."""
        events = self._events
        due = []
        while self._cursor < len(events) and events[self._cursor].cycle <= cycle:
            due.append(events[self._cursor])
            self._cursor += 1
        if not due:
            return
        stats.fault_events_applied += len(due)

        design = self.design
        routes = design.routes
        old_routes = {name: routes.route(name) for name in routes.flow_names}

        self._batch_removed = []
        changed_topology = False
        for event in due:
            changed_topology |= self._apply_event(event)
        removed = self._batch_removed
        if not changed_topology:
            return

        context = DesignContext.of(design)
        context.notify_topology_changed()
        for link in removed:
            for name in routes.flows_using_link(link):
                routes.remove_route(name)

        self._reroute(context)
        route_changed = routes.flow_names != sorted(old_routes) or any(
            routes.route(name) != old_routes[name] for name in routes.flow_names
        )
        if route_changed and self.mode == MODE_REMOVAL:
            remove_deadlocks(
                design,
                in_place=True,
                engine="context",
                validate=False,
                count_initial_cycles=False,
            )

        # Resilience book-keeping against the *final* post-recovery routes.
        doomed = []
        rerouted = 0
        for name, old_route in old_routes.items():
            if not routes.has_route(name):
                doomed.append(name)
                rerouted += 1
            elif routes.route(name) != old_route:
                doomed.append(name)
                rerouted += 1
        for name in routes.flow_names:
            if name not in old_routes:
                rerouted += 1
        stats.flows_rerouted += rerouted

        dropped_packets, dropped_flits = network.drop_flows(doomed)
        stats.packets_lost += dropped_packets
        stats.flits_lost += dropped_flits
        network.sync_with_design()

        acyclic = count_cycles(build_cdg(design), limit=1) == 0
        stats.post_fault_deadlock_free = (
            acyclic
            if stats.post_fault_deadlock_free is None
            else stats.post_fault_deadlock_free and acyclic
        )

        survivors = network.live_packet_ids()
        index = len(stats.recovery_cycles)
        if survivors:
            stats.recovery_cycles.append(-1)
            self._watches.append((index, cycle, survivors))
        else:
            stats.recovery_cycles.append(0)

    def after_step(self, cycle: int, network, stats) -> None:
        """Advance the recovery-latency watches after one network step."""
        if not self._watches:
            return
        remaining = []
        for index, batch_cycle, pids in self._watches:
            pids = {pid for pid in pids if network.is_packet_live(pid)}
            if pids:
                remaining.append((index, batch_cycle, pids))
            else:
                stats.recovery_cycles[index] = cycle - batch_cycle + 1
        self._watches = remaining

    def finalise(self, stats) -> None:
        """End-of-run hook: undrained watches keep their ``-1`` marker."""
        self._watches.clear()
