"""The top-level simulator: traffic generation + network stepping + stats.

Typical use::

    from repro.simulation import Simulator, SimulationConfig

    sim = Simulator(design, SimulationConfig(injection_scale=3.0, seed=1))
    stats = sim.run(max_cycles=20_000)
    if stats.deadlock_detected:
        print("design deadlocked at cycle", stats.deadlock_cycle)

Deadlocks are reported in the returned statistics; pass
``raise_on_deadlock=True`` to get a :class:`repro.errors.DeadlockDetected`
exception instead (useful in tests of designs that must be deadlock free).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import DeadlockDetected
from repro.model.design import NocDesign
from repro.model.validation import validate_design
from repro.power.orion import TechnologyParameters
from repro.simulation.deadlock import DeadlockMonitor
from repro.simulation.network import WormholeNetwork
from repro.simulation.stats import SimulationStats
from repro.simulation.traffic_gen import FlowTrafficGenerator


@dataclass
class SimulationConfig:
    """Knobs of a simulation run.

    Attributes
    ----------
    buffer_depth:
        Flit capacity of every virtual-channel input buffer.  Deadlocks in
        cyclic designs appear more readily when packets are longer than the
        buffers (a packet then spans several routers).
    injection_scale:
        Multiplier on the nominal flow bandwidths (1.0 = as specified).
    watchdog_cycles:
        No-progress window before the deadlock check runs.
    seed:
        Random seed of the traffic generator.
    tech:
        Technology parameters (channel capacity used to convert bandwidths
        into injection rates).
    """

    buffer_depth: int = 4
    injection_scale: float = 1.0
    watchdog_cycles: int = 200
    seed: int = 0
    tech: TechnologyParameters = TechnologyParameters()


class Simulator:
    """Flit-level wormhole simulation of one design."""

    def __init__(self, design: NocDesign, config: Optional[SimulationConfig] = None):
        self.config = config or SimulationConfig()
        validate_design(design)
        self.design = design
        self.network = WormholeNetwork(design, buffer_depth=self.config.buffer_depth)
        self.generator = FlowTrafficGenerator(
            design,
            injection_scale=self.config.injection_scale,
            tech=self.config.tech,
            seed=self.config.seed,
        )
        self.stats = SimulationStats(design_name=design.name)
        self.monitor = DeadlockMonitor(watchdog_cycles=self.config.watchdog_cycles)
        self._cycle = 0

    # ------------------------------------------------------------------
    def _inject_new_packets(self, cycle: int) -> None:
        for packet in self.generator.generate(cycle):
            flow = self.design.traffic.flow(packet.flow_name)
            src_switch = self.design.switch_of(flow.src)
            dst_switch = self.design.switch_of(flow.dst)
            self.stats.packets_injected += 1
            if src_switch == dst_switch or not packet.route:
                # Core-to-core traffic behind the same switch never enters
                # the network: deliver immediately through the local NI.
                packet.delivered_cycle = cycle + 1
                self.stats.packets_delivered += 1
                self.stats.local_deliveries += 1
                self.stats.flits_delivered += packet.size_flits
                self.stats.latencies.append(packet.latency)
                continue
            self.network.inject(packet)

    # ------------------------------------------------------------------
    def run(
        self,
        max_cycles: int = 10_000,
        *,
        drain: bool = True,
        drain_cycles: int = 5_000,
        raise_on_deadlock: bool = False,
    ) -> SimulationStats:
        """Simulate ``max_cycles`` of injection plus an optional drain phase.

        The drain phase stops injecting and keeps the network running until
        every in-flight packet has been delivered (or ``drain_cycles``
        elapse), so latency statistics are not biased towards short routes.
        The delivered-everything test is the network's O(1) undelivered-flit
        counter, so a run that drains early never pays a per-cycle walk
        over every router's buffers and injection queues.
        """
        deadlock_channels = None
        for _ in range(max_cycles):
            self._inject_new_packets(self._cycle)
            transfers = self.network.step(self._cycle, self.stats)
            deadlock_channels = self.monitor.record_cycle(self.network, transfers)
            self._cycle += 1
            if deadlock_channels is not None:
                break

        if deadlock_channels is None and drain:
            for _ in range(drain_cycles):
                if self.network.undelivered_flits == 0:
                    break
                transfers = self.network.step(self._cycle, self.stats)
                deadlock_channels = self.monitor.record_cycle(self.network, transfers)
                self._cycle += 1
                if deadlock_channels is not None:
                    break

        self.stats.cycles_run = self._cycle
        if deadlock_channels is not None:
            self.stats.deadlock_cycle = self._cycle
            self.stats.deadlocked_channels = list(deadlock_channels)
            if raise_on_deadlock:
                raise DeadlockDetected(self._cycle, deadlock_channels)
        return self.stats


def simulate_design(
    design: NocDesign,
    *,
    max_cycles: int = 10_000,
    config: Optional[SimulationConfig] = None,
    raise_on_deadlock: bool = False,
) -> SimulationStats:
    """One-call convenience wrapper around :class:`Simulator`."""
    simulator = Simulator(design, config)
    return simulator.run(max_cycles, raise_on_deadlock=raise_on_deadlock)
