"""The top-level simulator: traffic generation + network stepping + stats.

Typical use::

    from repro.simulation import Simulator, SimulationConfig

    sim = Simulator(design, SimulationConfig(injection_scale=3.0, seed=1))
    stats = sim.run(max_cycles=20_000)
    if stats.deadlock_detected:
        print("design deadlocked at cycle", stats.deadlock_cycle)

Deadlocks are reported in the returned statistics; pass
``raise_on_deadlock=True`` to get a :class:`repro.errors.DeadlockDetected`
exception instead (useful in tests of designs that must be deadlock free).

Two interchangeable engines drive a run, looked up by name in the
pluggable :data:`repro.api.registry.simulation_engines` registry:

* ``"compiled"`` (default) — :class:`repro.perf.sim_engine.CompiledSimulator`,
  an int-indexed array simulator whose per-cycle sweep iterates flat
  arrays instead of router/buffer objects;
* ``"legacy"`` — :class:`Simulator` below, the seed object-per-flit
  implementation kept as the cross-check reference.

Both produce field-identical :class:`~repro.simulation.stats
.SimulationStats`; ``simulate_design(..., cross_check=True)`` runs both
and raises on any divergence.  Traffic comes from the
:data:`repro.api.registry.traffic_scenarios` registry
(:attr:`SimulationConfig.traffic_scenario`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional

from repro.api.registry import simulation_engines, traffic_scenarios
from repro.errors import DeadlockDetected, SimulationError
from repro.model.design import NocDesign
from repro.model.validation import validate_design
from repro.power.orion import TechnologyParameters
from repro.simulation.deadlock import DeadlockMonitor
from repro.simulation.events import EventSchedule
from repro.simulation.network import WormholeNetwork
from repro.simulation.stats import SimulationStats

ENGINE_COMPILED = "compiled"
ENGINE_LEGACY = "legacy"
#: Engine used when callers do not choose one explicitly.
DEFAULT_SIMULATION_ENGINE = ENGINE_COMPILED


@dataclass
class SimulationConfig:
    """Knobs of a simulation run.

    Attributes
    ----------
    buffer_depth:
        Flit capacity of every virtual-channel input buffer.  Deadlocks in
        cyclic designs appear more readily when packets are longer than the
        buffers (a packet then spans several routers).
    injection_scale:
        Multiplier on the nominal flow bandwidths (1.0 = as specified).
    watchdog_cycles:
        No-progress window before the deadlock check runs.
    seed:
        Random seed of the traffic generator.
    tech:
        Technology parameters (channel capacity used to convert bandwidths
        into injection rates).
    traffic_scenario:
        Name in :data:`repro.api.registry.traffic_scenarios` (``"flows"``
        is the paper's bandwidth-proportional traffic).
    scenario_params:
        Extra keyword arguments for the scenario's generator factory
        (e.g. ``{"factor": 8.0}`` for ``hotspot``).
    fault_schedule:
        Optional :class:`~repro.simulation.events.EventSchedule` of
        link/router failures to inject mid-run.  The simulator then works
        on a private copy of the design (recovery mutates topology and
        routes) and a cross-check re-run replays the same schedule.
    fault_recovery:
        Name in :data:`repro.api.registry.recovery_policies` of the
        policy repairing the route set after each fault batch:
        ``"removal"`` (default) re-routes and re-runs deadlock removal,
        ``"reroute"`` skips the removal re-run (used to study
        unprotected degradation), ``"idle"`` quiesces severed flows
        until their links restore, and ``"protection"`` swaps in
        pre-provisioned backup routes with no mid-run routing.
    """

    buffer_depth: int = 4
    injection_scale: float = 1.0
    watchdog_cycles: int = 200
    seed: int = 0
    tech: TechnologyParameters = TechnologyParameters()
    traffic_scenario: str = "flows"
    scenario_params: Dict[str, Any] = field(default_factory=dict)
    fault_schedule: Optional[EventSchedule] = None
    fault_recovery: str = "removal"


def make_traffic_generator(design: NocDesign, config: SimulationConfig):
    """The configured scenario's packet generator for ``design``.

    Both simulation engines build their generator through this helper, so a
    cross-checked pair of runs consumes identical packet sequences.
    """
    factory = traffic_scenarios.get(config.traffic_scenario)
    return factory(
        design,
        injection_scale=config.injection_scale,
        tech=config.tech,
        seed=config.seed,
        **config.scenario_params,
    )


class Simulator:
    """Flit-level wormhole simulation of one design (the seed engine)."""

    def __init__(self, design: NocDesign, config: Optional[SimulationConfig] = None):
        self.config = config or SimulationConfig()
        validate_design(design)
        self._recovery = None
        schedule = self.config.fault_schedule
        if schedule is not None and len(schedule):
            # Fault recovery mutates the topology and routes mid-run; the
            # caller's design (and the legacy cross-check re-run, which
            # replays the same schedule from its own fresh copy) must keep
            # seeing the original.
            design = design.copy()
            from repro.simulation.recovery import RecoveryController

            self._recovery = RecoveryController(
                design, schedule, mode=self.config.fault_recovery
            )
            # The policy's prepare hook may replace the design (protection
            # provisions backup VCs before the run starts), so the network
            # must be built from the controller's view of it.
            design = self._recovery.design
        self.design = design
        self.network = self._build_network(design)
        self.generator = make_traffic_generator(design, self.config)
        self.stats = SimulationStats(design_name=design.name)
        self.monitor = DeadlockMonitor(watchdog_cycles=self.config.watchdog_cycles)
        self._cycle = 0

    def _build_network(self, design: NocDesign):
        """Network-state factory — the only hook engine subclasses override."""
        return WormholeNetwork(design, buffer_depth=self.config.buffer_depth)

    # ------------------------------------------------------------------
    def _inject_new_packets(self, cycle: int) -> None:
        for packet in self.generator.generate(cycle):
            flow = self.design.traffic.flow(packet.flow_name)
            src_switch = self.design.switch_of(flow.src)
            dst_switch = self.design.switch_of(flow.dst)
            self.stats.packets_injected += 1
            if src_switch == dst_switch:
                # Core-to-core traffic behind the same switch never enters
                # the network: deliver immediately through the local NI.
                packet.delivered_cycle = cycle + 1
                self.stats.packets_delivered += 1
                self.stats.local_deliveries += 1
                self.stats.flits_delivered += packet.size_flits
                self.stats.latencies.append(packet.latency)
                continue
            if not packet.route:
                # Only reachable under fault injection: the flow has no
                # route in the degraded topology, so its traffic is lost
                # at the network interface.
                self.stats.packets_lost += 1
                self.stats.flits_lost += packet.size_flits
                continue
            self.network.inject(packet)

    # ------------------------------------------------------------------
    def run(
        self,
        max_cycles: int = 10_000,
        *,
        drain: bool = True,
        drain_cycles: int = 5_000,
        raise_on_deadlock: bool = False,
    ) -> SimulationStats:
        """Simulate ``max_cycles`` of injection plus an optional drain phase.

        The drain phase stops injecting and keeps the network running until
        every in-flight packet has been delivered (or ``drain_cycles``
        elapse), so latency statistics are not biased towards short routes.
        The delivered-everything test is the network's O(1) undelivered-flit
        counter, so a run that drains early never pays a per-cycle walk
        over every router's buffers and injection queues.
        """
        recovery = self._recovery
        deadlock_channels = None
        for _ in range(max_cycles):
            if recovery is not None:
                recovery.on_cycle(self._cycle, self.network, self.stats)
            self._inject_new_packets(self._cycle)
            transfers = self.network.step(self._cycle, self.stats)
            deadlock_channels = self.monitor.record_cycle(self.network, transfers)
            if recovery is not None:
                recovery.after_step(self._cycle, self.network, self.stats)
            self._cycle += 1
            if deadlock_channels is not None:
                break

        if deadlock_channels is None and drain:
            for _ in range(drain_cycles):
                if self.network.undelivered_flits == 0:
                    break
                # Events still pending once the drain completes are never
                # applied (the run is over as far as traffic is concerned).
                if recovery is not None:
                    recovery.on_cycle(self._cycle, self.network, self.stats)
                transfers = self.network.step(self._cycle, self.stats)
                deadlock_channels = self.monitor.record_cycle(self.network, transfers)
                if recovery is not None:
                    recovery.after_step(self._cycle, self.network, self.stats)
                self._cycle += 1
                if deadlock_channels is not None:
                    break

        if recovery is not None:
            recovery.finalise(self.stats)
        self.stats.cycles_run = self._cycle
        if deadlock_channels is not None:
            self.stats.deadlock_cycle = self._cycle
            self.stats.deadlocked_channels = list(deadlock_channels)
            if raise_on_deadlock:
                raise DeadlockDetected(self._cycle, deadlock_channels)
        return self.stats


simulation_engines.register(ENGINE_LEGACY, Simulator)


def stats_divergences(mine: SimulationStats, theirs: SimulationStats) -> list:
    """Field-by-field comparison of two runs' statistics.

    The single comparison the ``cross_check`` flag, the equivalence tests
    and the simulation benchmark all share — one place to extend if
    :class:`SimulationStats` ever gains a field needing special handling.
    """
    problems = []
    for name in SimulationStats.__dataclass_fields__:
        a, b = getattr(mine, name), getattr(theirs, name)
        if a != b:
            shown_a = a if not isinstance(a, (list, dict)) else f"<{len(a)} entries>"
            shown_b = b if not isinstance(b, (list, dict)) else f"<{len(b)} entries>"
            problems.append(f"{name}: {shown_a!r} != {shown_b!r}")
    return problems


def build_simulator(
    design: NocDesign,
    config: Optional[SimulationConfig] = None,
    *,
    engine: str = DEFAULT_SIMULATION_ENGINE,
):
    """Instantiate the named engine's simulator for ``design``."""
    return simulation_engines.get(engine)(design, config or SimulationConfig())


def verify_against_legacy(
    design: NocDesign,
    config: SimulationConfig,
    stats: SimulationStats,
    engine: str,
    **run_kwargs,
) -> None:
    """Re-run the legacy reference engine and raise on any stats divergence."""
    reference = Simulator(design, config).run(**run_kwargs)
    problems = stats_divergences(stats, reference)
    if problems:
        shown = "; ".join(problems[:5])
        extra = "" if len(problems) <= 5 else f" (+{len(problems) - 5} more)"
        raise SimulationError(
            f"simulation engine {engine!r} diverged from the legacy "
            f"reference: {shown}{extra}"
        )


def simulate_design(
    design: NocDesign,
    *,
    max_cycles: int = 10_000,
    config: Optional[SimulationConfig] = None,
    raise_on_deadlock: bool = False,
    engine: str = DEFAULT_SIMULATION_ENGINE,
    cross_check: bool = False,
    drain: bool = True,
    drain_cycles: int = 5_000,
    fault_schedule=None,
    fault_recovery: Optional[str] = None,
) -> SimulationStats:
    """One-call convenience wrapper around the pluggable simulation engines.

    ``engine`` names an entry of
    :data:`repro.api.registry.simulation_engines`; ``cross_check=True``
    additionally runs the reference ``"legacy"`` engine with an identical
    fresh configuration and raises :class:`~repro.errors.SimulationError`
    when any :class:`SimulationStats` field diverges.

    ``fault_schedule`` accepts anything
    :meth:`~repro.simulation.events.EventSchedule.from_spec` does — an
    :class:`~repro.simulation.events.EventSchedule`, an explicit
    ``{"events": [...]}`` document, or a ``{"random": {...}}`` request
    resolved against the design's topology with the config's seed — and
    overrides :attr:`SimulationConfig.fault_schedule`.  The cross-check
    re-run replays the identical schedule.  ``fault_recovery`` names a
    :data:`repro.api.registry.recovery_policies` entry and overrides
    :attr:`SimulationConfig.fault_recovery`.
    """
    config = config or SimulationConfig()
    if fault_schedule is not None:
        config = replace(
            config,
            fault_schedule=EventSchedule.from_spec(
                fault_schedule, topology=design.topology, seed=config.seed
            ),
        )
    if fault_recovery is not None:
        config = replace(config, fault_recovery=fault_recovery)
    simulator = build_simulator(design, config, engine=engine)
    run_kwargs = dict(
        drain=drain, drain_cycles=drain_cycles, raise_on_deadlock=raise_on_deadlock
    )
    stats = simulator.run(max_cycles, **run_kwargs)
    if cross_check and engine != ENGINE_LEGACY:
        verify_against_legacy(design, config, stats, engine, max_cycles=max_cycles, **run_kwargs)
    return stats
