"""Runtime deadlock detection.

Two mechanisms, combined:

* a **no-progress watchdog** — if no flit has moved for a configurable
  number of cycles while flits are buffered inside the network, the run is
  stalled;
* a **wait-for-graph check** — the channels currently holding flits are
  connected to the channels their head-of-line flits need next; a directed
  cycle among those edges is a wormhole routing deadlock (the runtime
  manifestation of a CDG cycle).

The watchdog alone could confuse extreme congestion with deadlock; the
wait-for cycle makes the verdict exact, and reporting the channels on the
cycle makes the diagnosis actionable.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import networkx as nx

from repro.model.channels import Channel
from repro.simulation.network import WormholeNetwork


def find_wait_cycle(network: WormholeNetwork) -> Optional[List[Channel]]:
    """A cycle in the channel wait-for graph, or None.

    Only channels that currently hold flits can take part: an empty channel
    never blocks anyone.
    """
    edges = network.wait_for_edges()
    if not edges:
        return None
    occupied = {edge[0] for edge in edges}
    graph = nx.DiGraph()
    for src, dst in edges:
        if dst in occupied:
            graph.add_edge(src, dst)
    try:
        cycle_edges = nx.find_cycle(graph, orientation="original")
    except nx.NetworkXNoCycle:
        return None
    return [edge[0] for edge in cycle_edges]


class DeadlockMonitor:
    """Tracks progress and decides when the network is deadlocked.

    Parameters
    ----------
    watchdog_cycles:
        Number of consecutive cycles without any flit movement (while flits
        are buffered in the network) after which the wait-for graph is
        examined.
    """

    def __init__(self, watchdog_cycles: int = 200):
        self.watchdog_cycles = watchdog_cycles
        self._idle_cycles = 0

    def record_cycle(self, network: WormholeNetwork, transfers: int) -> Optional[List[Channel]]:
        """Update the watchdog after one cycle.

        Returns the list of channels on a wait-for cycle when a deadlock is
        confirmed, otherwise ``None``.
        """
        if transfers > 0 or network.flits_in_network() == 0:
            self._idle_cycles = 0
            return None
        self._idle_cycles += 1
        if self._idle_cycles < self.watchdog_cycles:
            return None
        cycle = find_wait_cycle(network)
        if cycle is None:
            # Stalled but no cyclic wait (e.g. the injection process simply
            # stopped); reset so the watchdog can trip again later.
            self._idle_cycles = 0
            return None
        return cycle

    @property
    def idle_cycles(self) -> int:
        """Consecutive cycles without progress seen so far."""
        return self._idle_cycles
