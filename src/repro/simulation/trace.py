"""Trace-driven traffic: replay JSON per-flow demand traces.

Datacenter-scale evaluations (VL2 and its reproductions) drive the network
from measured demand traces rather than stochastic generators.  The
``trace`` entry of :data:`repro.api.registry.traffic_scenarios` replays
such a trace against a design's flows; a seeded synthetic trace generator
(:func:`synthesize_trace`) makes the scenario fully reproducible from
:attr:`repro.api.spec.RunSpec.seed` alone when no external trace is given.

Trace document shape (``format_version`` 1)::

    {
      "format_version": 1,
      "cycles": 2000,
      "events": [
        {"cycle": 0, "flow": "f3", "packets": 1},
        {"cycle": 2, "flow": "f0", "packets": 2}
      ]
    }

``cycles`` is the replay horizon (injection stops when the simulation runs
past it); each event injects ``packets`` packets of its flow at ``cycle``.
Events are canonicalized to ``(cycle, flow)`` order and merged, so any
permutation of the same events is the same trace.

A synthetic trace produced by :func:`synthesize_trace` materializes the
exact Bernoulli draws of the ``flows`` scenario at the same
``(seed, injection_scale)`` — replaying it is packet-for-packet identical
to the paper's traffic, which is what the cross-check tests pin down.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.errors import SimulationError
from repro.model.design import NocDesign
from repro.power.orion import TechnologyParameters
from repro.simulation.flit import Packet
from repro.simulation.traffic_gen import FlowTrafficGenerator

#: Version tag of the trace JSON document.
TRACE_FORMAT_VERSION = 1


def synthesize_trace(
    design: NocDesign,
    *,
    cycles: int,
    injection_scale: float = 1.0,
    tech: Optional[TechnologyParameters] = None,
    seed: int = 0,
) -> Dict[str, Any]:
    """Materialize the ``flows`` scenario's injections as a trace document.

    The returned document, replayed through the ``trace`` scenario at the
    same ``injection_scale``, injects the exact packet sequence the
    ``flows`` scenario produces for ``(design, seed)`` — a seeded synthetic
    demand trace, reproducible from the spec's seed.
    """
    if cycles < 1:
        raise SimulationError(f"a trace needs at least 1 cycle, got {cycles}")
    generator = FlowTrafficGenerator(
        design, injection_scale=injection_scale, tech=tech, seed=seed
    )
    events: List[Dict[str, Any]] = []
    for cycle in range(cycles):
        for packet in generator.generate(cycle):
            events.append({"cycle": cycle, "flow": packet.flow_name, "packets": 1})
    return {
        "format_version": TRACE_FORMAT_VERSION,
        "cycles": cycles,
        "events": events,
    }


def validate_trace(document: Mapping[str, Any]) -> Dict[str, Any]:
    """Canonical form of a trace document (SimulationError on any problem).

    Events are sorted by ``(cycle, flow)`` and same-key events merged, so
    two traces listing the same injections in any order canonicalize to the
    same document (and therefore the same spec fingerprint).
    """
    if not isinstance(document, Mapping):
        raise SimulationError(
            f"a trace must be a mapping, got {type(document).__name__}"
        )
    version = document.get("format_version", TRACE_FORMAT_VERSION)
    if version != TRACE_FORMAT_VERSION:
        raise SimulationError(
            f"unsupported trace format version {version!r} "
            f"(expected {TRACE_FORMAT_VERSION})"
        )
    unknown = sorted(set(document) - {"format_version", "cycles", "events"})
    if unknown:
        raise SimulationError(f"unknown trace field(s): {', '.join(unknown)}")
    cycles = document.get("cycles")
    if not isinstance(cycles, int) or isinstance(cycles, bool) or cycles < 1:
        raise SimulationError(f"trace cycles must be a positive integer, got {cycles!r}")
    events = document.get("events", [])
    if not isinstance(events, (list, tuple)):
        raise SimulationError(f"trace events must be a list, got {events!r}")
    merged: Dict[Tuple[int, str], int] = {}
    for event in events:
        if not isinstance(event, Mapping):
            raise SimulationError(f"trace event must be a mapping, got {event!r}")
        extra = sorted(set(event) - {"cycle", "flow", "packets"})
        if extra:
            raise SimulationError(f"unknown trace event field(s): {', '.join(extra)}")
        cycle = event.get("cycle")
        if not isinstance(cycle, int) or isinstance(cycle, bool) or cycle < 0:
            raise SimulationError(
                f"trace event cycle must be a non-negative integer, got {cycle!r}"
            )
        if cycle >= cycles:
            raise SimulationError(
                f"trace event at cycle {cycle} is beyond the trace horizon "
                f"({cycles} cycles)"
            )
        flow = event.get("flow")
        if not isinstance(flow, str) or not flow:
            raise SimulationError(
                f"trace event flow must be a non-empty string, got {flow!r}"
            )
        packets = event.get("packets", 1)
        if not isinstance(packets, int) or isinstance(packets, bool) or packets < 1:
            raise SimulationError(
                f"trace event packet count must be a positive integer, got {packets!r}"
            )
        key = (cycle, flow)
        merged[key] = merged.get(key, 0) + packets
    canonical_events = [
        {"cycle": cycle, "flow": flow, "packets": merged[(cycle, flow)]}
        for cycle, flow in sorted(merged)
    ]
    return {
        "format_version": TRACE_FORMAT_VERSION,
        "cycles": cycles,
        "events": canonical_events,
    }


def load_trace(path: Union[str, Path]) -> Dict[str, Any]:
    """Read and canonicalize a trace JSON file."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise SimulationError(f"could not read trace from {path}: {exc}") from exc
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SimulationError(f"invalid trace JSON in {path}: {exc}") from exc
    return validate_trace(document)


def save_trace(document: Mapping[str, Any], path: Union[str, Path]) -> Path:
    """Canonicalize and write a trace document as JSON."""
    path = Path(path)
    canonical = validate_trace(document)
    try:
        path.write_text(json.dumps(canonical, indent=2, sort_keys=True) + "\n")
    except OSError as exc:
        raise SimulationError(f"could not write trace to {path}: {exc}") from exc
    return path


class TraceTrafficGenerator(FlowTrafficGenerator):
    """Replay a per-flow demand trace (the ``trace`` scenario).

    Parameters
    ----------
    trace:
        A trace document (mapping) or a path to a trace JSON file.  When
        omitted, a synthetic trace of ``trace_cycles`` cycles is generated
        from ``(design, seed, injection_scale)`` via
        :func:`synthesize_trace` — packet-for-packet identical to the
        ``flows`` scenario over the trace horizon.
    trace_cycles:
        Horizon of the synthetic trace (ignored for explicit traces).
    injection_scale:
        For an *explicit* trace, scales every event's packet count (the
        fractional remainder becomes one extra packet with the
        corresponding probability, drawn from the seeded instance RNG).  A
        synthetic trace already embeds the scale, so replay is exact.

    Every trace flow must be an eligible flow of the design (routed, or a
    same-switch local); unknown flows raise :class:`SimulationError` up
    front rather than silently dropping demand.
    """

    scenario = "trace"

    def __init__(
        self,
        design: NocDesign,
        *,
        injection_scale: float = 1.0,
        tech: Optional[TechnologyParameters] = None,
        seed: int = 0,
        trace: Optional[Union[Mapping[str, Any], str, Path]] = None,
        trace_cycles: int = 3000,
    ):
        self._explicit = trace is not None
        if isinstance(trace, (str, Path)):
            trace = load_trace(trace)
        elif trace is not None:
            trace = validate_trace(trace)
        else:
            trace = validate_trace(
                synthesize_trace(
                    design,
                    cycles=trace_cycles,
                    injection_scale=injection_scale,
                    tech=tech,
                    seed=seed,
                )
            )
        self._trace = trace
        # _compute_rates (called by the base constructor) reads self._trace.
        super().__init__(design, injection_scale=injection_scale, tech=tech, seed=seed)
        schedule: Dict[int, List[Tuple[str, int]]] = {}
        for event in trace["events"]:
            schedule.setdefault(event["cycle"], []).append(
                (event["flow"], event["packets"])
            )
        self._schedule = schedule

    # ------------------------------------------------------------------
    @property
    def trace(self) -> Dict[str, Any]:
        """The canonical trace document being replayed (copy)."""
        return {
            "format_version": self._trace["format_version"],
            "cycles": self._trace["cycles"],
            "events": [dict(event) for event in self._trace["events"]],
        }

    def _compute_rates(self) -> Dict[str, float]:
        """Average per-flow packet rates over the trace horizon.

        Used for ``offered_flits_per_cycle`` (saturation detection); the
        actual injections come from the replay, not Bernoulli draws.
        """
        names = self._eligible_flows()
        totals = {name: 0 for name in names}
        for event in self._trace["events"]:
            flow = event["flow"]
            if flow not in totals:
                raise SimulationError(
                    f"trace references flow {flow!r}, which is not an "
                    f"eligible flow of design {self.design.name!r}"
                )
            totals[flow] += event["packets"]
        cycles = self._trace["cycles"]
        scale = self.injection_scale if self._explicit else 1.0
        return {
            name: min(total * scale / cycles, 1.0) for name, total in totals.items()
        }

    def _emitted_count(self, packets: int) -> int:
        """Packets to inject for one event, after injection scaling."""
        if not self._explicit:
            return packets
        effective = packets * self.injection_scale
        count = int(effective)
        remainder = effective - count
        if remainder > 0 and self._rng.random() < remainder:
            count += 1
        return count

    def generate(self, cycle: int) -> List[Packet]:
        """Packets the trace injects at ``cycle``, in (cycle, flow) order."""
        packets: List[Packet] = []
        for flow_name, count in self._schedule.get(cycle, ()):
            emit = self._emitted_count(count)
            if emit <= 0:
                continue
            flow = self.design.traffic.flow(flow_name)
            if self.design.routes.has_route(flow_name):
                route_channels = self.design.routes.route(flow_name).channels
            else:
                route_channels = ()
            for _ in range(emit):
                packet = Packet(
                    packet_id=self._next_packet_id,
                    flow_name=flow_name,
                    route=route_channels,
                    size_flits=flow.packet_size_flits,
                    created_cycle=cycle,
                )
                self._next_packet_id += 1
                packets.append(packet)
        return packets
