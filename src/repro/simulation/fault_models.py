"""Correlated fault-model generators for the fault-injection axis.

PR 6's :meth:`~repro.simulation.events.EventSchedule.random` draws
failures uniformly over the topology — fine as a reference, but real
failures cluster: a power-domain brownout takes out a neighbourhood, hot
links age faster, components fail and get repaired over and over.  This
module packages those correlation structures as named generators in the
:data:`repro.api.registry.fault_models` registry, each a seeded, pure
function ``(design, seed, parameters) -> EventSchedule``:

* ``uniform`` — the PR 6 behaviour, byte-identical to
  :meth:`EventSchedule.random` (kept as the reference model);
* ``spatial_burst`` — each burst picks an epicentre switch and fails
  every link with an endpoint within ``radius`` hops of it, modelling a
  spatially correlated event (power domain, clock region, thermal hot
  spot); ``restore_after`` repairs the whole burst at once;
* ``cascade`` — links fail in load order: failure draws are weighted by
  each link's offered load (summed flow bandwidths over the design's
  routes), and earlier draws get earlier failure cycles, so the hottest
  links go down first — a load-triggered cascade;
* ``mtbf`` — a per-link renewal process with exponentially distributed
  up (``mtbf``) and down (``mttr``) times over a ``horizon``, producing
  interleaved fail/restore pairs; a repair falling past the horizon is
  dropped (the link stays down for the rest of the run).

Every generator draws all randomness from one ``random.Random(seed)``
over *sorted* candidate lists, so the schedule is a pure function of
``(design, seed, parameters)`` — the experiment API threads
:attr:`repro.api.spec.RunSpec.seed` and
:attr:`~repro.api.spec.RunSpec.fault_params` into it — and every
generator validates its output against the topology
(:meth:`EventSchedule.validate_targets`) before returning it.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.api.registry import fault_models
from repro.errors import SimulationError
from repro.model.channels import Link
from repro.model.design import NocDesign
from repro.model.topology import Topology
from repro.simulation.events import EventSchedule


def _check_window(start_cycle: int, end_cycle: int) -> None:
    if end_cycle <= start_cycle:
        raise SimulationError(
            f"end_cycle ({end_cycle}) must exceed start_cycle ({start_cycle})"
        )


@fault_models.register("uniform")
def uniform_model(
    design: NocDesign,
    *,
    seed: int = 0,
    link_failures: int = 1,
    router_failures: int = 0,
    start_cycle: int = 100,
    end_cycle: int = 1000,
    restore_after: Optional[int] = None,
) -> EventSchedule:
    """Uniform-random failures — the PR 6 reference model.

    Delegates to :meth:`EventSchedule.random` with identical parameters,
    so ``fault_model="uniform"`` reproduces the exact schedules (and
    therefore the exact simulation statistics) of a PR 6-style
    ``fault_schedule={"random": {...}}`` request.
    """
    return EventSchedule.random(
        design.topology,
        seed=seed,
        link_failures=link_failures,
        router_failures=router_failures,
        start_cycle=start_cycle,
        end_cycle=end_cycle,
        restore_after=restore_after,
    )


def _hop_distances(topology: Topology, origin: str) -> Dict[str, int]:
    """Undirected BFS hop distance from ``origin`` to every switch."""
    adjacency: Dict[str, set] = {}
    for link in topology.links:
        adjacency.setdefault(link.src, set()).add(link.dst)
        adjacency.setdefault(link.dst, set()).add(link.src)
    distances = {origin: 0}
    frontier = [origin]
    while frontier:
        next_frontier: List[str] = []
        for switch in frontier:
            for neighbor in sorted(adjacency.get(switch, ())):
                if neighbor not in distances:
                    distances[neighbor] = distances[switch] + 1
                    next_frontier.append(neighbor)
        frontier = next_frontier
    return distances


@fault_models.register("spatial_burst")
def spatial_burst_model(
    design: NocDesign,
    *,
    seed: int = 0,
    bursts: int = 1,
    radius: int = 1,
    start_cycle: int = 100,
    end_cycle: int = 1000,
    restore_after: Optional[int] = None,
) -> EventSchedule:
    """Spatially correlated bursts around randomly chosen epicentres.

    Each burst draws an epicentre switch and a failure cycle, then fails
    every directed link with at least one endpoint within ``radius``
    hops of the epicentre (``radius=0`` fails exactly the links touching
    it, the footprint of a router brownout).  With ``restore_after`` the
    whole burst is repaired that many cycles later.  Bursts may overlap;
    re-failing an already failed link is the usual no-op.
    """
    _check_window(start_cycle, end_cycle)
    if radius < 0:
        raise SimulationError(f"burst radius must be non-negative, got {radius}")
    topology = design.topology
    rng = random.Random(seed)
    schedule = EventSchedule()
    switches = sorted(topology.switches)
    if not switches:
        return schedule
    for epicentre in rng.sample(switches, min(max(bursts, 0), len(switches))):
        cycle = rng.randrange(start_cycle, end_cycle)
        distances = _hop_distances(topology, epicentre)
        far = radius + 1
        for link in topology.links:  # sorted
            if min(distances.get(link.src, far), distances.get(link.dst, far)) > radius:
                continue
            schedule.fail_link(cycle, link.src, link.dst, link.index)
            if restore_after is not None:
                schedule.restore_link(
                    cycle + restore_after, link.src, link.dst, link.index
                )
    return schedule.validate_targets(topology)


def _weighted_draw_order(
    rng: random.Random, links: List[Link], weights: List[float], count: int
) -> List[Link]:
    """``count`` distinct links, drawn without replacement by weight.

    Zero-weight links are only eligible once every positive-weight link
    has been drawn (the draw then falls back to a uniform pick), so a
    loaded link always fails before an idle one.
    """
    pool: List[Tuple[Link, float]] = list(zip(links, weights))
    chosen: List[Link] = []
    for _ in range(min(max(count, 0), len(pool))):
        total = sum(weight for _, weight in pool if weight > 0)
        if total > 0:
            threshold = rng.random() * total
            cumulative = 0.0
            index = 0
            for position, (_, weight) in enumerate(pool):
                if weight <= 0:
                    continue
                cumulative += weight
                index = position
                if threshold < cumulative:
                    break
        else:
            index = rng.randrange(len(pool))
        chosen.append(pool.pop(index)[0])
    return chosen


@fault_models.register("cascade")
def cascade_model(
    design: NocDesign,
    *,
    seed: int = 0,
    failures: int = 2,
    start_cycle: int = 100,
    end_cycle: int = 1000,
    restore_after: Optional[int] = None,
) -> EventSchedule:
    """Load-triggered cascade: the hottest links fail first.

    Each link's failure weight is its offered load — the summed bandwidth
    of every flow whose route crosses it, computed from the design's
    routes — and ``failures`` distinct links are drawn without
    replacement by that weight.  Failure cycles are drawn from the window
    and assigned in ascending order of the draw, so the first (most
    likely hottest) link fails earliest: load kills, and the survivors
    inherit the traffic.  Unloaded links only fail once every loaded one
    is down.
    """
    _check_window(start_cycle, end_cycle)
    topology = design.topology
    rng = random.Random(seed)
    schedule = EventSchedule()
    links = topology.links  # sorted
    if not links:
        return schedule
    loads = design.link_load()
    chosen = _weighted_draw_order(
        rng, links, [loads.get(link, 0.0) for link in links], failures
    )
    cycles = sorted(rng.randrange(start_cycle, end_cycle) for _ in chosen)
    for link, cycle in zip(chosen, cycles):
        schedule.fail_link(cycle, link.src, link.dst, link.index)
        if restore_after is not None:
            schedule.restore_link(cycle + restore_after, link.src, link.dst, link.index)
    return schedule.validate_targets(topology)


@fault_models.register("mtbf")
def mtbf_model(
    design: NocDesign,
    *,
    seed: int = 0,
    mtbf: float = 1500.0,
    mttr: float = 300.0,
    horizon: int = 2000,
) -> EventSchedule:
    """Per-link renewal process with exponential MTBF/MTTR.

    Every link alternates exponentially distributed up times (mean
    ``mtbf`` cycles) and down times (mean ``mttr`` cycles), emitting a
    ``fail_link`` at the end of each up period and a matching
    ``restore_link`` at the end of the following down period, for as long
    as the events land inside ``horizon``.  Per link the events strictly
    alternate fail/restore with strictly increasing cycles; a repair
    falling past the horizon is dropped, so at most the last event of a
    link is an unmatched failure (it stays down to the end of the run).
    """
    if mtbf <= 0 or mttr <= 0:
        raise SimulationError(
            f"mtbf and mttr must be positive, got mtbf={mtbf}, mttr={mttr}"
        )
    if horizon < 1:
        raise SimulationError(f"horizon must be at least 1 cycle, got {horizon}")
    topology = design.topology
    rng = random.Random(seed)
    schedule = EventSchedule()
    for link in topology.links:  # sorted: one shared RNG stays deterministic
        clock = rng.expovariate(1.0 / mtbf)
        previous = -1
        while True:
            fail = max(int(clock), previous + 1)
            if fail >= horizon:
                break
            schedule.fail_link(fail, link.src, link.dst, link.index)
            clock = max(clock, float(fail)) + rng.expovariate(1.0 / mttr)
            restore = max(int(clock), fail + 1)
            if restore >= horizon:
                break
            schedule.restore_link(restore, link.src, link.dst, link.index)
            previous = restore
            clock = max(clock, float(restore)) + rng.expovariate(1.0 / mtbf)
    return schedule.validate_targets(topology)


# ----------------------------------------------------------------------
def build_fault_schedule(
    design: NocDesign,
    *,
    fault_model: Optional[str] = None,
    fault_params: Optional[Mapping[str, Any]] = None,
    fault_schedule: Any = None,
    seed: int = 0,
) -> Optional[EventSchedule]:
    """Resolve a spec-level fault request into one validated schedule.

    The single resolution point shared by the experiment runner, the
    CLI and :func:`~repro.analysis.performance.measure_load_point`: a
    ``fault_model`` name (with ``fault_params``) generates through the
    registry, a ``fault_schedule`` document resolves through
    :meth:`EventSchedule.from_spec`, and passing both is an error — they
    are two spellings of the same axis.  A generator's own ``seed``
    parameter, when present in ``fault_params``, wins over the spec-level
    ``seed`` (mirroring ``{"random": {...}}`` requests).
    """
    if fault_model is None:
        if fault_params:
            raise SimulationError(
                "fault_params given without a fault_model to apply them to"
            )
        return EventSchedule.from_spec(
            fault_schedule, topology=design.topology, seed=seed
        )
    if fault_schedule is not None:
        raise SimulationError(
            "fault_model and fault_schedule are mutually exclusive ways to "
            "request fault injection; set only one"
        )
    generator = fault_models.get(fault_model)
    params = dict(fault_params or {})
    params.setdefault("seed", seed)
    try:
        return generator(design, **params)
    except TypeError as exc:
        raise SimulationError(
            f"invalid parameters for fault model {fault_model!r}: {exc}"
        ) from exc
