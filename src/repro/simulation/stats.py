"""Simulation statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.model.channels import Channel


@dataclass
class SimulationStats:
    """Counters and derived metrics collected by one simulation run."""

    design_name: str
    cycles_run: int = 0
    packets_injected: int = 0
    packets_delivered: int = 0
    flits_delivered: int = 0
    flit_transfers: int = 0
    local_deliveries: int = 0
    latencies: List[int] = field(default_factory=list)
    channel_busy_cycles: Dict[Channel, int] = field(default_factory=dict)
    deadlock_cycle: Optional[int] = None
    deadlocked_channels: List[Channel] = field(default_factory=list)
    # --- resilience metrics (all stay at their defaults in fault-free
    # runs, so healthy statistics compare identically to older records) ---
    #: Fault events actually applied during the run (events scheduled past
    #: the end of the simulation are never consumed).
    fault_events_applied: int = 0
    #: Packets dropped by recovery (in-flight on a re-routed/unroutable
    #: flow) or lost at injection (flow unroutable in the degraded topology).
    packets_lost: int = 0
    #: Flits belonging to lost packets (undelivered at the time of loss).
    flits_lost: int = 0
    #: Flow reroute events: flows whose route changed (or vanished) across
    #: a fault batch, summed over all applied batches.
    flows_rerouted: int = 0
    #: Per applied fault batch: cycles until every packet that was in
    #: flight when the batch hit had left the network (-1 = never did
    #: before the run ended).
    recovery_cycles: List[int] = field(default_factory=list)
    #: AND over all applied batches of "the degraded CDG is acyclic after
    #: recovery"; ``None`` when no batch was applied.
    post_fault_deadlock_free: Optional[bool] = None

    @property
    def deadlock_detected(self) -> bool:
        """True when the run ended in (or detected) a deadlock."""
        return self.deadlock_cycle is not None

    @property
    def batches_never_drained(self) -> int:
        """Fault batches whose surviving in-flight packets never left.

        Counts the ``-1`` sentinels in :attr:`recovery_cycles`.  Derived
        (not a dataclass field) so the cross-check field comparison and
        cached result records keep their exact historical shape.
        """
        return sum(1 for cycles in self.recovery_cycles if cycles < 0)

    @property
    def packets_in_flight(self) -> int:
        """Packets injected but not delivered when the run stopped."""
        return self.packets_injected - self.packets_delivered

    @property
    def average_latency(self) -> float:
        """Mean packet latency in cycles (0 when nothing was delivered)."""
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)

    @property
    def max_latency(self) -> int:
        """Worst packet latency in cycles (0 when nothing was delivered)."""
        return max(self.latencies) if self.latencies else 0

    @property
    def throughput_flits_per_cycle(self) -> float:
        """Delivered flits per simulated cycle."""
        if self.cycles_run == 0:
            return 0.0
        return self.flits_delivered / self.cycles_run

    def channel_utilization(self, channel: Channel) -> float:
        """Fraction of cycles ``channel`` transferred a flit."""
        if self.cycles_run == 0:
            return 0.0
        return self.channel_busy_cycles.get(channel, 0) / self.cycles_run

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"Simulation of {self.design_name!r} ({self.cycles_run} cycles)",
            f"  packets injected  : {self.packets_injected}",
            f"  packets delivered : {self.packets_delivered}",
            f"  average latency   : {self.average_latency:.1f} cycles",
            f"  throughput        : {self.throughput_flits_per_cycle:.3f} flits/cycle",
        ]
        if self.fault_events_applied:
            recovered = [c for c in self.recovery_cycles if c >= 0]
            mean_recovery = (
                sum(recovered) / len(recovered) if recovered else 0.0
            )
            lines.extend(
                [
                    f"  fault events      : {self.fault_events_applied}",
                    f"  packets lost      : {self.packets_lost} "
                    f"({self.flits_lost} flits)",
                    f"  flows rerouted    : {self.flows_rerouted}",
                    f"  mean recovery     : {mean_recovery:.1f} cycles "
                    f"({len(recovered)}/{len(self.recovery_cycles)} batches drained)",
                    f"  post-fault CDG    : "
                    f"{'acyclic' if self.post_fault_deadlock_free else 'CYCLIC'}",
                ]
            )
        if self.deadlock_detected:
            lines.append(
                f"  DEADLOCK at cycle {self.deadlock_cycle} "
                f"({len(self.deadlocked_channels)} channels in cyclic wait)"
            )
        return "\n".join(lines)
