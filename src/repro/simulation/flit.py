"""Packets and flits.

Wormhole flow control splits a packet into flits: a head flit that carries
the route (source routing), zero or more body flits and a tail flit that
releases the channels the packet acquired.  Flits are tiny mutable records;
the simulator creates a lot of them, so they use ``__slots__``.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.model.channels import Channel


class Packet:
    """One packet of a flow, travelling over a fixed route."""

    __slots__ = (
        "packet_id",
        "flow_name",
        "route",
        "size_flits",
        "created_cycle",
        "delivered_cycle",
    )

    def __init__(
        self,
        packet_id: int,
        flow_name: str,
        route: Tuple[Channel, ...],
        size_flits: int,
        created_cycle: int,
    ):
        self.packet_id = packet_id
        self.flow_name = flow_name
        self.route = route
        self.size_flits = size_flits
        self.created_cycle = created_cycle
        self.delivered_cycle: Optional[int] = None

    @property
    def latency(self) -> Optional[int]:
        """Cycles from creation to tail delivery (None while in flight)."""
        if self.delivered_cycle is None:
            return None
        return self.delivered_cycle - self.created_cycle

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(id={self.packet_id}, flow={self.flow_name!r}, "
            f"size={self.size_flits}, hops={len(self.route)})"
        )


class Flit:
    """One flit of a packet.

    ``hops_done`` counts how many channels of the packet's route this flit
    has already traversed; the next channel it needs is
    ``packet.route[hops_done]``.
    """

    __slots__ = ("packet", "index", "hops_done")

    def __init__(self, packet: Packet, index: int):
        self.packet = packet
        self.index = index
        self.hops_done = 0

    @property
    def is_head(self) -> bool:
        """True for the first flit of the packet."""
        return self.index == 0

    @property
    def is_tail(self) -> bool:
        """True for the last flit of the packet."""
        return self.index == self.packet.size_flits - 1

    @property
    def next_channel(self) -> Optional[Channel]:
        """The channel this flit traverses next (None when it has arrived)."""
        if self.hops_done >= len(self.packet.route):
            return None
        return self.packet.route[self.hops_done]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "H" if self.is_head else ("T" if self.is_tail else "B")
        return f"Flit({kind}, packet={self.packet.packet_id}, hop={self.hops_done})"


def make_flits(packet: Packet) -> list:
    """All flits of a packet, head first."""
    return [Flit(packet, index) for index in range(packet.size_flits)]
