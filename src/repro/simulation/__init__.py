"""Flit-level wormhole NoC simulator.

The paper argues deadlock freedom analytically (acyclic CDG); this package
provides the missing runtime evidence: a cycle-driven, flit-level simulator
with per-VC input buffers, credit-based wormhole flow control, source
routing and a deadlock detector.  Designs whose CDG contains cycles do
deadlock under pressure; the same designs after
:func:`repro.core.removal.remove_deadlocks` (or resource ordering) do not.
"""

from repro.simulation.simulator import SimulationConfig, Simulator, simulate_design
from repro.simulation.stats import SimulationStats

__all__ = ["Simulator", "SimulationConfig", "simulate_design", "SimulationStats"]
