"""Flit-level wormhole NoC simulator.

The paper argues deadlock freedom analytically (acyclic CDG); this package
provides the missing runtime evidence: a cycle-driven, flit-level simulator
with per-VC input buffers, credit-based wormhole flow control, source
routing and a deadlock detector.  Designs whose CDG contains cycles do
deadlock under pressure; the same designs after
:func:`repro.core.removal.remove_deadlocks` (or resource ordering) do not.

Simulation engines are pluggable
(:data:`repro.api.registry.simulation_engines`): ``"compiled"`` — the
int-indexed array engine from :mod:`repro.perf.sim_engine`, the default —
and ``"legacy"``, this package's object-per-flit :class:`Simulator`, kept
as the cross-check reference.  Traffic patterns are pluggable too
(:data:`repro.api.registry.traffic_scenarios`; built-ins in
:mod:`repro.simulation.scenarios`).
"""

from repro.simulation.events import EventSchedule, FaultEvent
from repro.simulation.recovery import RecoveryController
from repro.simulation.simulator import (
    DEFAULT_SIMULATION_ENGINE,
    SimulationConfig,
    Simulator,
    build_simulator,
    make_traffic_generator,
    simulate_design,
    stats_divergences,
)
from repro.simulation.stats import SimulationStats
from repro.simulation.traffic_gen import FlowTrafficGenerator

__all__ = [
    "DEFAULT_SIMULATION_ENGINE",
    "EventSchedule",
    "FaultEvent",
    "FlowTrafficGenerator",
    "RecoveryController",
    "Simulator",
    "SimulationConfig",
    "build_simulator",
    "make_traffic_generator",
    "simulate_design",
    "SimulationStats",
    "stats_divergences",
]
