"""Traffic scenarios: pluggable spatial/temporal injection patterns.

The paper evaluates designs under their own traffic specification
(:class:`~repro.simulation.traffic_gen.FlowTrafficGenerator`, the
``"flows"`` scenario).  The classic NoC evaluation methodology additionally
stresses a network with synthetic patterns; this module provides them as
entries of the :data:`repro.api.registry.traffic_scenarios` registry, so a
:class:`~repro.api.spec.RunSpec`, the CLI and the library all select one by
name.

Because the simulator is source-routed over the design's synthesized
routes, scenarios are expressed as *redistributions of the offered load
over the design's flows* rather than as arbitrary switch-pair traffic: a
scenario re-weights which flows inject (spatial) or when they inject
(temporal) while keeping the aggregate offered load of the ``flows``
scenario at the same ``injection_scale``, so latency curves of different
scenarios are comparable.

Built-ins (all seed-deterministic — every random decision comes from the
generator's instance RNG):

* ``flows`` — bandwidth-proportional Bernoulli injection (the paper);
* ``uniform`` — the same aggregate flit load spread evenly over all flows;
* ``hotspot`` — flows into one destination switch (by default the switch
  already attracting the most bandwidth) get ``factor`` times the uniform
  weight;
* ``transpose`` — flows whose endpoint switches form a transposed index
  pair (``idx(dst) == N - 1 - idx(src)`` over sorted switch names) carry
  the load; all other flows idle at ``off_factor`` of the uniform weight;
* ``bursty`` — the paper's rates modulated by a per-flow two-state on/off
  Markov process (mean burst length ``burst_length``, duty cycle ``duty``),
  preserving the long-run average rate;
* ``trace`` — replay of a JSON per-flow demand trace
  (:class:`~repro.simulation.trace.TraceTrafficGenerator`); without an
  explicit ``trace`` parameter a seeded synthetic trace reproduces the
  ``flows`` scenario packet-for-packet.

New scenarios plug in with a decorator::

    from repro.api.registry import traffic_scenarios

    @traffic_scenarios.register("my_pattern")
    def _my_pattern(design, *, injection_scale=1.0, tech=None, seed=0, **params):
        return MyGenerator(...)
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.api.registry import traffic_scenarios
from repro.errors import SimulationError
from repro.model.design import NocDesign
from repro.power.orion import TechnologyParameters
from repro.simulation.trace import TraceTrafficGenerator
from repro.simulation.traffic_gen import FlowTrafficGenerator


class _WeightedTrafficGenerator(FlowTrafficGenerator):
    """Base for spatial scenarios: re-weight flows, preserve aggregate load.

    Subclasses provide :meth:`_flow_weight`; rates are assigned so that a
    flow's share of the aggregate offered flit load (which matches the
    ``flows`` scenario at the same ``injection_scale``) is proportional to
    its weight.
    """

    def _flow_weight(self, flow_name: str) -> float:
        raise NotImplementedError

    def _compute_rates(self) -> Dict[str, float]:
        nominal = super()._compute_rates()
        traffic = self.design.traffic
        aggregate = sum(
            rate * traffic.flow(name).packet_size_flits
            for name, rate in nominal.items()
        )
        weights = {name: self._flow_weight(name) for name in nominal}
        total_weight = sum(weights.values())
        if not nominal or total_weight <= 0 or aggregate <= 0:
            return {name: 0.0 for name in nominal}
        rates: Dict[str, float] = {}
        for name in nominal:
            size = traffic.flow(name).packet_size_flits
            share = aggregate * weights[name] / total_weight
            rates[name] = min(share / size, 1.0)
        return rates


class UniformTrafficGenerator(_WeightedTrafficGenerator):
    """Aggregate offered load spread evenly over every eligible flow."""

    scenario = "uniform"

    def _flow_weight(self, flow_name: str) -> float:
        return 1.0


class HotspotTrafficGenerator(_WeightedTrafficGenerator):
    """Uniform load with one destination switch boosted by ``factor``.

    ``hotspot`` names the destination switch; when omitted the generator
    picks the switch already attracting the largest aggregate nominal
    bandwidth (ties broken by name), which is where real workloads
    concentrate (memory controllers, shared caches).
    """

    scenario = "hotspot"

    def __init__(
        self,
        design: NocDesign,
        *,
        injection_scale: float = 1.0,
        tech: Optional[TechnologyParameters] = None,
        seed: int = 0,
        hotspot: Optional[str] = None,
        factor: float = 4.0,
    ):
        if factor <= 0:
            raise SimulationError(f"hotspot factor must be positive, got {factor}")
        if hotspot is not None and not design.topology.has_switch(hotspot):
            raise SimulationError(f"unknown hotspot switch {hotspot!r}")
        self.factor = factor
        self.hotspot = hotspot if hotspot is not None else self._busiest_switch(design)
        super().__init__(design, injection_scale=injection_scale, tech=tech, seed=seed)

    @staticmethod
    def _busiest_switch(design: NocDesign) -> str:
        incoming: Dict[str, float] = {}
        for flow in design.traffic.flows:
            switch = design.switch_of(flow.dst)
            incoming[switch] = incoming.get(switch, 0.0) + flow.bandwidth
        if not incoming:
            return min(design.topology.switches)
        return min(incoming, key=lambda switch: (-incoming[switch], switch))

    def _flow_weight(self, flow_name: str) -> float:
        flow = self.design.traffic.flow(flow_name)
        if self.design.switch_of(flow.dst) == self.hotspot:
            return self.factor
        return 1.0


class TransposeTrafficGenerator(_WeightedTrafficGenerator):
    """Load concentrated on transposed switch-index pairs.

    Switches are indexed in sorted-name order; a flow is *active* when
    ``idx(dst_switch) == N - 1 - idx(src_switch)`` (the matrix-transpose
    pairing projected onto the design's flows).  Inactive flows idle at
    ``off_factor`` of the uniform weight, so every design offers non-zero
    deterministic traffic even when no flow matches the pairing.
    """

    scenario = "transpose"

    def __init__(
        self,
        design: NocDesign,
        *,
        injection_scale: float = 1.0,
        tech: Optional[TechnologyParameters] = None,
        seed: int = 0,
        off_factor: float = 0.1,
    ):
        if off_factor < 0:
            raise SimulationError(
                f"transpose off_factor must be non-negative, got {off_factor}"
            )
        self.off_factor = off_factor
        self._switch_index = {
            name: i for i, name in enumerate(sorted(design.topology.switches))
        }
        super().__init__(design, injection_scale=injection_scale, tech=tech, seed=seed)

    def is_transposed(self, flow_name: str) -> bool:
        """True when the flow's endpoint switches form a transposed pair."""
        flow = self.design.traffic.flow(flow_name)
        src = self._switch_index[self.design.switch_of(flow.src)]
        dst = self._switch_index[self.design.switch_of(flow.dst)]
        return dst == len(self._switch_index) - 1 - src

    def _flow_weight(self, flow_name: str) -> float:
        return 1.0 if self.is_transposed(flow_name) else self.off_factor


class BurstyTrafficGenerator(FlowTrafficGenerator):
    """The paper's rates modulated by per-flow on/off bursts.

    Each flow carries a two-state Markov process: bursts last
    ``burst_length`` cycles on average, the long-run fraction of ON time is
    ``duty``, and while ON the flow injects at ``rate / duty`` so the
    long-run average rate matches the ``flows`` scenario.  A flow whose
    nominal rate exceeds ``duty`` cannot be burst-compressed (it would need
    more than one packet per ON cycle), so rates are capped at ``duty`` —
    the cap is applied to :attr:`flow_rates` itself, keeping the reported
    offered load equal to what the process actually injects.  State
    transitions and injection draws both come from the seeded instance
    RNG, in sorted-flow order, so the process is reproducible.
    """

    scenario = "bursty"

    def __init__(
        self,
        design: NocDesign,
        *,
        injection_scale: float = 1.0,
        tech: Optional[TechnologyParameters] = None,
        seed: int = 0,
        burst_length: float = 10.0,
        duty: float = 0.3,
    ):
        if burst_length < 1:
            raise SimulationError(
                f"mean burst length must be at least 1 cycle, got {burst_length}"
            )
        if not 0 < duty < 1:
            raise SimulationError(f"duty cycle must be in (0, 1), got {duty}")
        self.burst_length = burst_length
        self.duty = duty
        #: ON -> OFF transition probability (mean burst of burst_length cycles).
        self._p_off = 1.0 / burst_length
        #: OFF -> ON probability chosen so the stationary ON fraction is
        #: duty; capped at 1 (a high duty with short bursts would otherwise
        #: ask for a probability above 1 — the process then turns ON on the
        #: next cycle, the closest realisable behaviour).
        self._p_on = min(duty / (burst_length * (1.0 - duty)), 1.0)
        super().__init__(design, injection_scale=injection_scale, tech=tech, seed=seed)
        self._on: Dict[str, bool] = {
            name: self._rng.random() < duty for name in self._flow_order
        }

    def _compute_rates(self) -> Dict[str, float]:
        # Cap at the duty cycle: while ON the flow injects at rate / duty,
        # which must stay a probability.  Applying the cap here (not in
        # _injects) keeps offered_flits_per_cycle truthful about the load
        # the process can actually offer.
        return {
            name: min(rate, self.duty)
            for name, rate in super()._compute_rates().items()
        }

    def _injects(self, flow_name: str) -> bool:
        on = self._on[flow_name]
        if on:
            if self._rng.random() < self._p_off:
                on = False
        elif self._rng.random() < self._p_on:
            on = True
        self._on[flow_name] = on
        if not on:
            return False
        return self._rng.random() < self._rates[flow_name] / self.duty


# ----------------------------------------------------------------------
# registrations
# ----------------------------------------------------------------------

traffic_scenarios.register("flows", FlowTrafficGenerator)
traffic_scenarios.register("uniform", UniformTrafficGenerator)
traffic_scenarios.register("hotspot", HotspotTrafficGenerator)
traffic_scenarios.register("transpose", TransposeTrafficGenerator)
traffic_scenarios.register("bursty", BurstyTrafficGenerator)
traffic_scenarios.register("trace", TraceTrafficGenerator)
