"""Per-virtual-channel input buffers.

Each channel (link + VC) has one FIFO buffer at its downstream router.  The
buffer depth is what credit-based flow control tracks: a flit may only be
sent over a channel when the downstream FIFO has a free slot.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.errors import SimulationError
from repro.simulation.flit import Flit


class VirtualChannelBuffer:
    """Bounded FIFO of flits belonging to (at most) one packet at a time.

    Wormhole flow control interleaves packets only at the VC granularity, so
    a single VC buffer always holds a contiguous run of flits of the same
    packet; the class enforces that invariant to catch allocator bugs early.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise SimulationError(f"buffer capacity must be at least 1, got {capacity}")
        self.capacity = capacity
        self._fifo: Deque[Flit] = deque()
        self._current_packet_id: Optional[int] = None

    @property
    def occupancy(self) -> int:
        """Number of flits currently stored."""
        return len(self._fifo)

    @property
    def free_slots(self) -> int:
        """Number of flits that can still be accepted."""
        return self.capacity - len(self._fifo)

    @property
    def is_empty(self) -> bool:
        """True when the buffer holds no flit."""
        return not self._fifo

    def can_accept(self, flit: Flit) -> bool:
        """True when ``flit`` may be pushed (space and packet continuity)."""
        if self.free_slots <= 0:
            return False
        if self._current_packet_id is None:
            return True
        return flit.packet.packet_id == self._current_packet_id

    def push(self, flit: Flit) -> None:
        """Append a flit (raises when the buffer cannot accept it)."""
        if not self.can_accept(flit):
            raise SimulationError(
                "buffer overflow or packet interleaving: cannot accept "
                f"{flit!r} (occupancy {self.occupancy}/{self.capacity})"
            )
        self._fifo.append(flit)
        self._current_packet_id = flit.packet.packet_id

    def peek(self) -> Optional[Flit]:
        """The head-of-line flit without removing it (None when empty)."""
        return self._fifo[0] if self._fifo else None

    def pop(self) -> Flit:
        """Remove and return the head-of-line flit."""
        if not self._fifo:
            raise SimulationError("cannot pop from an empty buffer")
        flit = self._fifo.popleft()
        if not self._fifo and flit.is_tail:
            # The packet has completely left this buffer; a new packet may
            # now be accepted.
            self._current_packet_id = None
        elif not self._fifo and not flit.is_tail:
            # Buffer drained mid-packet: keep the reservation so another
            # packet cannot sneak in between body flits.
            pass
        return flit

    @property
    def current_packet_id(self) -> Optional[int]:
        """Packet currently reserving this buffer (may be set while empty)."""
        return self._current_packet_id

    def drain(self) -> int:
        """Discard every stored flit and the packet reservation.

        Used by fault recovery when the packet occupying this buffer is
        dropped mid-flight; returns the number of flits discarded.
        """
        dropped = len(self._fifo)
        self._fifo.clear()
        self._current_packet_id = None
        return dropped

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualChannelBuffer({self.occupancy}/{self.capacity})"
