"""Fault-injection event schedules for the wormhole simulation.

A :class:`FaultEvent` degrades (or repairs) the simulated topology at a
given cycle; an :class:`EventSchedule` is an ordered, deterministic,
JSON-round-trippable collection of them.  Schedules are *data*, not
behaviour: the :class:`~repro.simulation.recovery.RecoveryController`
consumes one schedule per run, and both simulation engines replay the same
schedule against the same design copy, so a faulted run stays exactly
reproducible (and cross-checkable) from ``(design, config)`` alone.

Four actions exist, mirroring the fault/power state the related SDN repos
attach to their topology objects:

* ``fail_link`` — remove one *directed* physical link (and every VC it
  carries) from the running topology;
* ``fail_router`` — remove every link entering or leaving a switch (the
  switch itself stays, so locally attached cores keep their NI);
* ``restore_link`` / ``restore_router`` — re-add links that a previous
  fail event removed, with the VC count and physical length they had at
  failure time.  Restoring something that was never failed (or is already
  back) is a no-op, so random schedules never have to be consistency
  checked.  Targets must exist in the healthy topology though:
  :meth:`EventSchedule.validate_targets` rejects a schedule naming an
  unknown link or switch before the run starts, and every resolution
  path that knows the topology (:meth:`EventSchedule.from_spec`, the
  :data:`repro.api.registry.fault_models` generators) applies it.

The seeded generator (:meth:`EventSchedule.random`) draws every choice
from one :class:`random.Random` over *sorted* link/switch lists, so a
schedule is a pure function of ``(topology, seed, parameters)`` — the
experiment API threads :attr:`repro.api.spec.RunSpec.seed` into it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple, Union

from repro.errors import SimulationError
from repro.model.channels import Link
from repro.model.topology import Topology

#: Valid event actions, in no particular order.
ACTIONS = ("fail_link", "fail_router", "restore_link", "restore_router")
_LINK_ACTIONS = ("fail_link", "restore_link")
_ROUTER_ACTIONS = ("fail_router", "restore_router")


@dataclass(frozen=True, order=True)
class FaultEvent:
    """One scheduled topology change.

    ``target`` is ``(src, dst, index)`` for link events and ``(switch,)``
    for router events.  Events order by ``(cycle, action, target)``, which
    is the order the recovery controller applies same-cycle batches in.
    """

    cycle: int
    action: str
    target: Tuple[Any, ...]

    def __post_init__(self):
        if not isinstance(self.cycle, int) or isinstance(self.cycle, bool) or self.cycle < 0:
            raise SimulationError(
                f"fault event cycle must be a non-negative integer, got {self.cycle!r}"
            )
        if self.action not in ACTIONS:
            raise SimulationError(
                f"unknown fault action {self.action!r}; valid: {', '.join(ACTIONS)}"
            )
        if self.action in _LINK_ACTIONS and len(self.target) != 3:
            raise SimulationError(
                f"{self.action} target must be (src, dst, index), got {self.target!r}"
            )
        if self.action in _ROUTER_ACTIONS and len(self.target) != 1:
            raise SimulationError(
                f"{self.action} target must be (switch,), got {self.target!r}"
            )

    @property
    def is_link_event(self) -> bool:
        """True for ``fail_link`` / ``restore_link``."""
        return self.action in _LINK_ACTIONS

    @property
    def link(self) -> Link:
        """The targeted link (link events only)."""
        src, dst, index = self.target
        return Link(src, dst, index)

    @property
    def switch(self) -> str:
        """The targeted switch (router events only)."""
        return self.target[0]

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON form: ``{"cycle", "action", "link": {...}}`` or ``"switch"``."""
        document: Dict[str, Any] = {"cycle": self.cycle, "action": self.action}
        if self.is_link_event:
            src, dst, index = self.target
            document["link"] = {"src": src, "dst": dst, "index": index}
        else:
            document["switch"] = self.target[0]
        return document

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultEvent":
        """Rebuild an event; malformed documents raise SimulationError."""
        if not isinstance(data, Mapping):
            raise SimulationError(
                f"fault event must be a mapping, got {type(data).__name__}"
            )
        action = data.get("action")
        if action in _LINK_ACTIONS:
            link = data.get("link")
            if not isinstance(link, Mapping) or "src" not in link or "dst" not in link:
                raise SimulationError(
                    f"{action} event needs a link mapping with src/dst, got {link!r}"
                )
            target: Tuple[Any, ...] = (link["src"], link["dst"], link.get("index", 0))
        elif action in _ROUTER_ACTIONS:
            if "switch" not in data:
                raise SimulationError(f"{action} event needs a 'switch' field")
            target = (data["switch"],)
        else:
            raise SimulationError(
                f"unknown fault action {action!r}; valid: {', '.join(ACTIONS)}"
            )
        return cls(cycle=data.get("cycle", 0), action=action, target=target)


class EventSchedule:
    """An ordered collection of fault events (chainable builder).

    ``events`` always comes back sorted by ``(cycle, action, target)``;
    iteration, length and JSON round-trips all use that canonical order, so
    two schedules built from the same events in any order are
    indistinguishable.
    """

    def __init__(self, events: Iterable[FaultEvent] = ()):
        self._events: List[FaultEvent] = list(events)

    # ------------------------------------------------------------------
    # builder methods (chainable)
    # ------------------------------------------------------------------
    def fail_link(self, cycle: int, src: str, dst: str, index: int = 0) -> "EventSchedule":
        """Schedule the directed link ``src->dst`` to fail at ``cycle``."""
        self._events.append(FaultEvent(cycle, "fail_link", (src, dst, index)))
        return self

    def restore_link(self, cycle: int, src: str, dst: str, index: int = 0) -> "EventSchedule":
        """Schedule a previously failed link to come back at ``cycle``."""
        self._events.append(FaultEvent(cycle, "restore_link", (src, dst, index)))
        return self

    def fail_router(self, cycle: int, switch: str) -> "EventSchedule":
        """Schedule every link touching ``switch`` to fail at ``cycle``."""
        self._events.append(FaultEvent(cycle, "fail_router", (switch,)))
        return self

    def restore_router(self, cycle: int, switch: str) -> "EventSchedule":
        """Schedule ``switch``'s previously failed links back at ``cycle``."""
        self._events.append(FaultEvent(cycle, "restore_router", (switch,)))
        return self

    # ------------------------------------------------------------------
    @property
    def events(self) -> Tuple[FaultEvent, ...]:
        """The events in canonical ``(cycle, action, target)`` order."""
        return tuple(sorted(self._events))

    def __len__(self) -> int:
        return len(self._events)

    def __bool__(self) -> bool:
        return bool(self._events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __eq__(self, other) -> bool:
        if not isinstance(other, EventSchedule):
            return NotImplemented
        return self.events == other.events

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EventSchedule({len(self._events)} event(s))"

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (events in canonical order)."""
        return {"events": [event.to_dict() for event in self.events]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EventSchedule":
        """Rebuild a schedule from its :meth:`to_dict` form."""
        if not isinstance(data, Mapping):
            raise SimulationError(
                f"event schedule must be a mapping, got {type(data).__name__}"
            )
        events = data.get("events", [])
        if not isinstance(events, (list, tuple)):
            raise SimulationError(f"'events' must be a list, got {events!r}")
        return cls(FaultEvent.from_dict(entry) for entry in events)

    # ------------------------------------------------------------------
    # target validation
    # ------------------------------------------------------------------
    def validate_targets(self, topology: Topology) -> "EventSchedule":
        """Check every event's target against ``topology`` up front.

        A link event must name a physical link of the (healthy) topology
        and a router event one of its switches; anything else raises a
        :class:`~repro.errors.SimulationError` naming the missing target
        *before* the run starts, instead of producing a schedule whose
        events silently no-op (or KeyError) mid-simulation.  Returns the
        schedule, so resolution helpers can chain on it.
        """
        for event in self.events:
            if event.is_link_event:
                if not topology.has_link(event.link):
                    src, dst, index = event.target
                    raise SimulationError(
                        f"fault event {event.action!r} at cycle {event.cycle} "
                        f"targets link {src}->{dst} (index {index}), which "
                        f"does not exist in topology {topology.name!r}"
                    )
            elif not topology.has_switch(event.switch):
                raise SimulationError(
                    f"fault event {event.action!r} at cycle {event.cycle} "
                    f"targets switch {event.switch!r}, which does not exist "
                    f"in topology {topology.name!r}"
                )
        return self

    # ------------------------------------------------------------------
    # seeded random generation
    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        topology: Topology,
        *,
        seed: int = 0,
        link_failures: int = 1,
        router_failures: int = 0,
        start_cycle: int = 100,
        end_cycle: int = 1000,
        restore_after: Optional[int] = None,
    ) -> "EventSchedule":
        """A deterministic random schedule for ``topology``.

        Picks ``link_failures`` distinct links and ``router_failures``
        distinct switches (clamped to what the topology has), each failing
        at a cycle drawn uniformly from ``[start_cycle, end_cycle)``; with
        ``restore_after`` set, every failure is matched by a restore that
        many cycles later.  All draws come from one ``random.Random(seed)``
        over sorted candidate lists, so the schedule is a pure function of
        the arguments.
        """
        if end_cycle <= start_cycle:
            raise SimulationError(
                f"end_cycle ({end_cycle}) must exceed start_cycle ({start_cycle})"
            )
        rng = random.Random(seed)
        schedule = cls()
        links = topology.links  # sorted
        for link in rng.sample(links, min(max(link_failures, 0), len(links))):
            cycle = rng.randrange(start_cycle, end_cycle)
            schedule.fail_link(cycle, link.src, link.dst, link.index)
            if restore_after is not None:
                schedule.restore_link(cycle + restore_after, link.src, link.dst, link.index)
        switches = sorted(topology.switches)
        for switch in rng.sample(switches, min(max(router_failures, 0), len(switches))):
            cycle = rng.randrange(start_cycle, end_cycle)
            schedule.fail_router(cycle, switch)
            if restore_after is not None:
                schedule.restore_router(cycle + restore_after, switch)
        return schedule.validate_targets(topology)

    # ------------------------------------------------------------------
    @classmethod
    def from_spec(
        cls,
        value: Union[None, "EventSchedule", Mapping[str, Any]],
        *,
        topology: Optional[Topology] = None,
        seed: int = 0,
    ) -> Optional["EventSchedule"]:
        """Resolve a spec-level fault-schedule value into a schedule.

        Accepts ``None`` (no faults), an :class:`EventSchedule` (passed
        through), an explicit ``{"events": [...]}`` document, or a
        ``{"random": {...}}`` request whose parameters are forwarded to
        :meth:`random` — the seed defaults to the surrounding spec's seed
        unless the request pins its own.
        """
        if value is None:
            return None
        if isinstance(value, EventSchedule):
            if topology is not None:
                value.validate_targets(topology)
            return value
        if not isinstance(value, Mapping):
            raise SimulationError(
                f"fault schedule must be a mapping or EventSchedule, got "
                f"{type(value).__name__}"
            )
        if "random" in value:
            if "events" in value:
                raise SimulationError(
                    "fault schedule cannot combine 'events' and 'random'"
                )
            params = value["random"]
            if not isinstance(params, Mapping):
                raise SimulationError(
                    f"'random' fault-schedule parameters must be a mapping, got {params!r}"
                )
            if topology is None:
                raise SimulationError(
                    "a random fault schedule needs a topology to draw from"
                )
            params = dict(params)
            params.setdefault("seed", seed)
            return cls.random(topology, **params)
        if "events" in value:
            schedule = cls.from_dict(value)
            if topology is not None:
                schedule.validate_targets(topology)
            return schedule
        raise SimulationError(
            "fault schedule mapping needs an 'events' list or a 'random' request"
        )
