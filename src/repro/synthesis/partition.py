"""Traffic-weighted core-to-switch partitioning.

Greedy agglomerative clustering: every core starts in its own cluster and
the pair of clusters exchanging the most bandwidth is merged, subject to a
balance cap, until the requested number of clusters (= switches) remains.
This mirrors the first phase of application-specific topology synthesis
flows: heavily communicating cores end up behind the same switch, so their
traffic never enters the switch-to-switch network.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.errors import SynthesisError
from repro.model.traffic import CommunicationGraph


def _pair_weight(
    traffic: CommunicationGraph, cluster_a: List[str], cluster_b: List[str]
) -> float:
    """Total bandwidth exchanged between two clusters (both directions)."""
    members_b = set(cluster_b)
    weight = 0.0
    for flow in traffic.flows:
        if flow.src in cluster_a and flow.dst in members_b:
            weight += flow.bandwidth
        elif flow.dst in cluster_a and flow.src in members_b:
            weight += flow.bandwidth
    return weight


def partition_cores(
    traffic: CommunicationGraph,
    n_switches: int,
    *,
    balance_slack: int = 1,
    switch_prefix: str = "sw",
) -> Dict[str, str]:
    """Partition the cores of ``traffic`` into ``n_switches`` groups.

    Returns the core-to-switch mapping with switches named
    ``{switch_prefix}0 .. {switch_prefix}{n_switches-1}``.

    Parameters
    ----------
    balance_slack:
        How many cores beyond the perfectly balanced size
        ``ceil(core_count / n_switches)`` a cluster may hold.  A small slack
        lets tightly-coupled groups stay together without letting a single
        switch absorb everything.

    Raises
    ------
    SynthesisError
        When ``n_switches`` is not in ``[1, core_count]``.
    """
    cores = traffic.cores
    if n_switches < 1:
        raise SynthesisError(f"switch count must be positive, got {n_switches}")
    if n_switches > len(cores):
        raise SynthesisError(
            f"cannot spread {len(cores)} cores over {n_switches} switches; "
            "switch count must not exceed the core count"
        )

    max_size = math.ceil(len(cores) / n_switches) + max(0, balance_slack)
    clusters: List[List[str]] = [[core] for core in sorted(cores)]

    # Cache pairwise weights between clusters; recomputed lazily after merges.
    while len(clusters) > n_switches:
        best_key: Optional[Tuple[float, int]] = None
        best_pair: Optional[Tuple[int, int]] = None
        for i in range(len(clusters)):
            for j in range(i + 1, len(clusters)):
                if len(clusters[i]) + len(clusters[j]) > max_size:
                    continue
                weight = _pair_weight(traffic, clusters[i], clusters[j])
                # Prefer the heaviest pair; among equals, the smallest merged
                # cluster (keeps the partition balanced and deterministic).
                key = (weight, -(len(clusters[i]) + len(clusters[j])))
                if best_key is None or key > best_key:
                    best_key = key
                    best_pair = (i, j)
        if best_pair is None:
            # Every merge would violate the balance cap: merge the two
            # smallest clusters regardless (still deterministic).
            order = sorted(range(len(clusters)), key=lambda k: (len(clusters[k]), clusters[k][0]))
            i, j = sorted(order[:2])
        else:
            i, j = best_pair
        clusters[i] = sorted(clusters[i] + clusters[j])
        del clusters[j]

    # Deterministic switch numbering: clusters ordered by their first core.
    clusters.sort(key=lambda cluster: cluster[0])
    core_map: Dict[str, str] = {}
    for index, cluster in enumerate(clusters):
        switch = f"{switch_prefix}{index}"
        for core in cluster:
            core_map[core] = switch
    return core_map


def cluster_sizes(core_map: Dict[str, str]) -> Dict[str, int]:
    """Number of cores attached to every switch in a core mapping."""
    sizes: Dict[str, int] = {}
    for switch in core_map.values():
        sizes[switch] = sizes.get(switch, 0) + 1
    return sizes


def internal_bandwidth_fraction(
    traffic: CommunicationGraph, core_map: Dict[str, str]
) -> float:
    """Fraction of total bandwidth that stays inside a single switch.

    A higher value means the partitioning absorbed more traffic locally; it
    is the quantity the greedy merge maximises and a useful quality metric
    for tests.
    """
    total = traffic.total_bandwidth
    if total == 0:
        return 0.0
    internal = sum(
        flow.bandwidth
        for flow in traffic.flows
        if core_map.get(flow.src) == core_map.get(flow.dst)
    )
    return internal / total
