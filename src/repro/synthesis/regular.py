"""Regular reference topologies: ring, 2D mesh, 2D torus.

The construction logic lives in the :data:`repro.api.registry
.topology_families` registry (:mod:`repro.synthesis.families`); this module
keeps the historical helper signatures as thin adapters.  The topology
helpers (``ring_topology``/``mesh_topology``/``torus_topology``) delegate
silently; the full design constructors (``ring_design``/``mesh_design``)
are deprecation shims over :func:`repro.synthesis.families.family_design`,
kept the same way :mod:`repro.analysis.sweeps` keeps the legacy figure
helpers.
"""

from __future__ import annotations

import warnings
from typing import Dict, Optional

from repro.api.registry import topology_families
from repro.model.design import NocDesign
from repro.model.topology import Topology
from repro.model.traffic import CommunicationGraph
from repro.synthesis.families import attach_cores_round_robin, family_design

__all__ = [
    "ring_topology",
    "mesh_topology",
    "torus_topology",
    "attach_cores_round_robin",
    "ring_design",
    "mesh_design",
]


def _family_topology(family: str, params: Dict, name: Optional[str]) -> Topology:
    topology = topology_families.get(family).build(params).topology
    if name is not None:
        topology.name = name
    return topology


def ring_topology(
    n_switches: int, *, bidirectional: bool = False, name: Optional[str] = None
) -> Topology:
    """A ring of ``n_switches`` switches ``sw0 .. sw{n-1}``.

    With ``bidirectional=False`` (the default) the ring is unidirectional
    (sw0 -> sw1 -> ... -> sw0), the classic deadlock-prone configuration.
    """
    return _family_topology(
        "ring", {"n_switches": n_switches, "bidirectional": bidirectional}, name
    )


def mesh_topology(rows: int, cols: int, *, name: Optional[str] = None) -> Topology:
    """A ``rows x cols`` 2D mesh with switches named ``sw_x_y``."""
    return _family_topology("mesh", {"rows": rows, "cols": cols}, name)


def torus_topology(rows: int, cols: int, *, name: Optional[str] = None) -> Topology:
    """A ``rows x cols`` 2D torus (mesh plus wrap-around links)."""
    return _family_topology("torus", {"rows": rows, "cols": cols}, name)


def _deprecated(old: str, family: str) -> None:
    warnings.warn(
        f"repro.synthesis.regular.{old} is deprecated; use "
        f"repro.synthesis.families.family_design({family!r}, ...)",
        DeprecationWarning,
        stacklevel=3,
    )


def ring_design(
    n_switches: int,
    traffic: Optional[CommunicationGraph] = None,
    *,
    bidirectional: bool = False,
    name: Optional[str] = None,
) -> NocDesign:
    """Deprecated shim over ``family_design("ring", ...)``.

    When no traffic is given, one core per switch is created and every core
    sends to the core two switches downstream — dense enough that a
    unidirectional ring always exhibits a CDG cycle.
    """
    _deprecated("ring_design", "ring")
    name = name or f"ring{n_switches}"
    if traffic is None:
        traffic = default_ring_traffic(n_switches, name=f"{name}_traffic")
    return family_design(
        "ring",
        traffic,
        {"n_switches": n_switches, "bidirectional": bidirectional},
        name=name,
    )


def mesh_design(
    rows: int,
    cols: int,
    traffic: Optional[CommunicationGraph] = None,
    *,
    routing: str = "xy",
    name: Optional[str] = None,
) -> NocDesign:
    """Deprecated shim over ``family_design("mesh", ...)``.

    When no traffic is given, one core per switch is created and every core
    sends to the core at the transposed mesh position (a standard synthetic
    pattern that exercises both dimensions), attached at its own switch.
    """
    _deprecated("mesh_design", "mesh")
    name = name or f"mesh{rows}x{cols}"
    core_map = None
    if traffic is None:
        traffic = default_mesh_traffic(rows, cols, name=f"{name}_traffic")
        core_map = {
            f"core_{x}_{y}": f"sw_{x}_{y}" for x in range(cols) for y in range(rows)
        }
    return family_design(
        "mesh",
        traffic,
        {"rows": rows, "cols": cols, "routing": routing},
        name=name,
        core_map=core_map,
    )


def default_ring_traffic(n_switches: int, *, name: Optional[str] = None) -> CommunicationGraph:
    """One core per switch, each sending to the core two hops downstream."""
    traffic = CommunicationGraph(name or f"ring{n_switches}_traffic")
    for i in range(n_switches):
        traffic.add_core(f"core{i}")
    for i in range(n_switches):
        dst = (i + 2) % n_switches
        traffic.add_flow(f"f{i}", f"core{i}", f"core{dst}", bandwidth=100.0)
    return traffic


def default_mesh_traffic(
    rows: int, cols: int, *, name: Optional[str] = None
) -> CommunicationGraph:
    """One core per mesh position, each sending to its transposed position."""
    traffic = CommunicationGraph(name or f"mesh{rows}x{cols}_traffic")
    for x in range(cols):
        for y in range(rows):
            traffic.add_core(f"core_{x}_{y}")
    flow_id = 0
    for x in range(cols):
        for y in range(rows):
            tx, ty = y % cols, x % rows
            if (x, y) == (tx, ty):
                continue
            traffic.add_flow(
                f"f{flow_id}", f"core_{x}_{y}", f"core_{tx}_{ty}", bandwidth=50.0
            )
            flow_id += 1
    return traffic
