"""Regular reference topologies: ring, 2D mesh, 2D torus.

The paper's method accepts any topology; regular ones are used here for
documentation examples, for tests with known CDG structure (a unidirectional
ring with all-to-neighbour traffic always has a cycle; an XY-routed mesh
never does) and as comparison inputs for the benchmarks.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import SynthesisError
from repro.model.design import NocDesign
from repro.model.topology import Topology
from repro.model.traffic import CommunicationGraph
from repro.model.validation import validate_design
from repro.routing.shortest_path import compute_routes
from repro.routing.turns import compute_xy_routes


def ring_topology(n_switches: int, *, bidirectional: bool = False, name: Optional[str] = None) -> Topology:
    """A ring of ``n_switches`` switches ``sw0 .. sw{n-1}``.

    With ``bidirectional=False`` (the default) the ring is unidirectional
    (sw0 -> sw1 -> ... -> sw0), the classic deadlock-prone configuration.
    """
    if n_switches < 3:
        raise SynthesisError(f"a ring needs at least 3 switches, got {n_switches}")
    topology = Topology(name or f"ring{n_switches}")
    switches = [f"sw{i}" for i in range(n_switches)]
    topology.add_switches(switches)
    for i in range(n_switches):
        a = switches[i]
        b = switches[(i + 1) % n_switches]
        if bidirectional:
            topology.add_bidirectional_link(a, b)
        else:
            topology.add_link(a, b)
    return topology


def mesh_topology(rows: int, cols: int, *, name: Optional[str] = None) -> Topology:
    """A ``rows x cols`` 2D mesh with switches named ``sw_x_y``."""
    if rows < 1 or cols < 1:
        raise SynthesisError(f"mesh dimensions must be positive, got {rows}x{cols}")
    topology = Topology(name or f"mesh{rows}x{cols}")
    for x in range(cols):
        for y in range(rows):
            topology.add_switch(f"sw_{x}_{y}")
    for x in range(cols):
        for y in range(rows):
            if x + 1 < cols:
                topology.add_bidirectional_link(f"sw_{x}_{y}", f"sw_{x + 1}_{y}")
            if y + 1 < rows:
                topology.add_bidirectional_link(f"sw_{x}_{y}", f"sw_{x}_{y + 1}")
    return topology


def torus_topology(rows: int, cols: int, *, name: Optional[str] = None) -> Topology:
    """A ``rows x cols`` 2D torus (mesh plus wrap-around links)."""
    if rows < 3 or cols < 3:
        raise SynthesisError(f"a torus needs at least 3x3 switches, got {rows}x{cols}")
    topology = mesh_topology(rows, cols, name=name or f"torus{rows}x{cols}")
    for y in range(rows):
        topology.add_bidirectional_link(f"sw_{cols - 1}_{y}", f"sw_0_{y}")
    for x in range(cols):
        topology.add_bidirectional_link(f"sw_{x}_{rows - 1}", f"sw_{x}_0")
    return topology


def attach_cores_round_robin(topology: Topology, traffic: CommunicationGraph) -> Dict[str, str]:
    """Attach cores to switches in round-robin order (deterministic)."""
    switches = topology.switches
    core_map: Dict[str, str] = {}
    for index, core in enumerate(sorted(traffic.cores)):
        core_map[core] = switches[index % len(switches)]
    return core_map


def ring_design(
    n_switches: int,
    traffic: Optional[CommunicationGraph] = None,
    *,
    bidirectional: bool = False,
    name: Optional[str] = None,
) -> NocDesign:
    """A complete ring design with shortest-path routes.

    When no traffic is given, one core per switch is created and every core
    sends to the core two switches downstream — dense enough that a
    unidirectional ring always exhibits a CDG cycle.
    """
    topology = ring_topology(n_switches, bidirectional=bidirectional, name=name)
    if traffic is None:
        traffic = CommunicationGraph(f"{topology.name}_traffic")
        for i in range(n_switches):
            traffic.add_core(f"core{i}")
        for i in range(n_switches):
            dst = (i + 2) % n_switches
            traffic.add_flow(f"f{i}", f"core{i}", f"core{dst}", bandwidth=100.0)
    design = NocDesign(
        name=name or topology.name,
        topology=topology,
        traffic=traffic.copy(),
        core_map=attach_cores_round_robin(topology, traffic),
    )
    compute_routes(design, weight_mode="hops")
    validate_design(design)
    return design


def mesh_design(
    rows: int,
    cols: int,
    traffic: Optional[CommunicationGraph] = None,
    *,
    routing: str = "xy",
    name: Optional[str] = None,
) -> NocDesign:
    """A complete mesh design with XY (default) or shortest-path routes.

    When no traffic is given, one core per switch is created and every core
    sends to the core at the transposed mesh position (a standard synthetic
    pattern that exercises both dimensions).
    """
    topology = mesh_topology(rows, cols, name=name)
    if traffic is None:
        traffic = CommunicationGraph(f"{topology.name}_traffic")
        for x in range(cols):
            for y in range(rows):
                traffic.add_core(f"core_{x}_{y}")
        flow_id = 0
        for x in range(cols):
            for y in range(rows):
                tx, ty = y % cols, x % rows
                if (x, y) == (tx, ty):
                    continue
                traffic.add_flow(
                    f"f{flow_id}", f"core_{x}_{y}", f"core_{tx}_{ty}", bandwidth=50.0
                )
                flow_id += 1
        core_map = {f"core_{x}_{y}": f"sw_{x}_{y}" for x in range(cols) for y in range(rows)}
    else:
        core_map = attach_cores_round_robin(topology, traffic)
    design = NocDesign(
        name=name or topology.name,
        topology=topology,
        traffic=traffic.copy(),
        core_map=core_map,
    )
    if routing == "xy":
        compute_xy_routes(design)
    else:
        compute_routes(design, weight_mode="hops")
    validate_design(design)
    return design
