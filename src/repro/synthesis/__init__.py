"""Topology generation substrate.

The paper generates its input topologies with an external
application-specific synthesis tool (Murali et al., ICCAD 2006) and states
that "the input topologies could be either manually designed or obtained
using any existing synthesis tools".  This subpackage provides that
substrate:

* :mod:`repro.synthesis.partition` — traffic-weighted core-to-switch
  clustering;
* :mod:`repro.synthesis.builder` — application-specific switch network
  construction plus deterministic shortest-path routing;
* :mod:`repro.synthesis.regular` — regular reference topologies (ring, mesh,
  torus);
* :mod:`repro.synthesis.floorplan` — a simple grid floorplanner providing
  link lengths for the power model.
"""

from repro.synthesis.builder import SynthesisConfig, synthesize_design
from repro.synthesis.partition import partition_cores
from repro.synthesis.regular import (
    mesh_design,
    mesh_topology,
    ring_design,
    ring_topology,
    torus_topology,
)

__all__ = [
    "partition_cores",
    "SynthesisConfig",
    "synthesize_design",
    "ring_topology",
    "ring_design",
    "mesh_topology",
    "mesh_design",
    "torus_topology",
]
