"""Parameterized topology families: datacenter-scale generators.

The paper's six SoC benchmarks top out at ~35 switches; stress-testing the
int-indexed subsystems (indexed routing, the ``context`` removal engine,
the compiled simulator) needs structured inputs 10-30x that size.  This
module provides them as entries of the :data:`repro.api.registry
.topology_families` registry — the same decorator/lazy-provider pattern as
the engines — so a :class:`~repro.api.spec.RunSpec`
(``topology_family`` + ``family_params``), the CLI and the library all
select one by name:

* ``ring`` — unidirectional (default) or bidirectional ring;
* ``mesh`` — 2D mesh, XY-routed by default (always deadlock free);
* ``torus`` — 2D torus (mesh plus wrap-around links);
* ``fat_tree`` — the k-ary fat tree of datacenter fabrics: ``k`` pods of
  ``k/2`` edge + ``k/2`` aggregation switches under ``(k/2)^2`` core
  switches (``5k^2/4`` switches total), up*/down*-routed by default;
* ``clos`` / ``vl2`` — a two-level leaf-spine Clos (the VL2 fabric's
  switching skeleton): every leaf connects to every spine,
  up*/down*-routed by default;
* ``dragonfly`` — fully connected router groups joined by a deterministic
  round-robin assignment of global links.

Every family builds a :class:`FamilyInstance`: the :class:`Topology` plus a
deterministic core-attachment order (``attach_points``), so the same
``(family, params, traffic)`` triple always produces byte-identical
designs.  Parameter validation raises :class:`~repro.errors.SynthesisError`
naming the family and the offending parameters — infeasible requests (odd
fat-tree arity, a switch count that does not match the family's closed
form) must never surface as bare ``KeyError``/``TypeError``.

:func:`build_family_design` is the full pipeline (build, attach, route,
validate); :func:`family_design` is the convenience constructor the
regular-topology shims in :mod:`repro.synthesis.regular` delegate to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.api.registry import topology_families
from repro.errors import SynthesisError
from repro.model.design import NocDesign
from repro.model.topology import Topology
from repro.model.traffic import CommunicationGraph
from repro.model.validation import validate_design
from repro.routing.shortest_path import compute_routes
from repro.routing.turns import compute_updown_routes, compute_xy_routes

#: Routing modes a family instance may request (``family_params`` may
#: override a family's default with ``{"routing": ...}``).
FAMILY_ROUTING_SHORTEST = "shortest"
FAMILY_ROUTING_UPDOWN = "updown"
FAMILY_ROUTING_XY = "xy"
_FAMILY_ROUTINGS = (
    FAMILY_ROUTING_SHORTEST,
    FAMILY_ROUTING_UPDOWN,
    FAMILY_ROUTING_XY,
)


def attach_cores_round_robin(topology: Topology, traffic: CommunicationGraph) -> Dict[str, str]:
    """Attach cores to switches in round-robin order (deterministic).

    Cores are taken in sorted-name order, switches in topology insertion
    order — the historical behaviour of ``repro.synthesis.regular``, now
    shared by every topology family.
    """
    switches = topology.switches
    core_map: Dict[str, str] = {}
    for index, core in enumerate(sorted(traffic.cores)):
        core_map[core] = switches[index % len(switches)]
    return core_map


@dataclass
class FamilyInstance:
    """One built member of a topology family.

    Attributes
    ----------
    family:
        Registry name of the generating family.
    params:
        The normalized build parameters (validated, defaults filled in).
    topology:
        The freshly built switch network (owned by the caller).
    attach_points:
        Switch names in deterministic core-attachment order; cores are
        assigned round-robin over this tuple (sorted core order), so the
        attachment map is a pure function of ``(family, params, traffic)``.
    routing:
        Resolved routing mode (``"shortest"``, ``"updown"`` or ``"xy"``).
    updown_root:
        Root switch of the up*/down* BFS orientation (``None`` lets the
        router pick its default).
    max_cores_per_attach_point:
        Host capacity of one attach point (``None`` = unbounded); families
        with an explicit host count (dragonfly) bound the attachment here.
    """

    family: str
    params: Dict[str, Any]
    topology: Topology
    attach_points: Tuple[str, ...]
    routing: str = FAMILY_ROUTING_SHORTEST
    updown_root: Optional[str] = None
    max_cores_per_attach_point: Optional[int] = None

    def attach_cores(self, traffic: CommunicationGraph) -> Dict[str, str]:
        """Round-robin cores (sorted) over :attr:`attach_points`."""
        cores = sorted(traffic.cores)
        points = self.attach_points
        if self.max_cores_per_attach_point is not None:
            capacity = len(points) * self.max_cores_per_attach_point
            if len(cores) > capacity:
                raise SynthesisError(
                    f"{_describe(self.family, self.params)} attaches at most "
                    f"{capacity} cores ({len(points)} attach points x "
                    f"{self.max_cores_per_attach_point} hosts), "
                    f"but traffic {traffic.name!r} has {len(cores)}"
                )
        return {core: points[index % len(points)] for index, core in enumerate(cores)}


def _describe(family: str, params: Mapping[str, Any]) -> str:
    """``family(k=8, ...)`` — the error-message prefix naming the request."""
    rendered = ", ".join(f"{key}={params[key]!r}" for key in sorted(params))
    return f"topology family {family!r} ({rendered})" if rendered else f"topology family {family!r}"


class TopologyFamily:
    """Base class of the family generators (subclass and register instances).

    Subclasses declare their integer parameters (``int_params`` with per-
    parameter minimums) and optional boolean flags (``flag_params`` with
    defaults), implement the closed-form :meth:`_size` and the topology
    construction :meth:`_build`, and may refine :meth:`_check` for
    constraints beyond simple minimums (e.g. fat-tree arity parity).
    """

    #: Registry name (set per instance so clones like ``vl2`` keep their own).
    name = "family"
    #: Routing mode used when ``family_params`` does not override it.
    default_routing = FAMILY_ROUTING_SHORTEST
    #: ``((param, minimum), ...)`` — required integer parameters, in order.
    int_params: Tuple[Tuple[str, int], ...] = ()
    #: ``((param, default), ...)`` — integer parameters that may be omitted.
    int_defaults: Tuple[Tuple[str, int], ...] = ()
    #: ``((flag, default), ...)`` — optional boolean parameters.
    flag_params: Tuple[Tuple[str, bool], ...] = ()

    def __init__(self, name: str):
        self.name = name

    # ------------------------------------------------------------------
    def describe(self, params: Mapping[str, Any]) -> str:
        return _describe(self.name, dict(params))

    def normalized_params(self, params: Optional[Mapping[str, Any]]) -> Dict[str, Any]:
        """Validate and normalize ``params`` (SynthesisError on any problem)."""
        given = dict(params or {})
        routing = given.pop("routing", self.default_routing)
        known = [key for key, _ in self.int_params] + [key for key, _ in self.flag_params]
        unknown = sorted(set(given) - set(known))
        if unknown:
            raise SynthesisError(
                f"{self.describe(given)}: unknown parameter(s) "
                f"{', '.join(unknown)}; valid: {', '.join(known + ['routing'])}"
            )
        defaults = dict(self.int_defaults)
        normalized: Dict[str, Any] = {}
        for key, minimum in self.int_params:
            if key not in given:
                if key in defaults:
                    given[key] = defaults[key]
                else:
                    raise SynthesisError(
                        f"{self.describe(given)}: missing required parameter {key!r}"
                    )
            value = given[key]
            if not isinstance(value, int) or isinstance(value, bool):
                raise SynthesisError(
                    f"{self.describe(given)}: {key} must be an integer, got {value!r}"
                )
            if value < minimum:
                raise SynthesisError(
                    f"{self.describe(given)}: {key} must be at least {minimum}, got {value}"
                )
            normalized[key] = value
        for key, default in self.flag_params:
            value = given.get(key, default)
            if not isinstance(value, bool):
                raise SynthesisError(
                    f"{self.describe(given)}: {key} must be a boolean, got {value!r}"
                )
            normalized[key] = value
        if routing not in _FAMILY_ROUTINGS:
            raise SynthesisError(
                f"{self.describe(given)}: unknown routing mode {routing!r}; "
                f"valid: {', '.join(_FAMILY_ROUTINGS)}"
            )
        if routing == FAMILY_ROUTING_XY and not getattr(self, "supports_xy", False):
            raise SynthesisError(
                f"{self.describe(given)}: XY routing needs coordinate-named "
                "switches (mesh/torus families only)"
            )
        normalized["routing"] = routing
        self._check(normalized)
        return normalized

    def _check(self, params: Dict[str, Any]) -> None:
        """Family-specific feasibility constraints (hook; default: none)."""

    # ------------------------------------------------------------------
    def size(self, params: Optional[Mapping[str, Any]] = None) -> int:
        """Closed-form switch count of the member ``params`` describes."""
        return self._size(self.normalized_params(params))

    def build(self, params: Optional[Mapping[str, Any]] = None) -> FamilyInstance:
        """Build a fresh :class:`FamilyInstance` (topology + attachment)."""
        normalized = self.normalized_params(params)
        topology = self._build(normalized)
        return FamilyInstance(
            family=self.name,
            params=normalized,
            topology=topology,
            attach_points=self._attach_points(normalized, topology),
            routing=normalized["routing"],
            updown_root=self._updown_root(normalized),
            max_cores_per_attach_point=self._host_capacity(normalized),
        )

    # ------------------------------------------------------------------
    def _size(self, params: Dict[str, Any]) -> int:
        raise NotImplementedError

    def _build(self, params: Dict[str, Any]) -> Topology:
        raise NotImplementedError

    def _attach_points(self, params: Dict[str, Any], topology: Topology) -> Tuple[str, ...]:
        """Core-attachment order; default: every switch, insertion order."""
        return tuple(topology.switches)

    def _updown_root(self, params: Dict[str, Any]) -> Optional[str]:
        return None

    def _host_capacity(self, params: Dict[str, Any]) -> Optional[int]:
        return None


# ----------------------------------------------------------------------
# The built-in families
# ----------------------------------------------------------------------

class RingFamily(TopologyFamily):
    """A ring of ``n_switches`` switches ``sw0 .. sw{n-1}``.

    ``bidirectional=False`` (the default) gives the classic deadlock-prone
    unidirectional configuration.
    """

    default_routing = FAMILY_ROUTING_SHORTEST
    int_params = (("n_switches", 3),)
    flag_params = (("bidirectional", False),)

    def _size(self, params: Dict[str, Any]) -> int:
        return params["n_switches"]

    def _build(self, params: Dict[str, Any]) -> Topology:
        n_switches = params["n_switches"]
        topology = Topology(f"ring{n_switches}")
        switches = [f"sw{i}" for i in range(n_switches)]
        topology.add_switches(switches)
        for i in range(n_switches):
            a = switches[i]
            b = switches[(i + 1) % n_switches]
            if params["bidirectional"]:
                topology.add_bidirectional_link(a, b)
            else:
                topology.add_link(a, b)
        return topology


class MeshFamily(TopologyFamily):
    """A ``rows x cols`` 2D mesh with switches named ``sw_x_y``."""

    default_routing = FAMILY_ROUTING_XY
    supports_xy = True
    int_params = (("rows", 1), ("cols", 1))

    def _size(self, params: Dict[str, Any]) -> int:
        return params["rows"] * params["cols"]

    def _build(self, params: Dict[str, Any]) -> Topology:
        rows, cols = params["rows"], params["cols"]
        topology = Topology(f"mesh{rows}x{cols}")
        for x in range(cols):
            for y in range(rows):
                topology.add_switch(f"sw_{x}_{y}")
        for x in range(cols):
            for y in range(rows):
                if x + 1 < cols:
                    topology.add_bidirectional_link(f"sw_{x}_{y}", f"sw_{x + 1}_{y}")
                if y + 1 < rows:
                    topology.add_bidirectional_link(f"sw_{x}_{y}", f"sw_{x}_{y + 1}")
        return topology


class TorusFamily(MeshFamily):
    """A ``rows x cols`` 2D torus (mesh plus wrap-around links).

    Wrap-around links close a cycle in every dimension, so unlike the mesh
    the torus defaults to shortest-path routing and is a natural deadlock
    stressor at scale.
    """

    default_routing = FAMILY_ROUTING_SHORTEST
    int_params = (("rows", 3), ("cols", 3))

    def _build(self, params: Dict[str, Any]) -> Topology:
        rows, cols = params["rows"], params["cols"]
        topology = super()._build(params)
        topology.name = f"torus{rows}x{cols}"
        for y in range(rows):
            topology.add_bidirectional_link(f"sw_{cols - 1}_{y}", f"sw_0_{y}")
        for x in range(cols):
            topology.add_bidirectional_link(f"sw_{x}_{rows - 1}", f"sw_{x}_0")
        return topology


class FatTreeFamily(TopologyFamily):
    """The k-ary fat tree: ``k`` pods under ``(k/2)^2`` core switches.

    Pod ``p`` has ``k/2`` edge switches (``pod{p}_edge{e}``, the core
    attach points) fully connected to ``k/2`` aggregation switches
    (``pod{p}_agg{a}``); aggregation switch ``a`` of every pod uplinks to
    core group ``a`` (``core{a*k/2} .. core{(a+1)*k/2 - 1}``).  Closed
    form: ``5k^2/4`` switches.  Default routing is up*/down* — the
    turn-restriction that makes multi-rooted trees deadlock free.
    """

    default_routing = FAMILY_ROUTING_UPDOWN
    int_params = (("k", 2),)

    def _check(self, params: Dict[str, Any]) -> None:
        if params["k"] % 2 != 0:
            raise SynthesisError(
                f"{self.describe(params)}: fat-tree arity k must be even "
                f"(k/2 edge and aggregation switches per pod), got k={params['k']}"
            )

    def _size(self, params: Dict[str, Any]) -> int:
        k = params["k"]
        return k * k + (k // 2) ** 2

    def _build(self, params: Dict[str, Any]) -> Topology:
        k = params["k"]
        half = k // 2
        topology = Topology(f"fat_tree_k{k}")
        topology.add_switches([f"core{i}" for i in range(half * half)])
        for p in range(k):
            topology.add_switches([f"pod{p}_agg{a}" for a in range(half)])
            topology.add_switches([f"pod{p}_edge{e}" for e in range(half)])
        for p in range(k):
            for e in range(half):
                for a in range(half):
                    topology.add_bidirectional_link(f"pod{p}_edge{e}", f"pod{p}_agg{a}")
            for a in range(half):
                for c in range(half):
                    topology.add_bidirectional_link(f"pod{p}_agg{a}", f"core{a * half + c}")
        return topology

    def _attach_points(self, params: Dict[str, Any], topology: Topology) -> Tuple[str, ...]:
        k = params["k"]
        half = k // 2
        return tuple(f"pod{p}_edge{e}" for p in range(k) for e in range(half))

    def _updown_root(self, params: Dict[str, Any]) -> Optional[str]:
        return "core0"


class ClosFamily(TopologyFamily):
    """A two-level leaf-spine Clos (the VL2 fabric's switching skeleton).

    Every leaf switch (``leaf{j}``, the core attach points) connects to
    every spine switch (``spine{i}``).  ``spines + leaves`` switches total;
    default routing is up*/down* rooted at ``spine0``.
    """

    default_routing = FAMILY_ROUTING_UPDOWN
    int_params = (("spines", 1), ("leaves", 2))

    def _size(self, params: Dict[str, Any]) -> int:
        return params["spines"] + params["leaves"]

    def _build(self, params: Dict[str, Any]) -> Topology:
        spines, leaves = params["spines"], params["leaves"]
        topology = Topology(f"{self.name}{spines}x{leaves}")
        topology.add_switches([f"spine{i}" for i in range(spines)])
        topology.add_switches([f"leaf{j}" for j in range(leaves)])
        for j in range(leaves):
            for i in range(spines):
                topology.add_bidirectional_link(f"leaf{j}", f"spine{i}")
        return topology

    def _attach_points(self, params: Dict[str, Any], topology: Topology) -> Tuple[str, ...]:
        return tuple(f"leaf{j}" for j in range(params["leaves"]))

    def _updown_root(self, params: Dict[str, Any]) -> Optional[str]:
        return "spine0"


class DragonflyFamily(TopologyFamily):
    """Fully connected router groups joined by round-robin global links.

    ``groups`` groups of ``routers`` routers (``g{g}_r{r}``); routers of a
    group are fully connected, and each group pair ``(gi, gj)`` gets one
    bidirectional global link whose endpoints rotate deterministically over
    the group's routers.  ``hosts`` bounds the cores attachable per router.
    """

    default_routing = FAMILY_ROUTING_SHORTEST
    int_params = (("groups", 2), ("routers", 2), ("hosts", 1))
    #: Four hosts per router when unspecified, the literature's usual a=2p.
    int_defaults = (("hosts", 4),)

    def _size(self, params: Dict[str, Any]) -> int:
        return params["groups"] * params["routers"]

    def _build(self, params: Dict[str, Any]) -> Topology:
        groups, routers = params["groups"], params["routers"]
        topology = Topology(f"dragonfly{groups}x{routers}x{params['hosts']}")
        for g in range(groups):
            topology.add_switches([f"g{g}_r{r}" for r in range(routers)])
        for g in range(groups):
            for a in range(routers):
                for b in range(a + 1, routers):
                    topology.add_bidirectional_link(f"g{g}_r{a}", f"g{g}_r{b}")
        for gi in range(groups):
            for gj in range(gi + 1, groups):
                topology.add_bidirectional_link(
                    f"g{gi}_r{(gj - 1) % routers}", f"g{gj}_r{gi % routers}"
                )
        return topology

    def _host_capacity(self, params: Dict[str, Any]) -> Optional[int]:
        return params["hosts"]


# ----------------------------------------------------------------------
# Registrations (this module is the registry's lazy provider).
# ----------------------------------------------------------------------

topology_families.register("ring", RingFamily("ring"))
topology_families.register("mesh", MeshFamily("mesh"))
topology_families.register("torus", TorusFamily("torus"))
topology_families.register("fat_tree", FatTreeFamily("fat_tree"))
topology_families.register("clos", ClosFamily("clos"))
#: ``vl2`` is the datacenter-literature name of the same leaf-spine Clos;
#: a separate instance so designs built through either name record it.
topology_families.register("vl2", ClosFamily("vl2"))
topology_families.register("dragonfly", DragonflyFamily("dragonfly"))


# ----------------------------------------------------------------------
# Design construction on top of the registry
# ----------------------------------------------------------------------

def family_size(family: str, params: Optional[Mapping[str, Any]] = None) -> int:
    """Closed-form switch count of ``family`` at ``params``."""
    return topology_families.get(family).size(params)


def build_family_design(
    traffic: CommunicationGraph,
    *,
    family: str,
    params: Optional[Mapping[str, Any]] = None,
    n_switches: Optional[int] = None,
    routing_engine: str = "indexed",
    name: Optional[str] = None,
    core_map: Optional[Mapping[str, str]] = None,
) -> NocDesign:
    """Build, attach, route and validate one family member for ``traffic``.

    ``n_switches`` (when given, e.g. from :attr:`RunSpec.switch_count`)
    must equal the family's closed-form size — a mismatch raises
    :class:`SynthesisError` naming the family and parameters instead of
    silently building a different topology than the spec fingerprints.
    ``core_map`` overrides the family's round-robin attachment (used by the
    legacy ``mesh_design`` shim's identity placement).
    """
    entry = topology_families.get(family)
    instance = entry.build(params)
    built = instance.topology.switch_count
    if n_switches is not None and n_switches != built:
        raise SynthesisError(
            f"{entry.describe(instance.params)} generates {built} switches, "
            f"but the synthesis config asks for {n_switches}; "
            f"set switch_count to the family's closed-form size"
        )
    from repro.perf.design_context import DesignContext  # local: keep import light

    design_name = name or f"{traffic.name}_{instance.topology.name}"
    topology = instance.topology
    topology.name = design_name
    design = NocDesign(
        name=design_name,
        topology=topology,
        traffic=traffic.copy(),
        core_map=dict(core_map) if core_map is not None else instance.attach_cores(traffic),
    )
    DesignContext.of(design)
    if instance.routing == FAMILY_ROUTING_UPDOWN:
        compute_updown_routes(design, root=instance.updown_root)
    elif instance.routing == FAMILY_ROUTING_XY:
        compute_xy_routes(design)
    else:
        compute_routes(design, weight_mode="hops", engine=routing_engine)
    validate_design(design)
    return design


def family_design(
    family: str,
    traffic: CommunicationGraph,
    params: Optional[Mapping[str, Any]] = None,
    *,
    name: Optional[str] = None,
    routing_engine: str = "indexed",
    core_map: Optional[Mapping[str, str]] = None,
) -> NocDesign:
    """Convenience constructor: one family member routed for ``traffic``."""
    return build_family_design(
        traffic,
        family=family,
        params=params,
        routing_engine=routing_engine,
        name=name,
        core_map=core_map,
    )
