"""Application-specific switch network construction.

Stand-in for the external topology-synthesis tool the paper uses to generate
its input designs.  The flow is the standard one for custom NoC synthesis:

1. cluster cores onto switches weighted by their mutual bandwidth
   (:mod:`repro.synthesis.partition`);
2. connect the switches with a traffic-weighted spanning backbone so every
   flow has a path;
3. spend an extra-link budget on direct links between the switch pairs that
   exchange the most traffic, subject to a switch-degree budget (custom
   NoCs keep switch radix small because crossbar area grows quadratically);
4. route every flow on a congestion-aware deterministic shortest path.

Step 3 is what makes the resulting designs interesting for deadlock
analysis: shortcut links superimposed on the backbone create cyclic channel
dependencies for sufficiently dense traffic, which is exactly the situation
the paper's removal algorithm targets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Optional, Tuple

from repro.api.registry import routing_engines, synthesis_backends, topology_families
from repro.errors import SynthesisError
from repro.model.design import NocDesign
from repro.model.topology import Topology
from repro.model.traffic import CommunicationGraph
from repro.model.validation import validate_design
from repro.routing.shortest_path import WEIGHT_CONGESTION, compute_routes
from repro.routing.turns import compute_updown_routes
from repro.synthesis.floorplan import assign_link_lengths
from repro.synthesis.partition import partition_cores

ROUTING_SHORTEST = "shortest"
ROUTING_UPDOWN = "updown"
_ROUTINGS = (ROUTING_SHORTEST, ROUTING_UPDOWN)


@dataclass
class SynthesisConfig:
    """Knobs of the topology synthesizer.

    Attributes
    ----------
    n_switches:
        Number of switches of the generated topology.
    extra_link_fraction:
        Size of the shortcut-link budget as a fraction of the switch count
        (0.0 gives a pure spanning backbone, larger values give denser,
        more cycle-prone topologies).
    max_switch_degree:
        Maximum number of distinct neighbour switches a switch may have
        after adding shortcut links (the backbone itself is exempt because
        connectivity must be guaranteed).
    routing:
        ``"shortest"`` (congestion-aware shortest path, the default — may
        produce cyclic CDGs) or ``"updown"`` (turn-restricted, always
        acyclic; used for comparison).
    balance_slack:
        Passed to :func:`repro.synthesis.partition.partition_cores`.
    congestion_factor:
        Passed to :func:`repro.routing.shortest_path.compute_routes`.
    seed:
        Reserved for future stochastic refinement steps; the current
        pipeline is fully deterministic but the seed is recorded in the
        design name so sweeps stay reproducible if that changes.
    routing_engine:
        Shortest-path engine name from
        :data:`repro.api.registry.routing_engines` (``"indexed"`` by
        default; ``"legacy"`` is the seed path-tuple search).  Both produce
        identical routes — the knob exists for cross-checking and
        benchmarking.
    topology_family:
        When set, the topology comes from the named
        :data:`repro.api.registry.topology_families` generator instead of
        the application-specific pipeline; ``n_switches`` must then equal
        the family's closed-form size at ``family_params``.
    family_params:
        Parameters of the topology family (e.g. ``{"k": 8}`` for
        ``fat_tree``; a ``"routing"`` entry overrides the family's default
        routing mode).  Only meaningful with ``topology_family``.
    """

    n_switches: int
    extra_link_fraction: float = 0.5
    max_switch_degree: int = 4
    routing: str = ROUTING_SHORTEST
    balance_slack: int = 1
    congestion_factor: float = 0.5
    seed: int = 0
    routing_engine: str = "indexed"
    topology_family: Optional[str] = None
    family_params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        if self.n_switches < 1:
            raise SynthesisError(f"switch count must be positive, got {self.n_switches}")
        if self.extra_link_fraction < 0:
            raise SynthesisError("extra_link_fraction must be non-negative")
        if self.max_switch_degree < 2:
            raise SynthesisError("max_switch_degree must be at least 2")
        if self.routing not in _ROUTINGS:
            raise SynthesisError(f"unknown routing mode {self.routing!r}")
        if self.routing_engine not in routing_engines:
            raise SynthesisError(
                f"unknown routing engine {self.routing_engine!r}; "
                f"available: {', '.join(routing_engines.names())}"
            )
        if self.topology_family is not None:
            if not isinstance(self.topology_family, str) or not self.topology_family:
                raise SynthesisError(
                    f"topology_family must be a non-empty string or None, "
                    f"got {self.topology_family!r}"
                )
            if self.topology_family not in topology_families:
                raise SynthesisError(
                    f"unknown topology family {self.topology_family!r}; "
                    f"available: {', '.join(topology_families.names())}"
                )
        if not isinstance(self.family_params, dict):
            raise SynthesisError(
                f"family_params must be a mapping, got {self.family_params!r}"
            )
        self.family_params = dict(self.family_params)
        if self.family_params and self.topology_family is None:
            raise SynthesisError(
                "family_params given without a topology_family to apply them to"
            )


def _inter_switch_traffic(
    traffic: CommunicationGraph, core_map: Dict[str, str]
) -> Dict[Tuple[str, str], float]:
    """Directed switch-to-switch bandwidth matrix (sparse dictionary)."""
    matrix: Dict[Tuple[str, str], float] = {}
    for flow in traffic.flows:
        src_switch = core_map[flow.src]
        dst_switch = core_map[flow.dst]
        if src_switch == dst_switch:
            continue
        key = (src_switch, dst_switch)
        matrix[key] = matrix.get(key, 0.0) + flow.bandwidth
    return matrix


def _symmetric_weights(
    matrix: Dict[Tuple[str, str], float]
) -> Dict[Tuple[str, str], float]:
    """Undirected pair weights (sum of both directions), key is sorted pair."""
    weights: Dict[Tuple[str, str], float] = {}
    for (src, dst), value in matrix.items():
        key = (min(src, dst), max(src, dst))
        weights[key] = weights.get(key, 0.0) + value
    return weights


def _maximum_spanning_backbone(
    switches: List[str], weights: Dict[Tuple[str, str], float]
) -> List[Tuple[str, str]]:
    """Maximum-weight spanning forest, completed into a tree.

    A Kruskal-style greedy pass over pairs sorted by descending weight keeps
    the heaviest-talking switches adjacent; switch pairs that never talk get
    zero weight and are only used to stitch disconnected components
    together, in deterministic name order.
    """
    parent = {switch: switch for switch in switches}

    def find(node: str) -> str:
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    def union(a: str, b: str) -> bool:
        root_a, root_b = find(a), find(b)
        if root_a == root_b:
            return False
        parent[root_b] = root_a
        return True

    edges: List[Tuple[str, str]] = []
    candidates = sorted(weights.items(), key=lambda item: (-item[1], item[0]))
    for (a, b), _weight in candidates:
        if union(a, b):
            edges.append((a, b))
    # Stitch any remaining components together (cores that never talk to
    # each other still need a connected network).
    for i in range(len(switches) - 1):
        a, b = switches[i], switches[i + 1]
        if union(a, b):
            edges.append((a, b))
    return edges


def _undirected_degree(topology: Topology, switch: str) -> int:
    """Number of distinct neighbour switches (either link direction)."""
    neighbors = set(topology.neighbors(switch))
    neighbors.update(link.src for link in topology.in_links(switch))
    return len(neighbors)


def build_switch_network(
    traffic: CommunicationGraph,
    core_map: Dict[str, str],
    config: SynthesisConfig,
    *,
    name: str = "synthesized",
) -> Topology:
    """Build the switch-level topology (steps 2 and 3 of the pipeline)."""
    switches = sorted({core_map[core] for core in core_map})
    topology = Topology(name)
    topology.add_switches(switches)

    matrix = _inter_switch_traffic(traffic, core_map)
    weights = _symmetric_weights(matrix)
    backbone = _maximum_spanning_backbone(switches, weights)
    backbone_set = set()
    for a, b in backbone:
        topology.add_bidirectional_link(a, b)
        backbone_set.add((min(a, b), max(a, b)))

    budget = int(round(config.extra_link_fraction * len(switches)))
    if budget <= 0:
        return topology
    candidates = sorted(
        (pair for pair in weights if pair not in backbone_set),
        key=lambda pair: (-weights[pair], pair),
    )
    added = 0
    for a, b in candidates:
        if added >= budget:
            break
        if (
            _undirected_degree(topology, a) >= config.max_switch_degree
            or _undirected_degree(topology, b) >= config.max_switch_degree
        ):
            continue
        topology.add_bidirectional_link(a, b)
        added += 1
    return topology


def synthesize_design(
    traffic: CommunicationGraph,
    config: SynthesisConfig,
    *,
    name: Optional[str] = None,
) -> NocDesign:
    """Run the full synthesis pipeline and return a routed, validated design.

    The returned design carries a warm
    :class:`~repro.perf.design_context.DesignContext` (created here, filled
    by the routing step): later ``compute_routes`` / up*/down* calls on the
    same design object reuse the int-relabelled switch graph and the BFS
    orientation instead of rebuilding them per call.

    A config with :attr:`SynthesisConfig.topology_family` set dispatches to
    the family generator instead of the application-specific pipeline (the
    ``family`` backend is the explicit registry spelling of the same path).
    """
    from repro.perf.design_context import DesignContext  # local: keep import light

    if config.topology_family is not None:
        from repro.synthesis.families import build_family_design  # local: keep import light

        return build_family_design(
            traffic,
            family=config.topology_family,
            params=config.family_params,
            n_switches=config.n_switches,
            routing_engine=config.routing_engine,
            name=name,
        )

    core_map = partition_cores(
        traffic, config.n_switches, balance_slack=config.balance_slack
    )
    design_name = name or f"{traffic.name}_{config.n_switches}sw"
    topology = build_switch_network(traffic, core_map, config, name=design_name)
    design = NocDesign(
        name=design_name,
        topology=topology,
        traffic=traffic.copy(),
        core_map=dict(core_map),
    )
    DesignContext.of(design)
    if config.routing == ROUTING_UPDOWN:
        compute_updown_routes(design)
    else:
        compute_routes(
            design,
            weight_mode=WEIGHT_CONGESTION,
            congestion_factor=config.congestion_factor,
            engine=config.routing_engine,
        )
    assign_link_lengths(design)
    validate_design(design)
    return design


def synthesize_for_switch_count(
    traffic: CommunicationGraph, n_switches: int, **overrides
) -> NocDesign:
    """Convenience wrapper used by the sweep benchmarks.

    Every configuration problem — an unknown override name, infeasible
    family parameters, a switch count off the family's closed form —
    surfaces as :class:`~repro.errors.SynthesisError`, never as a bare
    ``TypeError``/``KeyError``.
    """
    try:
        config = SynthesisConfig(n_switches=n_switches, **overrides)
    except TypeError:
        valid = [spec_field.name for spec_field in fields(SynthesisConfig)]
        unknown = sorted(set(overrides) - set(valid))
        raise SynthesisError(
            f"unknown synthesis override(s): {', '.join(unknown)}; "
            f"valid: {', '.join(valid)}"
        ) from None
    return synthesize_design(traffic, config)


# ----------------------------------------------------------------------
# Synthesis-backend registry entries.  A backend takes (traffic, config)
# and returns a routed, validated design; RunSpec.synthesis_backend and
# compare_methods(..., synthesis_backend=...) select one by name.
# ----------------------------------------------------------------------

@synthesis_backends.register("custom")
def _custom_backend(traffic: CommunicationGraph, config: SynthesisConfig) -> NocDesign:
    """The paper's flow: application-specific switch network (default)."""
    return synthesize_design(traffic, config)


@synthesis_backends.register("mesh")
def _mesh_backend(traffic: CommunicationGraph, config: SynthesisConfig) -> NocDesign:
    """Regular-mesh comparison backend: the closest-to-square ``rows × cols``
    grid with at least ``config.n_switches`` switches, XY-routed (always
    deadlock free — useful as a baseline workload for the experiment API).
    Thin adapter over the ``mesh`` topology family.
    """
    from repro.synthesis.families import build_family_design  # local: keep import light

    rows = max(1, int(math.sqrt(config.n_switches)))
    cols = (config.n_switches + rows - 1) // rows
    return build_family_design(
        traffic,
        family="mesh",
        params={"rows": rows, "cols": cols},
        routing_engine=config.routing_engine,
        name=f"{traffic.name}_{rows}x{cols}mesh",
    )


@synthesis_backends.register("family")
def _family_backend(traffic: CommunicationGraph, config: SynthesisConfig) -> NocDesign:
    """Parameterized topology-family backend (fat_tree, clos/vl2, torus...).

    Requires :attr:`SynthesisConfig.topology_family`;
    :class:`~repro.api.spec.RunSpec` selects this backend automatically
    whenever its ``topology_family`` field is set.
    """
    if config.topology_family is None:
        raise SynthesisError(
            "the 'family' synthesis backend needs config.topology_family; "
            f"available families: {', '.join(topology_families.names())}"
        )
    return synthesize_design(traffic, config)
