"""A small grid floorplanner for link-length estimation.

The ORION-style link power/area model needs physical link lengths.  Real
flows get them from a floorplanner; here switches are placed on a regular
grid of tiles and iteratively improved by greedy pairwise swaps that reduce
the bandwidth-weighted Manhattan wirelength.  The result is written back
onto the topology as per-link lengths in millimetres.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.model.design import NocDesign
from repro.model.topology import Topology

#: Default tile pitch in millimetres — roughly the size of a small IP block
#: plus its router at 65 nm, the technology node of the paper's power model.
DEFAULT_TILE_MM = 2.0


def grid_dimensions(n_switches: int) -> Tuple[int, int]:
    """Smallest near-square grid that fits ``n_switches`` tiles."""
    cols = max(1, math.ceil(math.sqrt(n_switches)))
    rows = max(1, math.ceil(n_switches / cols))
    return rows, cols


def _initial_positions(switches: List[str], tile_mm: float) -> Dict[str, Tuple[float, float]]:
    rows, cols = grid_dimensions(len(switches))
    positions = {}
    for index, switch in enumerate(switches):
        row, col = divmod(index, cols)
        positions[switch] = (col * tile_mm, row * tile_mm)
    return positions


def _wirelength(
    positions: Dict[str, Tuple[float, float]],
    demands: Dict[Tuple[str, str], float],
) -> float:
    total = 0.0
    for (a, b), weight in demands.items():
        ax, ay = positions[a]
        bx, by = positions[b]
        total += weight * (abs(ax - bx) + abs(ay - by))
    return total


def place_switches(
    design: NocDesign,
    *,
    tile_mm: float = DEFAULT_TILE_MM,
    max_passes: int = 4,
) -> Dict[str, Tuple[float, float]]:
    """Place switches on a grid minimising bandwidth-weighted wirelength.

    Deterministic: the initial placement follows switch insertion order and
    the improvement passes consider swaps in sorted order, accepting any
    swap that strictly reduces the objective.
    """
    switches = design.topology.switches
    positions = _initial_positions(switches, tile_mm)

    demands: Dict[Tuple[str, str], float] = {}
    link_load = design.link_load()
    for link, load in link_load.items():
        key = (link.src, link.dst)
        demands[key] = demands.get(key, 0.0) + max(load, 1.0)

    # Demands touching each switch, so a swap only re-evaluates local terms.
    touching: Dict[str, List[Tuple[Tuple[str, str], float]]] = {s: [] for s in switches}
    for pair, weight in demands.items():
        touching[pair[0]].append((pair, weight))
        if pair[1] != pair[0]:
            touching[pair[1]].append((pair, weight))

    def local_cost(a: str, b: str) -> float:
        seen = set()
        cost = 0.0
        for pair, weight in touching[a] + touching[b]:
            if pair in seen:
                continue
            seen.add(pair)
            ax, ay = positions[pair[0]]
            bx, by = positions[pair[1]]
            cost += weight * (abs(ax - bx) + abs(ay - by))
        return cost

    for _ in range(max_passes):
        improved = False
        for i in range(len(switches)):
            for j in range(i + 1, len(switches)):
                a, b = switches[i], switches[j]
                before = local_cost(a, b)
                positions[a], positions[b] = positions[b], positions[a]
                after = local_cost(a, b)
                if after + 1e-9 < before:
                    improved = True
                else:
                    positions[a], positions[b] = positions[b], positions[a]
        if not improved:
            break
    return positions


def assign_link_lengths(
    design: NocDesign,
    *,
    tile_mm: float = DEFAULT_TILE_MM,
    positions: Optional[Dict[str, Tuple[float, float]]] = None,
    minimum_mm: float = 0.5,
) -> Dict[str, Tuple[float, float]]:
    """Floorplan the design and store Manhattan link lengths on the topology.

    Returns the switch positions so callers can reuse or display them.
    """
    if positions is None:
        positions = place_switches(design, tile_mm=tile_mm)
    topology = design.topology
    for link in topology.links:
        ax, ay = positions[link.src]
        bx, by = positions[link.dst]
        length = abs(ax - bx) + abs(ay - by)
        topology.set_link_length(link, max(length, minimum_mm))
    return positions


def total_wirelength(design: NocDesign) -> float:
    """Sum of physical link lengths in millimetres (unweighted)."""
    topology = design.topology
    return sum(topology.link_length(link) for link in topology.links)
