"""Benchmark registry: look up the paper's benchmarks by name."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.benchmarks.soc import d26_media, d35_bott, d36_4, d36_6, d36_8, d38_tvopd
from repro.errors import BenchmarkError
from repro.model.traffic import CommunicationGraph

#: Factories for the six benchmarks of the paper's evaluation, keyed by the
#: names used in Figures 8-10.
_FACTORIES: Dict[str, Callable[[int], CommunicationGraph]] = {
    "D26_media": d26_media,
    "D36_4": d36_4,
    "D36_6": d36_6,
    "D36_8": d36_8,
    "D35_bott": d35_bott,
    "D38_tvopd": d38_tvopd,
}

BENCHMARK_NAMES: List[str] = list(_FACTORIES)


def list_benchmarks() -> List[str]:
    """Names of all registered benchmarks, in the paper's order."""
    return list(BENCHMARK_NAMES)


def get_benchmark(name: str, seed: int = 0) -> CommunicationGraph:
    """Instantiate a benchmark communication graph by name.

    Raises :class:`~repro.errors.BenchmarkError` for unknown names; the
    error message lists the valid ones, which makes CLI typos painless.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise BenchmarkError(
            f"unknown benchmark {name!r}; available: {', '.join(BENCHMARK_NAMES)}"
        ) from None
    return factory(seed)
