"""Benchmark registry: look up the paper's benchmarks by name.

Besides the six SoC benchmarks of the paper's evaluation, parametric
*synthetic* names resolve on demand — the workloads that scale with the
fabric in datacenter-topology sweeps (the ``scale`` report generates
``uniform_c{2·switches}_f2`` names, for example):

* ``uniform_c<N>_f<F>`` — ``N`` cores, ``F`` uniformly random flows each;
* ``hotspot_c<N>_h<H>`` — ``N`` cores converging on ``H`` hotspots;
* ``neighbour_c<N>`` — ``N`` cores in a nearest-neighbour ring.

All are deterministic in ``(name, seed)``.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List

from repro.benchmarks.soc import d26_media, d35_bott, d36_4, d36_6, d36_8, d38_tvopd
from repro.benchmarks.synthetic import (
    hotspot_traffic,
    neighbour_traffic,
    uniform_random_traffic,
)
from repro.errors import BenchmarkError
from repro.model.traffic import CommunicationGraph

#: Factories for the six benchmarks of the paper's evaluation, keyed by the
#: names used in Figures 8-10.
_FACTORIES: Dict[str, Callable[[int], CommunicationGraph]] = {
    "D26_media": d26_media,
    "D36_4": d36_4,
    "D36_6": d36_6,
    "D36_8": d36_8,
    "D35_bott": d35_bott,
    "D38_tvopd": d38_tvopd,
}

BENCHMARK_NAMES: List[str] = list(_FACTORIES)

#: Parametric synthetic benchmark name patterns (fullmatch, anchored).
_UNIFORM_PATTERN = re.compile(r"uniform_c(\d+)_f(\d+)")
_HOTSPOT_PATTERN = re.compile(r"hotspot_c(\d+)_h(\d+)")
_NEIGHBOUR_PATTERN = re.compile(r"neighbour_c(\d+)")

#: Human-readable forms of the parametric patterns, for error messages.
PARAMETRIC_PATTERNS: List[str] = [
    "uniform_c<N>_f<F>",
    "hotspot_c<N>_h<H>",
    "neighbour_c<N>",
]


def list_benchmarks() -> List[str]:
    """Names of all registered benchmarks, in the paper's order."""
    return list(BENCHMARK_NAMES)


def _parametric_benchmark(name: str, seed: int) -> CommunicationGraph:
    """Resolve a parametric synthetic name, or raise BenchmarkError."""
    match = _UNIFORM_PATTERN.fullmatch(name)
    if match:
        n_cores, flows = int(match.group(1)), int(match.group(2))
        return uniform_random_traffic(
            n_cores, flows_per_core=flows, seed=seed, name=name
        )
    match = _HOTSPOT_PATTERN.fullmatch(name)
    if match:
        n_cores, hotspots = int(match.group(1)), int(match.group(2))
        return hotspot_traffic(n_cores, n_hotspots=hotspots, seed=seed, name=name)
    match = _NEIGHBOUR_PATTERN.fullmatch(name)
    if match:
        return neighbour_traffic(int(match.group(1)), name=name)
    raise BenchmarkError(
        f"unknown benchmark {name!r}; available: {', '.join(BENCHMARK_NAMES)}; "
        f"parametric: {', '.join(PARAMETRIC_PATTERNS)}"
    )


def get_benchmark(name: str, seed: int = 0) -> CommunicationGraph:
    """Instantiate a benchmark communication graph by name.

    Besides the six fixed SoC names, parametric synthetic names (see
    :data:`PARAMETRIC_PATTERNS`) are generated on demand, deterministic in
    ``(name, seed)``.  Raises :class:`~repro.errors.BenchmarkError` for
    unknown names; the error message lists the valid forms, which makes CLI
    typos painless.
    """
    factory = _FACTORIES.get(name)
    if factory is None:
        return _parametric_benchmark(name, seed)
    return factory(seed)
