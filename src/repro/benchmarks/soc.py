"""Reconstructions of the paper's SoC benchmarks.

The six benchmarks of Section 5 come from the authors' industrial design
set (reference [21] of the paper); their exact traffic tables were never
published.  The functions here rebuild communication graphs with the same
core counts and the traffic *structure* the paper and [21] describe:

* ``D26_media`` — 26 cores, "multimedia and wireless applications": a video
  pipeline, an audio pipeline, a wireless modem chain, processors, DMA and
  shared memory/peripheral targets.
* ``D36_4`` / ``D36_6`` / ``D36_8`` — 36 processing cores, each sending data
  to 4 / 6 / 8 other cores ("more complex traffic patterns").
* ``D35_bott`` — 35 cores with a bandwidth bottleneck: most cores funnel
  traffic into a small set of memory controllers.
* ``D38_tvopd`` — 38 cores, a TV object-plane-decoder-style design: several
  parallel decoding pipelines that merge into composition/display stages.

All generators are deterministic for a given ``seed`` (default 0), so every
figure of EXPERIMENTS.md is reproducible bit for bit.
"""

from __future__ import annotations

import random
from typing import List

from repro.model.traffic import CommunicationGraph


def _add_chain(
    traffic: CommunicationGraph,
    stages: List[str],
    bandwidth: float,
    prefix: str,
    *,
    feedback: float = 0.0,
) -> None:
    """Connect ``stages`` into a pipeline with optional feedback flows."""
    index = 0
    for src, dst in zip(stages, stages[1:]):
        traffic.add_flow(f"{prefix}{index}", src, dst, bandwidth)
        index += 1
        if feedback > 0:
            traffic.add_flow(f"{prefix}{index}", dst, src, bandwidth * feedback)
            index += 1


def d26_media(seed: int = 0) -> CommunicationGraph:
    """26-core multimedia + wireless SoC (the paper's D26_media case study)."""
    rng = random.Random(seed)
    traffic = CommunicationGraph("D26_media")

    video = ["vid_in", "vid_preproc", "vid_enc", "vid_vlc", "vid_pack"]
    audio = ["aud_in", "aud_dsp", "aud_enc"]
    wireless = ["rf_frontend", "demod", "channel_dec", "mac", "proto_proc"]
    display = ["disp_ctrl", "disp_scaler", "lcd_if"]
    processors = ["cpu", "dsp0", "dsp1"]
    infrastructure = ["dma", "sdram0", "sdram1", "sram", "bridge", "usb", "flash"]
    cores = video + audio + wireless + display + processors + infrastructure
    assert len(cores) == 26, f"D26_media must have 26 cores, got {len(cores)}"
    traffic.add_cores(cores)

    # Stream pipelines.
    _add_chain(traffic, video, 320.0, "vid", feedback=0.1)
    _add_chain(traffic, audio, 64.0, "aud")
    _add_chain(traffic, wireless, 160.0, "wl", feedback=0.15)
    _add_chain(traffic, display, 240.0, "dsp_chain")

    # Pipelines feed and drain the shared memories through the DMA engine.
    flow_id = 0

    def flow(src: str, dst: str, bandwidth: float) -> None:
        nonlocal flow_id
        traffic.add_flow(f"m{flow_id}", src, dst, bandwidth)
        flow_id += 1

    flow("vid_pack", "sdram0", 300.0)
    flow("sdram0", "disp_ctrl", 280.0)
    flow("aud_enc", "sdram1", 60.0)
    flow("proto_proc", "sdram1", 120.0)
    flow("sdram1", "mac", 100.0)
    flow("dma", "sdram0", 200.0)
    flow("dma", "sdram1", 150.0)
    flow("sdram0", "dma", 180.0)
    flow("vid_in", "sram", 90.0)
    flow("sram", "vid_preproc", 90.0)

    # Processors orchestrate everything: control traffic to the pipeline
    # heads and data exchanges with the memories.
    control_targets = [
        "vid_in", "vid_enc", "aud_dsp", "rf_frontend", "mac",
        "disp_ctrl", "dma", "usb", "flash", "bridge",
    ]
    for cpu in processors:
        for target in control_targets:
            flow(cpu, target, round(rng.uniform(5.0, 30.0), 1))
        flow(cpu, "sdram0", round(rng.uniform(80.0, 160.0), 1))
        flow("sdram0", cpu, round(rng.uniform(80.0, 160.0), 1))

    # Peripheral/bridge background traffic.
    flow("usb", "sdram1", 40.0)
    flow("bridge", "sram", 25.0)
    flow("flash", "cpu", 20.0)
    return traffic


def _d36(fanout: int, seed: int) -> CommunicationGraph:
    """36 cores, each sending to ``fanout`` other cores (D36_4/6/8)."""
    rng = random.Random(seed)
    n_cores = 36
    traffic = CommunicationGraph(f"D36_{fanout}")
    cores = [f"p{i}" for i in range(n_cores)]
    traffic.add_cores(cores)
    flow_id = 0
    for i, src in enumerate(cores):
        # Partners mix locality (near neighbours) and long-range targets so
        # the synthesized topologies carry both short and long routes, as in
        # the original multi-media benchmark family.
        near = [(i + offset) % n_cores for offset in (1, 2, 3, 4)]
        far = [(i + offset) % n_cores for offset in (9, 13, 18, 23, 27, 31)]
        pool = near + [p for p in far if p not in near]
        rng.shuffle(pool)
        partners: List[int] = []
        for candidate in near[:2] + pool:
            if candidate != i and candidate not in partners:
                partners.append(candidate)
            if len(partners) == fanout:
                break
        for dst_index in partners:
            bandwidth = round(rng.uniform(20.0, 250.0), 1)
            traffic.add_flow(f"f{flow_id}", src, cores[dst_index], bandwidth)
            flow_id += 1
    return traffic


def d36_4(seed: int = 0) -> CommunicationGraph:
    """36 processing cores, each sending to 4 other cores."""
    return _d36(4, seed)


def d36_6(seed: int = 0) -> CommunicationGraph:
    """36 processing cores, each sending to 6 other cores."""
    return _d36(6, seed)


def d36_8(seed: int = 0) -> CommunicationGraph:
    """36 processing cores, each sending to 8 other cores (Figure 9)."""
    return _d36(8, seed)


def d35_bott(seed: int = 0) -> CommunicationGraph:
    """35-core design with a memory bottleneck (the paper's D35_bott)."""
    rng = random.Random(seed)
    traffic = CommunicationGraph("D35_bott")
    n_workers = 30
    workers = [f"pe{i}" for i in range(n_workers)]
    memories = ["mem0", "mem1", "mem2"]
    controllers = ["host", "sched"]
    cores = workers + memories + controllers
    assert len(cores) == 35, f"D35_bott must have 35 cores, got {len(cores)}"
    traffic.add_cores(cores)

    flow_id = 0
    for i, worker in enumerate(workers):
        memory = memories[i % len(memories)]
        write_bw = round(rng.uniform(120.0, 320.0), 1)
        read_bw = round(rng.uniform(120.0, 320.0), 1)
        traffic.add_flow(f"w{flow_id}", worker, memory, write_bw)
        flow_id += 1
        traffic.add_flow(f"w{flow_id}", memory, worker, read_bw)
        flow_id += 1
        # occasional worker-to-worker exchange
        if i % 3 == 0:
            peer = workers[(i + 5) % n_workers]
            traffic.add_flow(f"w{flow_id}", worker, peer, round(rng.uniform(15.0, 60.0), 1))
            flow_id += 1
    for controller in controllers:
        for i in range(0, n_workers, 4):
            traffic.add_flow(f"c{flow_id}", controller, workers[i], 10.0)
            flow_id += 1
        traffic.add_flow(f"c{flow_id}", controller, "mem0", 45.0)
        flow_id += 1
    traffic.add_flow(f"c{flow_id}", "sched", "host", 20.0)
    return traffic


def d38_tvopd(seed: int = 0) -> CommunicationGraph:
    """38-core TV object-plane-decoder-style design (the paper's D38_tvo)."""
    rng = random.Random(seed)
    traffic = CommunicationGraph("D38_tvopd")

    n_planes = 4
    plane_stages = ["vld", "iquant", "idct", "mc", "rec"]
    planes = [[f"{stage}{p}" for stage in plane_stages] for p in range(n_planes)]
    shared = [
        "stream_in", "demux", "osd", "blend", "scaler", "deint",
        "frame_buf0", "frame_buf1", "disp_out",
        "cpu", "mem_ctrl",
    ]
    audio = ["aud_dec", "aud_mix", "aud_out"]
    cores = [core for plane in planes for core in plane] + shared + audio
    # 4 planes x 5 stages = 20, shared = 11, audio = 3, plus the 4 plane
    # motion-compensation reference fetch units below.
    ref_units = [f"ref{p}" for p in range(n_planes)]
    cores += ref_units
    assert len(cores) == 38, f"D38_tvopd must have 38 cores, got {len(cores)}"
    traffic.add_cores(cores)

    flow_id = 0

    def flow(src: str, dst: str, bandwidth: float) -> None:
        nonlocal flow_id
        traffic.add_flow(f"f{flow_id}", src, dst, bandwidth)
        flow_id += 1

    flow("stream_in", "demux", 200.0)
    for p, plane in enumerate(planes):
        plane_bw = round(rng.uniform(120.0, 200.0), 1)
        flow("demux", plane[0], plane_bw)
        for src, dst in zip(plane, plane[1:]):
            flow(src, dst, plane_bw)
        # motion compensation fetches reference data from the frame buffers
        flow(ref_units[p], plane[3], plane_bw * 0.8)
        flow("frame_buf0" if p % 2 == 0 else "frame_buf1", ref_units[p], plane_bw * 0.8)
        # reconstructed plane goes to the blender
        flow(plane[-1], "blend", plane_bw)
    flow("osd", "blend", 60.0)
    flow("blend", "scaler", 400.0)
    flow("scaler", "deint", 400.0)
    flow("deint", "frame_buf0", 380.0)
    flow("deint", "frame_buf1", 380.0)
    flow("frame_buf0", "disp_out", 400.0)
    flow("frame_buf1", "disp_out", 400.0)
    flow("demux", "aud_dec", 48.0)
    flow("aud_dec", "aud_mix", 48.0)
    flow("aud_mix", "aud_out", 48.0)
    # CPU control plane and memory controller background traffic.
    for target in ("demux", "blend", "scaler", "disp_out", "aud_mix", "osd"):
        flow("cpu", target, round(rng.uniform(5.0, 25.0), 1))
    flow("cpu", "mem_ctrl", 120.0)
    flow("mem_ctrl", "cpu", 120.0)
    flow("mem_ctrl", "frame_buf0", 300.0)
    flow("mem_ctrl", "frame_buf1", 300.0)
    return traffic
