"""SoC benchmark communication graphs.

The paper evaluates on six realistic SoC benchmarks (described in its
reference [21]): ``D26_media``, ``D36_4``, ``D36_6``, ``D36_8``,
``D35_bott`` and ``D38_tvopd``.  The original traffic tables are not public,
so this package provides seeded synthetic reconstructions that match the
published core counts and traffic structure (see DESIGN.md, substitution 2),
plus generic synthetic traffic generators for tests and extra experiments.
"""

from repro.benchmarks.registry import BENCHMARK_NAMES, get_benchmark, list_benchmarks
from repro.benchmarks.soc import (
    d26_media,
    d35_bott,
    d36_4,
    d36_6,
    d36_8,
    d38_tvopd,
)
from repro.benchmarks.synthetic import (
    hotspot_traffic,
    neighbour_traffic,
    pipeline_traffic,
    uniform_random_traffic,
)

__all__ = [
    "d26_media",
    "d36_4",
    "d36_6",
    "d36_8",
    "d35_bott",
    "d38_tvopd",
    "get_benchmark",
    "list_benchmarks",
    "BENCHMARK_NAMES",
    "uniform_random_traffic",
    "hotspot_traffic",
    "neighbour_traffic",
    "pipeline_traffic",
]
