"""Generic synthetic traffic generators.

These are the standard patterns of the NoC literature (uniform random,
hotspot, nearest neighbour, pipeline).  They are used by the property-based
tests (any traffic must yield a valid, deadlock-free design after removal),
by the ablation benchmarks and as building blocks of the SoC benchmark
reconstructions.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.errors import BenchmarkError
from repro.model.traffic import CommunicationGraph


def _core_names(n_cores: int, prefix: str) -> List[str]:
    return [f"{prefix}{i}" for i in range(n_cores)]


def uniform_random_traffic(
    n_cores: int,
    flows_per_core: int = 2,
    *,
    seed: int = 0,
    min_bandwidth: float = 10.0,
    max_bandwidth: float = 400.0,
    prefix: str = "core",
    name: Optional[str] = None,
) -> CommunicationGraph:
    """Every core sends to ``flows_per_core`` uniformly chosen partners."""
    if n_cores < 2:
        raise BenchmarkError(f"need at least 2 cores, got {n_cores}")
    if flows_per_core < 1 or flows_per_core > n_cores - 1:
        raise BenchmarkError(
            f"flows_per_core must be in [1, {n_cores - 1}], got {flows_per_core}"
        )
    rng = random.Random(seed)
    traffic = CommunicationGraph(name or f"uniform{n_cores}x{flows_per_core}")
    cores = _core_names(n_cores, prefix)
    traffic.add_cores(cores)
    flow_id = 0
    for src in cores:
        partners = [c for c in cores if c != src]
        rng.shuffle(partners)
        for dst in partners[:flows_per_core]:
            bandwidth = round(rng.uniform(min_bandwidth, max_bandwidth), 1)
            traffic.add_flow(f"f{flow_id}", src, dst, bandwidth)
            flow_id += 1
    return traffic


def hotspot_traffic(
    n_cores: int,
    n_hotspots: int = 2,
    *,
    seed: int = 0,
    hotspot_bandwidth: float = 400.0,
    background_bandwidth: float = 40.0,
    prefix: str = "core",
    name: Optional[str] = None,
) -> CommunicationGraph:
    """All cores send to a few hotspot cores (memory-controller pattern),
    plus light background traffic to a random partner."""
    if n_cores < 3:
        raise BenchmarkError(f"need at least 3 cores, got {n_cores}")
    if n_hotspots < 1 or n_hotspots >= n_cores:
        raise BenchmarkError(f"n_hotspots must be in [1, {n_cores - 1}], got {n_hotspots}")
    rng = random.Random(seed)
    traffic = CommunicationGraph(name or f"hotspot{n_cores}x{n_hotspots}")
    cores = _core_names(n_cores, prefix)
    traffic.add_cores(cores)
    hotspots = cores[:n_hotspots]
    flow_id = 0
    for src in cores:
        if src in hotspots:
            continue
        hotspot = hotspots[flow_id % n_hotspots]
        traffic.add_flow(f"f{flow_id}", src, hotspot, hotspot_bandwidth)
        flow_id += 1
        # replies from the hotspot back to the requester
        traffic.add_flow(f"f{flow_id}", hotspot, src, hotspot_bandwidth / 2)
        flow_id += 1
        others = [c for c in cores if c not in (src, hotspot)]
        dst = others[rng.randrange(len(others))]
        traffic.add_flow(f"f{flow_id}", src, dst, background_bandwidth)
        flow_id += 1
    return traffic


def neighbour_traffic(
    n_cores: int,
    *,
    hops: int = 1,
    bandwidth: float = 200.0,
    prefix: str = "core",
    name: Optional[str] = None,
) -> CommunicationGraph:
    """Core ``i`` sends to core ``i + hops`` (mod n) — a ring of flows."""
    if n_cores < 2:
        raise BenchmarkError(f"need at least 2 cores, got {n_cores}")
    if hops % n_cores == 0:
        raise BenchmarkError("hops must not be a multiple of the core count")
    traffic = CommunicationGraph(name or f"neighbour{n_cores}")
    cores = _core_names(n_cores, prefix)
    traffic.add_cores(cores)
    for i, src in enumerate(cores):
        dst = cores[(i + hops) % n_cores]
        traffic.add_flow(f"f{i}", src, dst, bandwidth)
    return traffic


def pipeline_traffic(
    stage_names: List[str],
    *,
    bandwidth: float = 200.0,
    backward_fraction: float = 0.0,
    name: Optional[str] = None,
) -> CommunicationGraph:
    """A linear processing pipeline: each stage feeds the next one.

    ``backward_fraction > 0`` adds feedback flows from each stage to its
    predecessor (rate-control traffic), which is common in video codecs.
    """
    if len(stage_names) < 2:
        raise BenchmarkError("a pipeline needs at least 2 stages")
    traffic = CommunicationGraph(name or "pipeline")
    traffic.add_cores(stage_names)
    flow_id = 0
    for src, dst in zip(stage_names, stage_names[1:]):
        traffic.add_flow(f"p{flow_id}", src, dst, bandwidth)
        flow_id += 1
        if backward_fraction > 0:
            traffic.add_flow(f"p{flow_id}", dst, src, bandwidth * backward_fraction)
            flow_id += 1
    return traffic
