"""Network-performance evaluation of protected designs.

The paper's evaluation is about cost (VCs, power, area); a natural follow-up
question — and the reason designers care about adding as few VCs as possible
in the first place — is whether the protected design still performs.  This
module reports the classic latency-vs-offered-load curve.

Since the compiled-simulation PR this is a *thin adapter* over the
pluggable simulation stack: every point is measured by
:func:`measure_load_point` through the
:data:`repro.api.registry.simulation_engines` and
:data:`~repro.api.registry.traffic_scenarios` registries (``sim_engine``
and ``traffic_scenario`` select implementations by name), and the
experiment API reuses the same helper for the cached, parallel
``latency`` report (:mod:`repro.api.reports`) — prefer that report for
sweeps over registry benchmarks; this module remains the library entry
point for ad-hoc :class:`~repro.model.design.NocDesign` objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.model.design import NocDesign
from repro.simulation.events import EventSchedule
from repro.simulation.simulator import (
    DEFAULT_SIMULATION_ENGINE,
    SimulationConfig,
    build_simulator,
    make_traffic_generator,
    verify_against_legacy,
)


@dataclass
class LoadPoint:
    """One point of a latency-vs-load curve."""

    injection_scale: float
    offered_flits_per_cycle: float
    delivered_flits_per_cycle: float
    average_latency: float
    max_latency: int
    packets_delivered: int
    deadlocked: bool

    @property
    def saturated(self) -> bool:
        """Heuristic saturation flag: deliveries fall well short of offers."""
        if self.offered_flits_per_cycle == 0:
            return False
        return self.delivered_flits_per_cycle < 0.8 * self.offered_flits_per_cycle


@dataclass
class LoadSweep:
    """A latency-vs-load curve for one design."""

    design_name: str
    points: List[LoadPoint] = field(default_factory=list)

    @property
    def saturation_scale(self) -> Optional[float]:
        """Smallest injection scale at which the design saturates (or None)."""
        for point in self.points:
            if point.deadlocked or point.saturated:
                return point.injection_scale
        return None

    def as_rows(self) -> List[List]:
        """Table rows: scale, offered, delivered, latency, deadlocked."""
        return [
            [
                point.injection_scale,
                round(point.offered_flits_per_cycle, 4),
                round(point.delivered_flits_per_cycle, 4),
                round(point.average_latency, 1),
                point.deadlocked,
            ]
            for point in self.points
        ]


def measure_load_point(
    design: NocDesign,
    *,
    injection_scale: float,
    max_cycles: int = 3000,
    buffer_depth: int = 4,
    seed: int = 0,
    traffic_scenario: str = "flows",
    scenario_params: Optional[Dict[str, Any]] = None,
    sim_engine: str = DEFAULT_SIMULATION_ENGINE,
    cross_check: bool = False,
    fault_schedule=None,
    fault_recovery: str = "removal",
) -> Dict[str, Any]:
    """Simulate one load point and return its metrics as a plain dictionary.

    The single simulation entry point shared by :func:`load_latency_sweep`
    and the experiment API's ``latency`` report, so a cached
    :class:`~repro.api.result.RunResult` and a direct library call agree to
    the last digit.  Deadlocks are recorded, never raised.

    ``fault_schedule`` accepts anything
    :meth:`~repro.simulation.events.EventSchedule.from_spec` does; when it
    yields a non-empty schedule the returned metrics gain a ``resilience``
    sub-dictionary (fault-free records keep their exact historical shape).
    ``fault_recovery`` names the
    :data:`repro.api.registry.recovery_policies` entry repairing the
    route set after each fault batch.
    """
    schedule = EventSchedule.from_spec(
        fault_schedule, topology=design.topology, seed=seed
    )
    config = SimulationConfig(
        injection_scale=injection_scale,
        buffer_depth=buffer_depth,
        seed=seed,
        traffic_scenario=traffic_scenario,
        scenario_params=dict(scenario_params or {}),
        fault_schedule=schedule,
        fault_recovery=fault_recovery,
    )
    # Read the offered load from the engine's own generator instead of
    # constructing a throwaway second one.
    simulator = build_simulator(design, config, engine=sim_engine)
    offered = simulator.generator.offered_flits_per_cycle
    stats = simulator.run(max_cycles)
    if cross_check and sim_engine != "legacy":
        verify_against_legacy(design, config, stats, sim_engine, max_cycles=max_cycles)
    metrics = _point_metrics(injection_scale, offered, stats)
    if schedule is not None and len(schedule):
        recovered = [c for c in stats.recovery_cycles if c >= 0]
        metrics["resilience"] = {
            "fault_events_applied": stats.fault_events_applied,
            "packets_lost": stats.packets_lost,
            "flits_lost": stats.flits_lost,
            "flows_rerouted": stats.flows_rerouted,
            "recovery_cycles": list(stats.recovery_cycles),
            "batches_never_drained": stats.batches_never_drained,
            "mean_recovery_cycles": (
                sum(recovered) / len(recovered) if recovered else 0.0
            ),
            "post_fault_deadlock_free": stats.post_fault_deadlock_free,
        }
    return metrics


def _point_metrics(injection_scale: float, offered: float, stats) -> Dict[str, Any]:
    """The fault-free metrics dictionary of one simulated load point.

    Shared by :func:`measure_load_point` and :func:`measure_load_grid` so a
    batched grid cell and a solo run serialize to byte-identical documents.
    """
    return {
        "injection_scale": injection_scale,
        "offered_flits_per_cycle": offered,
        "delivered_flits_per_cycle": stats.throughput_flits_per_cycle,
        "average_latency": stats.average_latency,
        "max_latency": stats.max_latency,
        "packets_injected": stats.packets_injected,
        "packets_delivered": stats.packets_delivered,
        "flits_delivered": stats.flits_delivered,
        "cycles_run": stats.cycles_run,
        "deadlocked": stats.deadlock_detected,
        "deadlock_cycle": stats.deadlock_cycle,
    }


def measure_load_grid(
    design: NocDesign,
    points: Sequence[Dict[str, Any]],
    *,
    max_cycles: int = 3000,
    buffer_depth: int = 4,
    cross_check: bool = False,
) -> List[Dict[str, Any]]:
    """Simulate several load points of one design as a single array program.

    ``points`` are mappings with ``injection_scale`` (required) plus
    optional ``seed``, ``traffic_scenario`` and ``scenario_params``; every
    point runs for the shared ``max_cycles`` / ``buffer_depth``.  Returns
    one metrics dictionary per point, in order, with exactly the shape
    (and values) :func:`measure_load_point` produces for the same
    arguments — the batched engine is field-identical to ``compiled``, and
    ``cross_check=True`` re-runs every lane on the ``compiled`` engine and
    raises :class:`~repro.errors.SimulationError` on any divergence.

    Fault schedules cannot batch; route fault-injecting points through
    :func:`measure_load_point` instead.
    """
    from repro.perf.batch_engine import run_batch  # local: lazy numpy import

    configs = [
        SimulationConfig(
            injection_scale=point["injection_scale"],
            buffer_depth=buffer_depth,
            seed=point.get("seed", 0),
            traffic_scenario=point.get("traffic_scenario", "flows"),
            scenario_params=dict(point.get("scenario_params") or {}),
        )
        for point in points
    ]
    generators = [make_traffic_generator(design, config) for config in configs]
    stats_list = run_batch(
        design,
        configs,
        max_cycles=max_cycles,
        cross_check=cross_check,
        generators=generators,
    )
    return [
        _point_metrics(
            config.injection_scale, generator.offered_flits_per_cycle, stats
        )
        for config, generator, stats in zip(configs, generators, stats_list)
    ]


def _load_point_from_metrics(metrics: Dict[str, Any]) -> LoadPoint:
    return LoadPoint(
        injection_scale=metrics["injection_scale"],
        offered_flits_per_cycle=metrics["offered_flits_per_cycle"],
        delivered_flits_per_cycle=metrics["delivered_flits_per_cycle"],
        average_latency=metrics["average_latency"],
        max_latency=metrics["max_latency"],
        packets_delivered=metrics["packets_delivered"],
        deadlocked=metrics["deadlocked"],
    )


def load_latency_sweep(
    design: NocDesign,
    *,
    injection_scales: Sequence[float] = (0.25, 0.5, 0.75, 1.0, 1.5, 2.0),
    max_cycles: int = 3000,
    buffer_depth: int = 4,
    seed: int = 0,
    traffic_scenario: str = "flows",
    scenario_params: Optional[Dict[str, Any]] = None,
    sim_engine: str = DEFAULT_SIMULATION_ENGINE,
) -> LoadSweep:
    """Simulate ``design`` at several injection scales and collect the curve.

    Deadlocked points are recorded (not raised) so sweeps over unprotected
    designs show where they fall over.
    """
    sweep = LoadSweep(design_name=design.name)
    for scale in injection_scales:
        sweep.points.append(
            _load_point_from_metrics(
                measure_load_point(
                    design,
                    injection_scale=scale,
                    max_cycles=max_cycles,
                    buffer_depth=buffer_depth,
                    seed=seed,
                    traffic_scenario=traffic_scenario,
                    scenario_params=scenario_params,
                    sim_engine=sim_engine,
                )
            )
        )
    return sweep


def compare_performance(
    designs: Dict[str, NocDesign],
    *,
    injection_scales: Sequence[float] = (0.5, 1.0, 1.5),
    max_cycles: int = 3000,
    buffer_depth: int = 4,
    seed: int = 0,
    traffic_scenario: str = "flows",
    scenario_params: Optional[Dict[str, Any]] = None,
    sim_engine: str = DEFAULT_SIMULATION_ENGINE,
) -> Dict[str, LoadSweep]:
    """Run :func:`load_latency_sweep` for several named designs."""
    return {
        label: load_latency_sweep(
            design,
            injection_scales=injection_scales,
            max_cycles=max_cycles,
            buffer_depth=buffer_depth,
            seed=seed,
            traffic_scenario=traffic_scenario,
            scenario_params=scenario_params,
            sim_engine=sim_engine,
        )
        for label, design in designs.items()
    }
