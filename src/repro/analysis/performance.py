"""Network-performance evaluation of protected designs.

The paper's evaluation is about cost (VCs, power, area); a natural follow-up
question — and the reason designers care about adding as few VCs as possible
in the first place — is whether the protected design still performs.  This
module runs the wormhole simulator over a range of injection scales and
reports the classic latency-vs-offered-load curve, plus a convenience
comparison of two designs (e.g. deadlock removal vs. resource ordering) at
matched load points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.model.design import NocDesign
from repro.simulation.simulator import SimulationConfig, Simulator


@dataclass
class LoadPoint:
    """One point of a latency-vs-load curve."""

    injection_scale: float
    offered_flits_per_cycle: float
    delivered_flits_per_cycle: float
    average_latency: float
    max_latency: int
    packets_delivered: int
    deadlocked: bool

    @property
    def saturated(self) -> bool:
        """Heuristic saturation flag: deliveries fall well short of offers."""
        if self.offered_flits_per_cycle == 0:
            return False
        return self.delivered_flits_per_cycle < 0.8 * self.offered_flits_per_cycle


@dataclass
class LoadSweep:
    """A latency-vs-load curve for one design."""

    design_name: str
    points: List[LoadPoint] = field(default_factory=list)

    @property
    def saturation_scale(self) -> Optional[float]:
        """Smallest injection scale at which the design saturates (or None)."""
        for point in self.points:
            if point.deadlocked or point.saturated:
                return point.injection_scale
        return None

    def as_rows(self) -> List[List]:
        """Table rows: scale, offered, delivered, latency, deadlocked."""
        return [
            [
                point.injection_scale,
                round(point.offered_flits_per_cycle, 4),
                round(point.delivered_flits_per_cycle, 4),
                round(point.average_latency, 1),
                point.deadlocked,
            ]
            for point in self.points
        ]


def load_latency_sweep(
    design: NocDesign,
    *,
    injection_scales: Sequence[float] = (0.25, 0.5, 0.75, 1.0, 1.5, 2.0),
    max_cycles: int = 3000,
    buffer_depth: int = 4,
    seed: int = 0,
) -> LoadSweep:
    """Simulate ``design`` at several injection scales and collect the curve.

    Deadlocked points are recorded (not raised) so sweeps over unprotected
    designs show where they fall over.
    """
    sweep = LoadSweep(design_name=design.name)
    for scale in injection_scales:
        config = SimulationConfig(
            injection_scale=scale, buffer_depth=buffer_depth, seed=seed
        )
        simulator = Simulator(design, config)
        offered = sum(
            rate * design.traffic.flow(name).packet_size_flits
            for name, rate in simulator.generator.flow_rates.items()
        )
        stats = simulator.run(max_cycles)
        sweep.points.append(
            LoadPoint(
                injection_scale=scale,
                offered_flits_per_cycle=offered,
                delivered_flits_per_cycle=stats.throughput_flits_per_cycle,
                average_latency=stats.average_latency,
                max_latency=stats.max_latency,
                packets_delivered=stats.packets_delivered,
                deadlocked=stats.deadlock_detected,
            )
        )
    return sweep


def compare_performance(
    designs: Dict[str, NocDesign],
    *,
    injection_scales: Sequence[float] = (0.5, 1.0, 1.5),
    max_cycles: int = 3000,
    buffer_depth: int = 4,
    seed: int = 0,
) -> Dict[str, LoadSweep]:
    """Run :func:`load_latency_sweep` for several named designs."""
    return {
        label: load_latency_sweep(
            design,
            injection_scales=injection_scales,
            max_cycles=max_cycles,
            buffer_depth=buffer_depth,
            seed=seed,
        )
        for label, design in designs.items()
    }
