"""Experiment drivers and metrics used by the benchmark harness.

* :mod:`repro.analysis.metrics` — percentages, normalisation, text tables.
* :mod:`repro.analysis.experiments` — the three-way comparison (unprotected
  / deadlock removal / resource ordering) the paper's evaluation is built
  on.
* :mod:`repro.analysis.sweeps` — the figure-level sweeps (Figures 8, 9, 10
  and the area/overhead/runtime claims).
"""

from repro.analysis.experiments import MethodComparison, compare_methods, sweep_switch_counts
from repro.analysis.metrics import geometric_mean, percent_change, percent_reduction
from repro.analysis.sweeps import (
    FIGURE10_BENCHMARKS,
    FIGURE8_SWITCH_COUNTS,
    FIGURE9_SWITCH_COUNTS,
    area_savings_table,
    figure10_power_series,
    figure8_series,
    figure9_series,
    overhead_vs_unprotected,
    runtime_scaling,
)

__all__ = [
    "MethodComparison",
    "compare_methods",
    "sweep_switch_counts",
    "percent_change",
    "percent_reduction",
    "geometric_mean",
    "figure8_series",
    "figure9_series",
    "figure10_power_series",
    "area_savings_table",
    "overhead_vs_unprotected",
    "runtime_scaling",
    "FIGURE8_SWITCH_COUNTS",
    "FIGURE9_SWITCH_COUNTS",
    "FIGURE10_BENCHMARKS",
]
