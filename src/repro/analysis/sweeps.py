"""Figure-level sweeps: legacy adapters over the declarative experiment API.

Historically this module hand-wired one function per table/figure of the
paper.  Those functions survive as deprecation shims: each one now builds
the matching report request and executes it through
:class:`repro.api.runner.Runner` (see :mod:`repro.api.reports` for the
formatters), returning exactly the same dictionaries as before.  New code
should express experiments as :class:`repro.api.spec.ExperimentPlan`
documents and run them with ``noc-deadlock run <plan.json>`` or
:func:`repro.api.runner.run_plan`, which adds artifact caching and
multi-benchmark plans for free.

The switch-count grids match the x-axis ranges of the paper's figures.
"""

from __future__ import annotations

import time
import warnings
from typing import Dict, List, Optional, Sequence

# Canonical figure grids now live with the report formatters; re-exported
# here for backwards compatibility (benchmarks and examples import them).
from repro.api.reports import (
    FIGURE8_SWITCH_COUNTS,
    FIGURE9_SWITCH_COUNTS,
    FIGURE10_BENCHMARKS,
    FIGURE10_SWITCH_COUNT,
    run_report,
)
from repro.benchmarks.registry import get_benchmark
from repro.core.removal import remove_deadlocks
from repro.synthesis.builder import SynthesisConfig, synthesize_design

__all__ = [
    "FIGURE8_SWITCH_COUNTS",
    "FIGURE9_SWITCH_COUNTS",
    "FIGURE10_BENCHMARKS",
    "FIGURE10_SWITCH_COUNT",
    "figure8_series",
    "figure9_series",
    "figure10_power_series",
    "area_savings_table",
    "overhead_vs_unprotected",
    "runtime_scaling",
]


def _deprecated(name: str, report: str) -> None:
    warnings.warn(
        f"repro.analysis.sweeps.{name} is a legacy shim; build an "
        f"ExperimentPlan with the {report!r} report and run it through "
        "repro.api.runner.Runner (or `noc-deadlock run <plan.json>`)",
        DeprecationWarning,
        stacklevel=3,
    )


def figure8_series(
    *,
    switch_counts: Optional[Sequence[int]] = None,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> Dict[str, List]:
    """Figure 8: extra VCs vs. switch count for D26_media."""
    _deprecated("figure8_series", "figure8")
    params: Dict = {"seed": seed}
    if switch_counts is not None:
        params["switch_counts"] = list(switch_counts)
    return run_report("figure8", params, jobs=jobs)


def figure9_series(
    *,
    switch_counts: Optional[Sequence[int]] = None,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> Dict[str, List]:
    """Figure 9: extra VCs vs. switch count for D36_8."""
    _deprecated("figure9_series", "figure9")
    params: Dict = {"seed": seed}
    if switch_counts is not None:
        params["switch_counts"] = list(switch_counts)
    return run_report("figure9", params, jobs=jobs)


def figure10_power_series(
    *,
    benchmarks: Optional[Sequence[str]] = None,
    switch_count: int = FIGURE10_SWITCH_COUNT,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> Dict[str, List]:
    """Figure 10: power of resource ordering normalised to deadlock removal."""
    _deprecated("figure10_power_series", "figure10")
    params: Dict = {"seed": seed, "switch_count": switch_count}
    if benchmarks is not None:
        params["benchmarks"] = list(benchmarks)
    return run_report("figure10", params, jobs=jobs)


def area_savings_table(
    *,
    benchmarks: Optional[Sequence[str]] = None,
    switch_count: int = FIGURE10_SWITCH_COUNT,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> Dict[str, List]:
    """The §5 area claim: VC and area reduction of removal vs. ordering."""
    _deprecated("area_savings_table", "area")
    params: Dict = {"seed": seed, "switch_count": switch_count}
    if benchmarks is not None:
        params["benchmarks"] = list(benchmarks)
    return run_report("area", params, jobs=jobs)


def overhead_vs_unprotected(
    *,
    benchmarks: Optional[Sequence[str]] = None,
    switch_count: int = FIGURE10_SWITCH_COUNT,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> Dict[str, List]:
    """The §5 overhead claim: removal vs. designs with no deadlock handling."""
    _deprecated("overhead_vs_unprotected", "overhead")
    params: Dict = {"seed": seed, "switch_count": switch_count}
    if benchmarks is not None:
        params["benchmarks"] = list(benchmarks)
    return run_report("overhead", params, jobs=jobs)


def runtime_scaling(
    *,
    benchmarks: Optional[Sequence[str]] = None,
    switch_count: int = FIGURE10_SWITCH_COUNT,
    seed: int = 0,
) -> Dict[str, List]:
    """The §5 runtime claim: the method runs in seconds/minutes and scales.

    Kept on the direct path (not the cached runner): the whole point is to
    measure fresh synthesis and removal wall-clock, which a cache hit would
    falsify.
    """
    names = list(benchmarks or FIGURE10_BENCHMARKS)
    synthesis_seconds: List[float] = []
    removal_seconds: List[float] = []
    added_vcs: List[int] = []
    for name in names:
        traffic = get_benchmark(name, seed=seed)
        start = time.perf_counter()
        design = synthesize_design(traffic, SynthesisConfig(n_switches=switch_count, seed=seed))
        synthesis_seconds.append(time.perf_counter() - start)
        result = remove_deadlocks(design)
        removal_seconds.append(result.runtime_seconds)
        added_vcs.append(result.added_vc_count)
    return {
        "benchmarks": names,
        "switch_count": switch_count,
        "synthesis_seconds": synthesis_seconds,
        "removal_seconds": removal_seconds,
        "added_vcs": added_vcs,
        "total_removal_seconds": sum(removal_seconds),
    }
