"""Figure-level sweeps: one function per table/figure of the paper.

Each function returns plain dictionaries/lists so the benchmark harness can
print them and EXPERIMENTS.md can quote them directly.  The switch-count
grids match the x-axis ranges of the paper's figures.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from repro.analysis.experiments import compare_methods, sweep_switch_counts
from repro.analysis.metrics import arithmetic_mean
from repro.benchmarks.registry import get_benchmark
from repro.core.removal import remove_deadlocks
from repro.perf.executor import parallel_map
from repro.synthesis.builder import SynthesisConfig, synthesize_design

#: Switch counts of Figure 8 (D26_media, x-axis 5..25).
FIGURE8_SWITCH_COUNTS: List[int] = [5, 8, 11, 14, 17, 20, 23, 25]

#: Switch counts of Figure 9 (D36_8, x-axis 10..35).
FIGURE9_SWITCH_COUNTS: List[int] = [10, 14, 18, 22, 26, 30, 35]

#: Benchmarks of Figure 10, in the paper's plotting order.
FIGURE10_BENCHMARKS: List[str] = [
    "D26_media",
    "D36_4",
    "D36_6",
    "D36_8",
    "D35_bott",
    "D38_tvopd",
]

#: Switch count used for Figure 10 and the area/overhead claims
#: ("the values reported in the plot are for topologies with 14 switches").
FIGURE10_SWITCH_COUNT = 14


def _benchmark_point(args):
    """Process-pool worker for the per-benchmark sweeps (module-level for pickling)."""
    name, switch_count, seed = args
    return compare_methods(name, switch_count, seed=seed)


def _compare_benchmarks(names, switch_count, seed, jobs):
    """One :func:`compare_methods` per benchmark, optionally in parallel."""
    points = [(name, switch_count, seed) for name in names]
    return parallel_map(_benchmark_point, points, jobs=jobs)


def figure8_series(
    *,
    switch_counts: Optional[Sequence[int]] = None,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> Dict[str, List]:
    """Figure 8: extra VCs vs. switch count for D26_media."""
    counts = list(switch_counts or FIGURE8_SWITCH_COUNTS)
    comparisons = sweep_switch_counts("D26_media", counts, seed=seed, jobs=jobs)
    return {
        "benchmark": "D26_media",
        "switch_counts": counts,
        "resource_ordering_vcs": [c.ordering_extra_vcs for c in comparisons],
        "deadlock_removal_vcs": [c.removal_extra_vcs for c in comparisons],
    }


def figure9_series(
    *,
    switch_counts: Optional[Sequence[int]] = None,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> Dict[str, List]:
    """Figure 9: extra VCs vs. switch count for D36_8."""
    counts = list(switch_counts or FIGURE9_SWITCH_COUNTS)
    comparisons = sweep_switch_counts("D36_8", counts, seed=seed, jobs=jobs)
    return {
        "benchmark": "D36_8",
        "switch_counts": counts,
        "resource_ordering_vcs": [c.ordering_extra_vcs for c in comparisons],
        "deadlock_removal_vcs": [c.removal_extra_vcs for c in comparisons],
    }


def figure10_power_series(
    *,
    benchmarks: Optional[Sequence[str]] = None,
    switch_count: int = FIGURE10_SWITCH_COUNT,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> Dict[str, List]:
    """Figure 10: power of resource ordering normalised to deadlock removal."""
    names = list(benchmarks or FIGURE10_BENCHMARKS)
    removal_norm: List[float] = []
    ordering_norm: List[float] = []
    savings: List[float] = []
    for comparison in _compare_benchmarks(names, switch_count, seed, jobs):
        removal_norm.append(1.0)
        ordering_norm.append(comparison.normalised_ordering_power)
        savings.append(comparison.power_saving_percent)
    return {
        "benchmarks": names,
        "switch_count": switch_count,
        "deadlock_removal_normalised_power": removal_norm,
        "resource_ordering_normalised_power": ordering_norm,
        "power_saving_percent": savings,
        "average_power_saving_percent": arithmetic_mean(savings),
    }


def area_savings_table(
    *,
    benchmarks: Optional[Sequence[str]] = None,
    switch_count: int = FIGURE10_SWITCH_COUNT,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> Dict[str, List]:
    """The §5 area claim: VC and area reduction of removal vs. ordering."""
    names = list(benchmarks or FIGURE10_BENCHMARKS)
    vc_reduction: List[float] = []
    area_saving: List[float] = []
    removal_vcs: List[int] = []
    ordering_vcs: List[int] = []
    for comparison in _compare_benchmarks(names, switch_count, seed, jobs):
        vc_reduction.append(comparison.vc_reduction_percent)
        area_saving.append(comparison.area_saving_percent)
        removal_vcs.append(comparison.removal_extra_vcs)
        ordering_vcs.append(comparison.ordering_extra_vcs)
    return {
        "benchmarks": names,
        "switch_count": switch_count,
        "removal_extra_vcs": removal_vcs,
        "ordering_extra_vcs": ordering_vcs,
        "vc_reduction_percent": vc_reduction,
        "area_saving_percent": area_saving,
        "average_vc_reduction_percent": arithmetic_mean(vc_reduction),
        "average_area_saving_percent": arithmetic_mean(area_saving),
    }


def overhead_vs_unprotected(
    *,
    benchmarks: Optional[Sequence[str]] = None,
    switch_count: int = FIGURE10_SWITCH_COUNT,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> Dict[str, List]:
    """The §5 overhead claim: removal vs. designs with no deadlock handling."""
    names = list(benchmarks or FIGURE10_BENCHMARKS)
    power_overhead: List[float] = []
    area_overhead: List[float] = []
    for comparison in _compare_benchmarks(names, switch_count, seed, jobs):
        power_overhead.append(comparison.removal_power_overhead_percent)
        area_overhead.append(comparison.removal_area_overhead_percent)
    return {
        "benchmarks": names,
        "switch_count": switch_count,
        "power_overhead_percent": power_overhead,
        "area_overhead_percent": area_overhead,
        "average_power_overhead_percent": arithmetic_mean(power_overhead),
        "average_area_overhead_percent": arithmetic_mean(area_overhead),
    }


def runtime_scaling(
    *,
    benchmarks: Optional[Sequence[str]] = None,
    switch_count: int = FIGURE10_SWITCH_COUNT,
    seed: int = 0,
) -> Dict[str, List]:
    """The §5 runtime claim: the method runs in seconds/minutes and scales."""
    names = list(benchmarks or FIGURE10_BENCHMARKS)
    synthesis_seconds: List[float] = []
    removal_seconds: List[float] = []
    added_vcs: List[int] = []
    for name in names:
        traffic = get_benchmark(name, seed=seed)
        start = time.perf_counter()
        design = synthesize_design(traffic, SynthesisConfig(n_switches=switch_count, seed=seed))
        synthesis_seconds.append(time.perf_counter() - start)
        result = remove_deadlocks(design)
        removal_seconds.append(result.runtime_seconds)
        added_vcs.append(result.added_vc_count)
    return {
        "benchmarks": names,
        "switch_count": switch_count,
        "synthesis_seconds": synthesis_seconds,
        "removal_seconds": removal_seconds,
        "added_vcs": added_vcs,
        "total_removal_seconds": sum(removal_seconds),
    }
