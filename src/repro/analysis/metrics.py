"""Small numeric and formatting helpers shared by the experiment drivers."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence


def percent_change(reference: float, candidate: float) -> float:
    """Relative change of ``candidate`` vs ``reference`` in percent.

    Positive means the candidate is larger.  A zero reference with a zero
    candidate is 0%; a zero reference with a non-zero candidate is treated
    as a 100% increase (the convention the VC-overhead comparisons need:
    going from 0 extra VCs to any extra VCs is "all overhead").
    """
    if reference == 0:
        return 0.0 if candidate == 0 else 100.0
    return (candidate - reference) / reference * 100.0


def percent_reduction(reference: float, candidate: float) -> float:
    """How much smaller ``candidate`` is than ``reference``, in percent."""
    if reference == 0:
        return 0.0
    return (reference - candidate) / reference * 100.0


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (ignores non-positive entries, 0.0 when empty)."""
    positives = [v for v in values if v > 0]
    if not positives:
        return 0.0
    return math.exp(sum(math.log(v) for v in positives) / len(positives))


def arithmetic_mean(values: Sequence[float]) -> float:
    """Plain average (0.0 when empty)."""
    if not values:
        return 0.0
    return sum(values) / len(values)


def normalise(values: Dict[str, float], reference_key: str) -> Dict[str, float]:
    """Divide every value by the value at ``reference_key`` (as in Figure 10)."""
    reference = values[reference_key]
    if reference == 0:
        return {key: 0.0 for key in values}
    return {key: value / reference for key, value in values.items()}


def format_table(headers: List[str], rows: List[Sequence], *, precision: int = 2) -> str:
    """Render a list of rows as a fixed-width text table."""
    def fmt(value) -> str:
        if isinstance(value, float):
            return f"{value:.{precision}f}"
        return str(value)

    str_rows = [[fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in str_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
