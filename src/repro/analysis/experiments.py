"""The three-way comparison behind the paper's evaluation.

For a benchmark traffic specification and a switch count the paper's
experiments compare three variants of the same synthesized topology:

* **unprotected** — the synthesized design as-is (may deadlock);
* **deadlock removal** — the paper's algorithm (adds few VCs);
* **resource ordering** — the classic avoidance scheme (adds many VCs).

:func:`compare_methods` produces all three plus their VC counts, power and
area; :func:`sweep_switch_counts` repeats it over a range of switch counts,
which is exactly what Figures 8 and 9 plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Union

from repro.analysis.metrics import percent_reduction
from repro.api.registry import synthesis_backends
from repro.benchmarks.registry import get_benchmark
from repro.core.removal import DEFAULT_REMOVAL_ENGINE, remove_deadlocks
from repro.core.report import RemovalResult
from repro.model.design import NocDesign
from repro.model.traffic import CommunicationGraph
from repro.perf.executor import parallel_map
from repro.power.estimator import (
    NocAreaReport,
    NocPowerReport,
    estimate_power_and_area,
)
from repro.power.orion import TechnologyParameters
from repro.routing.ordering import (
    STRATEGY_HOP_INDEX,
    OrderingResult,
    apply_resource_ordering,
)
from repro.synthesis.builder import SynthesisConfig


@dataclass
class MethodComparison:
    """All numbers the evaluation needs for one (benchmark, switch count) point."""

    benchmark: str
    switch_count: int
    unprotected: NocDesign
    removal: RemovalResult
    ordering: OrderingResult
    unprotected_power: NocPowerReport
    removal_power: NocPowerReport
    ordering_power: NocPowerReport
    unprotected_area: NocAreaReport
    removal_area: NocAreaReport
    ordering_area: NocAreaReport

    # ------------------------------------------------------------------
    # headline numbers
    # ------------------------------------------------------------------
    @property
    def removal_extra_vcs(self) -> int:
        """Extra VCs added by the deadlock-removal algorithm."""
        return self.removal.added_vc_count

    @property
    def ordering_extra_vcs(self) -> int:
        """Extra VCs added by resource ordering."""
        return self.ordering.extra_vcs

    @property
    def vc_reduction_percent(self) -> float:
        """How many fewer VCs removal needs than ordering (the 88% claim)."""
        return percent_reduction(self.ordering_extra_vcs, self.removal_extra_vcs)

    @property
    def power_saving_percent(self) -> float:
        """Power saved by removal relative to ordering (the 8.6% claim)."""
        return percent_reduction(
            self.ordering_power.total_power_mw, self.removal_power.total_power_mw
        )

    @property
    def area_saving_percent(self) -> float:
        """Router+link area saved by removal relative to ordering (66% claim)."""
        return percent_reduction(
            self.ordering_area.total_area_mm2, self.removal_area.total_area_mm2
        )

    @property
    def removal_power_overhead_percent(self) -> float:
        """Power overhead of removal vs. the unprotected design (<5% claim)."""
        if self.unprotected_power.total_power_mw == 0:
            return 0.0
        return (
            self.removal_power.total_power_mw / self.unprotected_power.total_power_mw
            - 1.0
        ) * 100.0

    @property
    def removal_area_overhead_percent(self) -> float:
        """Area overhead of removal vs. the unprotected design (<5% claim)."""
        if self.unprotected_area.total_area_mm2 == 0:
            return 0.0
        return (
            self.removal_area.total_area_mm2 / self.unprotected_area.total_area_mm2
            - 1.0
        ) * 100.0

    @property
    def normalised_ordering_power(self) -> float:
        """Ordering power normalised to removal power (Figure 10's y-axis)."""
        if self.removal_power.total_power_mw == 0:
            return 0.0
        return self.ordering_power.total_power_mw / self.removal_power.total_power_mw

    def as_row(self) -> Dict[str, float]:
        """Flat dictionary for tables and JSON dumps."""
        return {
            "benchmark": self.benchmark,
            "switch_count": self.switch_count,
            "removal_extra_vcs": self.removal_extra_vcs,
            "ordering_extra_vcs": self.ordering_extra_vcs,
            "vc_reduction_percent": round(self.vc_reduction_percent, 2),
            "removal_power_mw": round(self.removal_power.total_power_mw, 3),
            "ordering_power_mw": round(self.ordering_power.total_power_mw, 3),
            "unprotected_power_mw": round(self.unprotected_power.total_power_mw, 3),
            "power_saving_percent": round(self.power_saving_percent, 2),
            "removal_area_mm2": round(self.removal_area.total_area_mm2, 4),
            "ordering_area_mm2": round(self.ordering_area.total_area_mm2, 4),
            "unprotected_area_mm2": round(self.unprotected_area.total_area_mm2, 4),
            "area_saving_percent": round(self.area_saving_percent, 2),
            "removal_power_overhead_percent": round(self.removal_power_overhead_percent, 2),
            "removal_area_overhead_percent": round(self.removal_area_overhead_percent, 2),
            "removal_runtime_s": round(self.removal.runtime_seconds, 4),
        }


@lru_cache(maxsize=None)
def resolve_benchmark_traffic(name: str, seed: int = 0) -> CommunicationGraph:
    """Benchmark traffic by registry name, memoised per process.

    Sweep workers call this instead of unpickling a full
    :class:`CommunicationGraph` per point: only the (name, seed) pair
    crosses the process boundary and the graph is built once per worker.
    Callers must treat the returned graph as read-only (the synthesis
    pipeline copies it into each design).
    """
    return get_benchmark(name, seed=seed)


def _resolve_traffic(
    benchmark: Union[str, CommunicationGraph], seed: int
) -> CommunicationGraph:
    if isinstance(benchmark, CommunicationGraph):
        return benchmark
    return resolve_benchmark_traffic(benchmark, seed)


def compare_methods(
    benchmark: Union[str, CommunicationGraph],
    switch_count: int,
    *,
    seed: int = 0,
    tech: Optional[TechnologyParameters] = None,
    synthesis_overrides: Optional[Dict] = None,
    engine: str = DEFAULT_REMOVAL_ENGINE,
    ordering_strategy: str = STRATEGY_HOP_INDEX,
    synthesis_backend: str = "custom",
    routing_engine: str = "indexed",
    topology_family: Optional[str] = None,
    family_params: Optional[Dict] = None,
    unprotected: Optional[NocDesign] = None,
) -> MethodComparison:
    """Run the full unprotected / removal / ordering comparison for one point.

    ``engine``, ``ordering_strategy``, ``synthesis_backend``,
    ``routing_engine`` and ``topology_family`` name entries of the
    pluggable registries in :mod:`repro.api.registry` (``topology_family``
    with its ``family_params`` routes synthesis through the parameterized
    generator).  Passing a pre-synthesized ``unprotected`` design (e.g.
    from the artifact cache) skips the synthesis step entirely.
    """
    if unprotected is None:
        # Only resolve the benchmark traffic when synthesis actually needs
        # it; with a pre-built design (e.g. from the artifact cache) the
        # design's own traffic copy carries everything downstream uses.
        traffic = _resolve_traffic(benchmark, seed)
        overrides = dict(synthesis_overrides or {})
        overrides.setdefault("routing_engine", routing_engine)
        if topology_family is not None:
            overrides.setdefault("topology_family", topology_family)
            overrides.setdefault("family_params", dict(family_params or {}))
        config = SynthesisConfig(n_switches=switch_count, seed=seed, **overrides)
        backend = synthesis_backends.get(synthesis_backend)
        unprotected = backend(traffic, config)
        benchmark_name = traffic.name
    else:
        benchmark_name = unprotected.traffic.name

    removal = remove_deadlocks(unprotected, engine=engine)
    ordering = apply_resource_ordering(unprotected, strategy=ordering_strategy)

    tech = tech or TechnologyParameters()
    # One fused pass per design: power and area share the router-load /
    # port-count / link-load derivations instead of re-deriving them.
    unprotected_power, unprotected_area = estimate_power_and_area(unprotected, tech=tech)
    removal_power, removal_area = estimate_power_and_area(removal.design, tech=tech)
    ordering_power, ordering_area = estimate_power_and_area(ordering.design, tech=tech)
    return MethodComparison(
        benchmark=benchmark_name,
        switch_count=switch_count,
        unprotected=unprotected,
        removal=removal,
        ordering=ordering,
        unprotected_power=unprotected_power,
        removal_power=removal_power,
        ordering_power=ordering_power,
        unprotected_area=unprotected_area,
        removal_area=removal_area,
        ordering_area=ordering_area,
    )


def _compare_point(args) -> MethodComparison:
    """Process-pool worker: one ``compare_methods`` point, fully materialised.

    Must stay module-level so :func:`repro.perf.executor.parallel_map` can
    pickle it into worker processes.  ``benchmark`` arrives as the registry
    *name* whenever possible — :func:`resolve_benchmark_traffic` then builds
    the traffic graph once per worker instead of unpickling it per point.
    """
    benchmark, count, seed, overrides = args
    return compare_methods(benchmark, count, seed=seed, synthesis_overrides=overrides)


def sweep_switch_counts(
    benchmark: Union[str, CommunicationGraph],
    switch_counts: Sequence[int],
    *,
    seed: int = 0,
    synthesis_overrides: Optional[Dict] = None,
    jobs: Optional[int] = None,
) -> List[MethodComparison]:
    """Repeat :func:`compare_methods` over several switch counts (Figures 8/9).

    Each point is an independent synthesize/remove/order/estimate pipeline;
    ``jobs`` fans them out over a process pool (results stay in
    ``switch_counts`` order; ``None``/``0``/``1`` runs serially).

    Legacy adapter: prefer a :class:`repro.api.spec.ExperimentPlan` over
    :class:`repro.api.runner.Runner`, which adds artifact caching and
    returns serializable :class:`~repro.api.result.RunResult` records.
    """
    if isinstance(benchmark, str):
        # Validate the name up front (and warm this process's memo); the
        # workers re-resolve from the name so no traffic graph is pickled.
        resolve_benchmark_traffic(benchmark, seed)
    points = [(benchmark, count, seed, synthesis_overrides) for count in switch_counts]
    return parallel_map(_compare_point, points, jobs=jobs)
