"""The three-way comparison behind the paper's evaluation.

For a benchmark traffic specification and a switch count the paper's
experiments compare three variants of the same synthesized topology:

* **unprotected** — the synthesized design as-is (may deadlock);
* **deadlock removal** — the paper's algorithm (adds few VCs);
* **resource ordering** — the classic avoidance scheme (adds many VCs).

:func:`compare_methods` produces all three plus their VC counts, power and
area; :func:`sweep_switch_counts` repeats it over a range of switch counts,
which is exactly what Figures 8 and 9 plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.analysis.metrics import percent_reduction
from repro.benchmarks.registry import get_benchmark
from repro.core.removal import remove_deadlocks
from repro.core.report import RemovalResult
from repro.model.design import NocDesign
from repro.model.traffic import CommunicationGraph
from repro.perf.executor import parallel_map
from repro.power.estimator import (
    NocAreaReport,
    NocPowerReport,
    estimate_area,
    estimate_power,
)
from repro.power.orion import TechnologyParameters
from repro.routing.ordering import OrderingResult, apply_resource_ordering
from repro.synthesis.builder import SynthesisConfig, synthesize_design


@dataclass
class MethodComparison:
    """All numbers the evaluation needs for one (benchmark, switch count) point."""

    benchmark: str
    switch_count: int
    unprotected: NocDesign
    removal: RemovalResult
    ordering: OrderingResult
    unprotected_power: NocPowerReport
    removal_power: NocPowerReport
    ordering_power: NocPowerReport
    unprotected_area: NocAreaReport
    removal_area: NocAreaReport
    ordering_area: NocAreaReport

    # ------------------------------------------------------------------
    # headline numbers
    # ------------------------------------------------------------------
    @property
    def removal_extra_vcs(self) -> int:
        """Extra VCs added by the deadlock-removal algorithm."""
        return self.removal.added_vc_count

    @property
    def ordering_extra_vcs(self) -> int:
        """Extra VCs added by resource ordering."""
        return self.ordering.extra_vcs

    @property
    def vc_reduction_percent(self) -> float:
        """How many fewer VCs removal needs than ordering (the 88% claim)."""
        return percent_reduction(self.ordering_extra_vcs, self.removal_extra_vcs)

    @property
    def power_saving_percent(self) -> float:
        """Power saved by removal relative to ordering (the 8.6% claim)."""
        return percent_reduction(
            self.ordering_power.total_power_mw, self.removal_power.total_power_mw
        )

    @property
    def area_saving_percent(self) -> float:
        """Router+link area saved by removal relative to ordering (66% claim)."""
        return percent_reduction(
            self.ordering_area.total_area_mm2, self.removal_area.total_area_mm2
        )

    @property
    def removal_power_overhead_percent(self) -> float:
        """Power overhead of removal vs. the unprotected design (<5% claim)."""
        if self.unprotected_power.total_power_mw == 0:
            return 0.0
        return (
            self.removal_power.total_power_mw / self.unprotected_power.total_power_mw
            - 1.0
        ) * 100.0

    @property
    def removal_area_overhead_percent(self) -> float:
        """Area overhead of removal vs. the unprotected design (<5% claim)."""
        if self.unprotected_area.total_area_mm2 == 0:
            return 0.0
        return (
            self.removal_area.total_area_mm2 / self.unprotected_area.total_area_mm2
            - 1.0
        ) * 100.0

    @property
    def normalised_ordering_power(self) -> float:
        """Ordering power normalised to removal power (Figure 10's y-axis)."""
        if self.removal_power.total_power_mw == 0:
            return 0.0
        return self.ordering_power.total_power_mw / self.removal_power.total_power_mw

    def as_row(self) -> Dict[str, float]:
        """Flat dictionary for tables and JSON dumps."""
        return {
            "benchmark": self.benchmark,
            "switch_count": self.switch_count,
            "removal_extra_vcs": self.removal_extra_vcs,
            "ordering_extra_vcs": self.ordering_extra_vcs,
            "vc_reduction_percent": round(self.vc_reduction_percent, 2),
            "removal_power_mw": round(self.removal_power.total_power_mw, 3),
            "ordering_power_mw": round(self.ordering_power.total_power_mw, 3),
            "unprotected_power_mw": round(self.unprotected_power.total_power_mw, 3),
            "power_saving_percent": round(self.power_saving_percent, 2),
            "removal_area_mm2": round(self.removal_area.total_area_mm2, 4),
            "ordering_area_mm2": round(self.ordering_area.total_area_mm2, 4),
            "unprotected_area_mm2": round(self.unprotected_area.total_area_mm2, 4),
            "area_saving_percent": round(self.area_saving_percent, 2),
            "removal_power_overhead_percent": round(self.removal_power_overhead_percent, 2),
            "removal_area_overhead_percent": round(self.removal_area_overhead_percent, 2),
            "removal_runtime_s": round(self.removal.runtime_seconds, 4),
        }


def _resolve_traffic(
    benchmark: Union[str, CommunicationGraph], seed: int
) -> CommunicationGraph:
    if isinstance(benchmark, CommunicationGraph):
        return benchmark
    return get_benchmark(benchmark, seed=seed)


def compare_methods(
    benchmark: Union[str, CommunicationGraph],
    switch_count: int,
    *,
    seed: int = 0,
    tech: Optional[TechnologyParameters] = None,
    synthesis_overrides: Optional[Dict] = None,
) -> MethodComparison:
    """Run the full unprotected / removal / ordering comparison for one point."""
    traffic = _resolve_traffic(benchmark, seed)
    overrides = dict(synthesis_overrides or {})
    config = SynthesisConfig(n_switches=switch_count, seed=seed, **overrides)
    unprotected = synthesize_design(traffic, config)

    removal = remove_deadlocks(unprotected)
    ordering = apply_resource_ordering(unprotected)

    tech = tech or TechnologyParameters()
    return MethodComparison(
        benchmark=traffic.name,
        switch_count=switch_count,
        unprotected=unprotected,
        removal=removal,
        ordering=ordering,
        unprotected_power=estimate_power(unprotected, tech=tech),
        removal_power=estimate_power(removal.design, tech=tech),
        ordering_power=estimate_power(ordering.design, tech=tech),
        unprotected_area=estimate_area(unprotected, tech=tech),
        removal_area=estimate_area(removal.design, tech=tech),
        ordering_area=estimate_area(ordering.design, tech=tech),
    )


def _compare_point(args) -> MethodComparison:
    """Process-pool worker: one ``compare_methods`` point, fully materialised.

    Must stay module-level so :func:`repro.perf.executor.parallel_map` can
    pickle it into worker processes.
    """
    traffic, count, seed, overrides = args
    return compare_methods(traffic, count, seed=seed, synthesis_overrides=overrides)


def sweep_switch_counts(
    benchmark: Union[str, CommunicationGraph],
    switch_counts: Sequence[int],
    *,
    seed: int = 0,
    synthesis_overrides: Optional[Dict] = None,
    jobs: Optional[int] = None,
) -> List[MethodComparison]:
    """Repeat :func:`compare_methods` over several switch counts (Figures 8/9).

    Each point is an independent synthesize/remove/order/estimate pipeline;
    ``jobs`` fans them out over a process pool (results stay in
    ``switch_counts`` order; ``None``/``0``/``1`` runs serially).
    """
    traffic = _resolve_traffic(benchmark, seed)
    points = [(traffic, count, seed, synthesis_overrides) for count in switch_counts]
    return parallel_map(_compare_point, points, jobs=jobs)
