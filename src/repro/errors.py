"""Exception hierarchy for the NoC deadlock-removal library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class DesignError(ReproError):
    """A NoC design object (topology, traffic, routes) is malformed."""


class TopologyError(DesignError):
    """The topology graph is inconsistent (unknown switch, duplicate link...)."""


class TrafficError(DesignError):
    """The communication graph is inconsistent (unknown core, duplicate flow...)."""


class RouteError(DesignError):
    """A route is inconsistent with the topology or the flow it serves."""


class ValidationError(DesignError):
    """A full-design validation pass failed.

    The ``problems`` attribute carries the individual findings so callers can
    report all of them instead of only the first one.
    """

    def __init__(self, problems):
        self.problems = list(problems)
        summary = "; ".join(str(p) for p in self.problems[:5])
        extra = "" if len(self.problems) <= 5 else f" (+{len(self.problems) - 5} more)"
        super().__init__(f"design validation failed: {summary}{extra}")


class SerializationError(ReproError):
    """A design file could not be parsed or written."""


class PlanError(ReproError):
    """An experiment plan document (RunSpec / ExperimentPlan) is malformed."""


class RegistryError(ReproError):
    """An unknown name was requested from a strategy registry."""


class CycleSearchError(ReproError):
    """Cycle search was asked something impossible (e.g. empty CDG node)."""


class RemovalError(ReproError):
    """The deadlock-removal algorithm could not complete."""


class ConvergenceError(RemovalError):
    """The removal loop exceeded its iteration budget without reaching an
    acyclic channel dependency graph."""

    def __init__(self, iterations, remaining_cycles):
        self.iterations = iterations
        self.remaining_cycles = remaining_cycles
        super().__init__(
            f"deadlock removal did not converge after {iterations} iterations; "
            f"{remaining_cycles} cycle(s) remain in the CDG"
        )


class OrderingError(ReproError):
    """The resource-ordering baseline could not assign consistent classes."""


class SynthesisError(ReproError):
    """Topology synthesis failed (e.g. unsatisfiable constraints)."""


class PowerModelError(ReproError):
    """The power/area model was given parameters outside its valid domain."""


class SimulationError(ReproError):
    """The wormhole simulator hit an internal inconsistency."""


class DeadlockDetected(SimulationError):
    """The simulator detected a routing deadlock at run time.

    This is deliberately an exception *and* a reportable result: benchmarks
    that expect a deadlock catch it, while users simulating a supposedly
    deadlock-free design get a loud failure.
    """

    def __init__(self, cycle, blocked_channels, message=None):
        self.cycle = cycle
        self.blocked_channels = list(blocked_channels)
        super().__init__(
            message
            or (
                f"deadlock detected at cycle {cycle}: "
                f"{len(self.blocked_channels)} channel(s) in a cyclic wait"
            )
        )


class BenchmarkError(ReproError):
    """An unknown benchmark was requested from the registry."""
