"""Per-switch routing tables derived from a route set.

A real NoC switch does not store whole routes; it stores, per (input,
destination) pair — or per flow with source routing — which output channel
to use.  This module derives those tables from a
:class:`~repro.model.routes.RouteSet`.  The wormhole simulator uses source
routing (the route travels in the packet header), so the tables here exist
for completeness of the substrate: exporting a design to RTL or to another
simulator needs them, and they also give a convenient way to check route
consistency per switch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import RouteError
from repro.model.channels import Channel
from repro.model.design import NocDesign


@dataclass
class RoutingTable:
    """Routing table of a single switch.

    ``entries`` maps ``(flow_name, incoming_channel_or_None)`` to the output
    channel the flow takes at this switch.  ``None`` as the incoming channel
    means the flow is injected locally at this switch (its source core is
    attached here).
    """

    switch: str
    entries: Dict[Tuple[str, Optional[Channel]], Channel] = field(default_factory=dict)

    def add_entry(
        self, flow_name: str, incoming: Optional[Channel], outgoing: Channel
    ) -> None:
        """Add one table entry; conflicting duplicates are an error."""
        key = (flow_name, incoming)
        existing = self.entries.get(key)
        if existing is not None and existing != outgoing:
            raise RouteError(
                f"switch {self.switch!r}: conflicting routing entries for flow "
                f"{flow_name!r}: {existing.name} vs {outgoing.name}"
            )
        self.entries[key] = outgoing

    def lookup(self, flow_name: str, incoming: Optional[Channel]) -> Channel:
        """Output channel for a flow arriving on ``incoming`` (None = local)."""
        try:
            return self.entries[(flow_name, incoming)]
        except KeyError:
            raise RouteError(
                f"switch {self.switch!r} has no routing entry for flow {flow_name!r} "
                f"arriving on {incoming.name if incoming else 'local port'}"
            ) from None

    def output_channels(self) -> List[Channel]:
        """Distinct output channels used by this switch, sorted."""
        return sorted(set(self.entries.values()))

    @property
    def entry_count(self) -> int:
        """Number of table entries."""
        return len(self.entries)


def build_routing_tables(design: NocDesign) -> Dict[str, RoutingTable]:
    """Build one :class:`RoutingTable` per switch from the design's routes."""
    tables: Dict[str, RoutingTable] = {
        switch: RoutingTable(switch) for switch in design.topology.switches
    }
    for flow_name, route in design.routes.items():
        previous: Optional[Channel] = None
        for channel in route:
            switch = channel.src
            if switch not in tables:
                raise RouteError(
                    f"flow {flow_name!r} routes through unknown switch {switch!r}"
                )
            tables[switch].add_entry(flow_name, previous, channel)
            previous = channel
    return tables


def table_sizes(design: NocDesign) -> Dict[str, int]:
    """Number of routing entries per switch (a proxy for routing-logic cost)."""
    return {
        switch: table.entry_count
        for switch, table in build_routing_tables(design).items()
    }
