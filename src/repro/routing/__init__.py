"""Route computation and deadlock-avoidance baselines.

* :mod:`repro.routing.shortest_path` — deterministic weighted shortest-path
  route computation over an arbitrary topology (the "routing function" the
  paper takes as input).
* :mod:`repro.routing.tables` — per-switch routing tables derived from a
  route set (what a real NoC switch would store).
* :mod:`repro.routing.ordering` — the resource-ordering baseline the paper
  compares against (Dally & Towles resource classes).
* :mod:`repro.routing.turns` — turn-prohibition utilities (up*/down* routing
  on arbitrary topologies, XY routing on meshes) used by the synthesis
  substrate and as an extra point of comparison.
"""

from repro.routing.ordering import OrderingResult, apply_resource_ordering
from repro.routing.shortest_path import compute_routes, shortest_route
from repro.routing.tables import RoutingTable, build_routing_tables

__all__ = [
    "compute_routes",
    "shortest_route",
    "RoutingTable",
    "build_routing_tables",
    "apply_resource_ordering",
    "OrderingResult",
]
