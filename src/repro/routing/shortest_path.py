"""Deterministic shortest-path route computation.

The paper takes routes as an input ("the description of the routes"); in
practice they come from the topology-synthesis tool, which routes every flow
on a weighted shortest path.  This module provides that routing function for
our synthesis substrate and for user-built topologies.

Routes are computed per flow with Dijkstra's algorithm over the switch
graph.  Edge weights can be pure hop count, static link weights or
congestion-aware weights (previously routed bandwidth inflates a link's
cost), all with deterministic tie-breaking so repeated runs produce
identical designs.

Two interchangeable engines implement the per-design routing loop, looked up
by name in the pluggable :data:`repro.api.registry.routing_engines` registry
(new engines register with a decorator and become valid ``engine=`` values
everywhere, including ``RunSpec.routing_engine`` and the CLI):

* ``engine="indexed"`` (default) — the indexed engine from
  :mod:`repro.perf.route_engine`: int-relabelled switch graph, per-node
  label Dijkstra and incremental congestion reweighting.  Polynomial on
  every topology and proven route-identical to the legacy search.
* ``engine="legacy"`` — the seed behaviour: best-first search carrying full
  path tuples in the heap.  Exponential on regular grids (every equal-cost
  path is expanded) but kept as the executable reference the ``cross_check``
  debug flag compares against.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.api.registry import routing_engines
from repro.errors import RouteError
from repro.model.channels import Channel, Link
from repro.model.design import NocDesign
from repro.model.routes import Route, RouteSet
from repro.model.topology import Topology
from repro.perf.design_context import DesignContext
from repro.perf.route_engine import IndexedRouter, SwitchGraph

WEIGHT_HOPS = "hops"
WEIGHT_CONGESTION = "congestion"
_WEIGHT_MODES = (WEIGHT_HOPS, WEIGHT_CONGESTION)

ENGINE_INDEXED = "indexed"
ENGINE_LEGACY = "legacy"
#: Engine used when callers do not choose one explicitly.
DEFAULT_ROUTING_ENGINE = ENGINE_INDEXED


def _legacy_dijkstra(
    topology: Topology,
    source: str,
    target: str,
    link_weights: Dict[Link, float],
) -> Optional[List[Link]]:
    """Cheapest link path from ``source`` to ``target`` (None if unreachable).

    Ties are broken by the lexicographic order of the switch sequence, which
    makes the routing function deterministic regardless of dict ordering.

    This is the seed implementation, kept verbatim as the reference the
    indexed engine is cross-checked against.  Every heap entry carries the
    full path, so equal-cost paths are all expanded — exponential on regular
    grids; use the indexed engine for real workloads.
    """
    if source == target:
        return []
    # priority queue entries: (cost, path_switch_names, current, links)
    heap: List[Tuple[float, Tuple[str, ...], str, Tuple[Link, ...]]] = [
        (0.0, (source,), source, ())
    ]
    best: Dict[str, float] = {}
    while heap:
        cost, names, current, links = heapq.heappop(heap)
        if current == target:
            return list(links)
        if current in best and best[current] < cost - 1e-12:
            continue
        best[current] = min(best.get(current, float("inf")), cost)
        for link in topology.out_links(current):
            step = link_weights.get(link, 1.0)
            next_cost = cost + step
            if link.dst in best and best[link.dst] < next_cost - 1e-12:
                continue
            heapq.heappush(
                heap,
                (next_cost, names + (link.dst,), link.dst, links + (link,)),
            )
    return None


def _check_engine(engine: str) -> str:
    """Validate an engine name against the registry (RouteError on unknown)."""
    if engine not in routing_engines:
        raise RouteError(
            f"unknown routing engine {engine!r}; "
            f"available: {', '.join(routing_engines.names())}"
        )
    return engine


def shortest_route(
    topology: Topology,
    source_switch: str,
    destination_switch: str,
    *,
    link_weights: Optional[Dict[Link, float]] = None,
    engine: str = DEFAULT_ROUTING_ENGINE,
) -> Route:
    """Shortest route between two switches (VC 0 on every hop).

    Raises :class:`~repro.errors.RouteError` when no path exists or when the
    two switches are identical (a same-switch flow needs no network route).

    ``engine`` selects the search implementation and accepts only the two
    built-ins — a third-party registry entry defines a *design-level*
    routing loop (see :func:`compute_routes`), not a single-pair search, so
    silently serving it with the indexed search would misrepresent it.
    Both built-ins return identical routes.  Non-positive link weights are
    outside the indexed engine's equivalence argument, so such inputs
    transparently fall back to the legacy search.
    """
    if engine not in (ENGINE_INDEXED, ENGINE_LEGACY):
        raise RouteError(
            f"unknown single-pair routing engine {engine!r}; shortest_route "
            f"supports the built-ins {ENGINE_INDEXED!r} and {ENGINE_LEGACY!r} "
            "(registered third-party engines operate on whole designs via "
            "compute_routes)"
        )
    if source_switch == destination_switch:
        raise RouteError(
            f"source and destination switch are both {source_switch!r}; "
            "no network route is needed"
        )
    weights = link_weights or {}
    use_indexed = engine != ENGINE_LEGACY and all(
        value > 0 for value in weights.values()
    )
    if use_indexed:
        graph = SwitchGraph(topology)
        graph.set_weights(weights)
        # Probe the source eagerly so an unknown switch raises the same
        # TopologyError the legacy search gets from topology.out_links().
        source_id = graph.switch_id(source_switch)
        if destination_switch in graph.id_of:
            path = graph.shortest_path(source_id, graph.id_of[destination_switch])
            links = None if path is None else [graph.links[lid] for lid in path]
        else:
            links = None
    else:
        links = _legacy_dijkstra(topology, source_switch, destination_switch, weights)
    if links is None:
        raise RouteError(
            f"no path from {source_switch!r} to {destination_switch!r} in topology "
            f"{topology.name!r}"
        )
    return Route([Channel(link, 0) for link in links])


# ----------------------------------------------------------------------
# Routing-engine registry entries.  An engine routes every flow of a design
# under the given weight mode and returns the design's route set;
# compute_routes() validates arguments and dispatches here.
# ----------------------------------------------------------------------

@routing_engines.register(ENGINE_LEGACY)
def _legacy_compute_routes(
    design: NocDesign,
    *,
    weight_mode: str,
    congestion_factor: float,
    overwrite: bool,
) -> RouteSet:
    """Seed engine: full weight dict + path-tuple Dijkstra per flow."""
    topology = design.topology
    routed_bandwidth: Dict[Link, float] = {link: 0.0 for link in topology.links}
    total_bandwidth = max(design.traffic.total_bandwidth, 1e-9)

    flows = sorted(design.traffic.flows, key=lambda f: (-f.bandwidth, f.name))
    for flow in flows:
        if not overwrite and design.routes.has_route(flow.name):
            for channel in design.routes.route(flow.name):
                routed_bandwidth[channel.link] += flow.bandwidth
            continue
        src_switch = design.switch_of(flow.src)
        dst_switch = design.switch_of(flow.dst)
        if src_switch == dst_switch:
            if design.routes.has_route(flow.name):
                design.routes.remove_route(flow.name)
            continue
        if weight_mode == WEIGHT_HOPS or congestion_factor == 0:
            weights = {link: 1.0 for link in topology.links}
        else:
            weights = {
                link: 1.0 + congestion_factor * routed_bandwidth[link] / total_bandwidth
                for link in topology.links
            }
        route = shortest_route(
            topology, src_switch, dst_switch, link_weights=weights, engine=ENGINE_LEGACY
        )
        design.routes.set_route(flow.name, route)
        for channel in route:
            routed_bandwidth[channel.link] += flow.bandwidth
    return design.routes


@routing_engines.register(ENGINE_INDEXED)
def _indexed_compute_routes(
    design: NocDesign,
    *,
    weight_mode: str,
    congestion_factor: float,
    overwrite: bool,
) -> RouteSet:
    """Default engine: batched int-indexed graph + incremental reweighting.

    The int-relabelled :class:`SwitchGraph` comes from the design's
    :class:`~repro.perf.design_context.DesignContext`, so the many
    ``compute_routes`` calls of a removal run (or of a benchmark's repeated
    rounds) share one adjacency build instead of rebuilding per call; the
    router still resets the weight array, so each call starts from the
    same zero-congestion state as a fresh graph.
    """
    if congestion_factor < 0:
        # A negative factor can drive link weights to zero or below, where
        # the per-node label argument (and Dijkstra itself) is unsound —
        # serve such inputs with the reference search, like shortest_route
        # does for non-positive explicit weights.
        return _legacy_compute_routes(
            design,
            weight_mode=weight_mode,
            congestion_factor=congestion_factor,
            overwrite=overwrite,
        )
    congestion = weight_mode == WEIGHT_CONGESTION and congestion_factor != 0
    router = IndexedRouter(
        design.topology,
        congestion_factor=congestion_factor if congestion else 0.0,
        total_bandwidth=max(design.traffic.total_bandwidth, 1e-9),
        graph=DesignContext.of(design).graph(),
    )
    flows = sorted(design.traffic.flows, key=lambda f: (-f.bandwidth, f.name))
    for flow in flows:
        if not overwrite and design.routes.has_route(flow.name):
            router.commit(design.routes.route(flow.name), flow.bandwidth)
            continue
        src_switch = design.switch_of(flow.src)
        dst_switch = design.switch_of(flow.dst)
        if src_switch == dst_switch:
            if design.routes.has_route(flow.name):
                design.routes.remove_route(flow.name)
            continue
        route = router.route(src_switch, dst_switch)
        design.routes.set_route(flow.name, route)
        router.commit(route, flow.bandwidth)
    return design.routes


def compute_routes(
    design: NocDesign,
    *,
    weight_mode: str = WEIGHT_CONGESTION,
    congestion_factor: float = 0.5,
    overwrite: bool = True,
    engine: Optional[str] = None,
    cross_check: bool = False,
) -> RouteSet:
    """Compute routes for every flow of a design and store them on it.

    Parameters
    ----------
    weight_mode:
        ``"hops"`` routes every flow on a minimum-hop path; ``"congestion"``
        (default) additionally inflates the weight of links proportionally
        to the bandwidth already routed over them, spreading heavy flows.
    congestion_factor:
        Strength of the congestion term (0 disables it even in congestion
        mode).
    overwrite:
        When false, flows that already have a route keep it.
    engine:
        Routing engine name from :data:`repro.api.registry.routing_engines`
        (``None`` = :data:`DEFAULT_ROUTING_ENGINE`).
    cross_check:
        Debug flag: additionally run the *other* built-in engine on a
        scratch copy and raise :class:`~repro.errors.RouteError` unless both
        produced identical route sets (expensive — tests and debugging
        only).

    Flows whose endpoints map to the same switch get no route (they never
    enter the network).  Returns the design's route set.
    """
    if weight_mode not in _WEIGHT_MODES:
        raise RouteError(f"unknown weight mode {weight_mode!r}")
    engine_name = _check_engine(engine or DEFAULT_ROUTING_ENGINE)
    expected: Optional[RouteSet] = None
    if cross_check:
        reference = ENGINE_LEGACY if engine_name != ENGINE_LEGACY else ENGINE_INDEXED
        scratch = design.copy()
        expected = routing_engines.get(reference)(
            scratch,
            weight_mode=weight_mode,
            congestion_factor=congestion_factor,
            overwrite=overwrite,
        )
    routes = routing_engines.get(engine_name)(
        design,
        weight_mode=weight_mode,
        congestion_factor=congestion_factor,
        overwrite=overwrite,
    )
    if expected is not None and routes != expected:
        differing = sorted(
            name
            for name in set(routes.flow_names) | set(expected.flow_names)
            if not (
                routes.has_route(name)
                and expected.has_route(name)
                and routes.route(name) == expected.route(name)
            )
        )
        shown = ", ".join(differing[:5])
        extra = "" if len(differing) <= 5 else f" (+{len(differing) - 5} more)"
        raise RouteError(
            f"routing engine {engine_name!r} diverged from the reference on "
            f"{len(differing)} flow(s): {shown}{extra}"
        )
    return routes


def average_hop_count(design: NocDesign) -> float:
    """Bandwidth-weighted average route length (a common NoC quality metric)."""
    total_weight = 0.0
    total_hops = 0.0
    for flow in design.traffic.flows:
        if not design.routes.has_route(flow.name):
            continue
        total_weight += flow.bandwidth
        total_hops += flow.bandwidth * design.routes.route(flow.name).hop_count
    if total_weight == 0:
        return 0.0
    return total_hops / total_weight
