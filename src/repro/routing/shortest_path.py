"""Deterministic shortest-path route computation.

The paper takes routes as an input ("the description of the routes"); in
practice they come from the topology-synthesis tool, which routes every flow
on a weighted shortest path.  This module provides that routing function for
our synthesis substrate and for user-built topologies.

Routes are computed per flow with Dijkstra's algorithm over the switch
graph.  Edge weights can be pure hop count, static link weights or
congestion-aware weights (previously routed bandwidth inflates a link's
cost), all with deterministic tie-breaking so repeated runs produce
identical designs.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.errors import RouteError
from repro.model.channels import Channel, Link
from repro.model.design import NocDesign
from repro.model.routes import Route, RouteSet
from repro.model.topology import Topology

WEIGHT_HOPS = "hops"
WEIGHT_CONGESTION = "congestion"
_WEIGHT_MODES = (WEIGHT_HOPS, WEIGHT_CONGESTION)


def _dijkstra(
    topology: Topology,
    source: str,
    target: str,
    link_weights: Dict[Link, float],
) -> Optional[List[Link]]:
    """Cheapest link path from ``source`` to ``target`` (None if unreachable).

    Ties are broken by the lexicographic order of the switch sequence, which
    makes the routing function deterministic regardless of dict ordering.
    """
    if source == target:
        return []
    # priority queue entries: (cost, path_switch_names, current, links)
    heap: List[Tuple[float, Tuple[str, ...], str, Tuple[Link, ...]]] = [
        (0.0, (source,), source, ())
    ]
    best: Dict[str, float] = {}
    while heap:
        cost, names, current, links = heapq.heappop(heap)
        if current == target:
            return list(links)
        if current in best and best[current] < cost - 1e-12:
            continue
        best[current] = min(best.get(current, float("inf")), cost)
        for link in topology.out_links(current):
            step = link_weights.get(link, 1.0)
            next_cost = cost + step
            if link.dst in best and best[link.dst] < next_cost - 1e-12:
                continue
            heapq.heappush(
                heap,
                (next_cost, names + (link.dst,), link.dst, links + (link,)),
            )
    return None


def shortest_route(
    topology: Topology,
    source_switch: str,
    destination_switch: str,
    *,
    link_weights: Optional[Dict[Link, float]] = None,
) -> Route:
    """Shortest route between two switches (VC 0 on every hop).

    Raises :class:`~repro.errors.RouteError` when no path exists or when the
    two switches are identical (a same-switch flow needs no network route).
    """
    if source_switch == destination_switch:
        raise RouteError(
            f"source and destination switch are both {source_switch!r}; "
            "no network route is needed"
        )
    links = _dijkstra(topology, source_switch, destination_switch, link_weights or {})
    if links is None:
        raise RouteError(
            f"no path from {source_switch!r} to {destination_switch!r} in topology "
            f"{topology.name!r}"
        )
    return Route([Channel(link, 0) for link in links])


def compute_routes(
    design: NocDesign,
    *,
    weight_mode: str = WEIGHT_CONGESTION,
    congestion_factor: float = 0.5,
    overwrite: bool = True,
) -> RouteSet:
    """Compute routes for every flow of a design and store them on it.

    Parameters
    ----------
    weight_mode:
        ``"hops"`` routes every flow on a minimum-hop path; ``"congestion"``
        (default) additionally inflates the weight of links proportionally
        to the bandwidth already routed over them, spreading heavy flows.
    congestion_factor:
        Strength of the congestion term (0 disables it even in congestion
        mode).
    overwrite:
        When false, flows that already have a route keep it.

    Flows whose endpoints map to the same switch get no route (they never
    enter the network).  Returns the design's route set.
    """
    if weight_mode not in _WEIGHT_MODES:
        raise RouteError(f"unknown weight mode {weight_mode!r}")
    topology = design.topology
    routed_bandwidth: Dict[Link, float] = {link: 0.0 for link in topology.links}
    total_bandwidth = max(design.traffic.total_bandwidth, 1e-9)

    # Route heavy flows first so they get the short paths and light flows
    # detour around them — the usual NoC mapping practice.
    flows = sorted(design.traffic.flows, key=lambda f: (-f.bandwidth, f.name))
    for flow in flows:
        if not overwrite and design.routes.has_route(flow.name):
            for channel in design.routes.route(flow.name):
                routed_bandwidth[channel.link] += flow.bandwidth
            continue
        src_switch = design.switch_of(flow.src)
        dst_switch = design.switch_of(flow.dst)
        if src_switch == dst_switch:
            if design.routes.has_route(flow.name):
                design.routes.remove_route(flow.name)
            continue
        if weight_mode == WEIGHT_HOPS or congestion_factor == 0:
            weights = {link: 1.0 for link in topology.links}
        else:
            weights = {
                link: 1.0 + congestion_factor * routed_bandwidth[link] / total_bandwidth
                for link in topology.links
            }
        route = shortest_route(topology, src_switch, dst_switch, link_weights=weights)
        design.routes.set_route(flow.name, route)
        for channel in route:
            routed_bandwidth[channel.link] += flow.bandwidth
    return design.routes


def average_hop_count(design: NocDesign) -> float:
    """Bandwidth-weighted average route length (a common NoC quality metric)."""
    total_weight = 0.0
    total_hops = 0.0
    for flow in design.traffic.flows:
        if not design.routes.has_route(flow.name):
            continue
        total_weight += flow.bandwidth
        total_hops += flow.bandwidth * design.routes.route(flow.name).hop_count
    if total_weight == 0:
        return 0.0
    return total_hops / total_weight
