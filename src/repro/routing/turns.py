"""Turn-prohibition utilities: up*/down* routing and XY routing.

These are the classical deadlock-*avoidance* techniques the related-work
section of the paper contrasts with ([17], [18] and mesh turn models): they
restrict the routing function so the CDG can never contain a cycle, at the
price of longer routes or of only being applicable during topology
construction.  The library implements them for three reasons:

* the synthesis substrate can optionally emit up*/down* routes, reproducing
  the observation (Section 5) that many application-specific topologies are
  deadlock free even without restrictions;
* they serve as an extra comparison point in the ablation benchmarks;
* they exercise the CDG machinery from a different angle in the tests
  (up*/down* and XY route sets must always yield acyclic CDGs).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.errors import RouteError
from repro.model.channels import Channel, Link
from repro.model.design import NocDesign
from repro.model.routes import Route, RouteSet
from repro.model.topology import Topology
from repro.perf.design_context import DesignContext
from repro.perf.route_engine import SwitchGraph


def bfs_levels(topology: Topology, root: str) -> Dict[str, int]:
    """Breadth-first levels of every switch from ``root`` (undirected)."""
    if not topology.has_switch(root):
        raise RouteError(f"unknown root switch {root!r}")
    levels = {root: 0}
    queue = deque([root])
    while queue:
        node = queue.popleft()
        neighbors = set(topology.neighbors(node))
        neighbors.update(link.src for link in topology.in_links(node))
        for neighbor in sorted(neighbors):
            if neighbor not in levels:
                levels[neighbor] = levels[node] + 1
                queue.append(neighbor)
    return levels


def updown_orientation(topology: Topology, root: Optional[str] = None) -> Dict[Link, str]:
    """Classify every directed link as ``"up"`` (towards the root) or
    ``"down"`` (away from the root) for up*/down* routing.

    Ties (links between switches on the same BFS level) are broken by switch
    name so the orientation is acyclic and deterministic.
    """
    if root is None:
        root = min(topology.switches)
    levels = bfs_levels(topology, root)
    orientation: Dict[Link, str] = {}
    for link in topology.links:
        src_key = (levels.get(link.src, len(levels)), link.src)
        dst_key = (levels.get(link.dst, len(levels)), link.dst)
        orientation[link] = "up" if dst_key < src_key else "down"
    return orientation


def _updown_up_flags(graph: SwitchGraph, orientation: Dict[Link, str]) -> List[bool]:
    """Per-link-id "is an up link" flags for a :class:`SwitchGraph`."""
    return [orientation[link] == "up" for link in graph.links]


def _updown_search(
    graph: SwitchGraph, up: List[bool], source_id: int, target_id: int
) -> Optional[List[int]]:
    """BFS for the first legal up*/down* path, over the indexed graph.

    States are ``(switch id, phase)`` where phase 0 = still allowed to go
    up, phase 1 = already went down (only down links allowed from now on).
    Links are visited in sorted link order — identical traversal, and thus
    identical routes, to the original per-flow name-based BFS.
    """
    start = source_id * 2
    parents: Dict[int, Tuple[int, int]] = {}
    seen = {start}
    queue = deque([start])
    out = graph.out
    goal: Optional[int] = None
    while queue and goal is None:
        state = queue.popleft()
        node, phase = state >> 1, state & 1
        for dst, lid in out[node]:
            is_up = up[lid]
            if phase == 1 and is_up:
                continue
            next_state = dst * 2 + (phase if is_up else 1)
            if next_state in seen:
                continue
            seen.add(next_state)
            parents[next_state] = (state, lid)
            if dst == target_id:
                goal = next_state
                break
            queue.append(next_state)
    if goal is None:
        return None
    links: List[int] = []
    state = goal
    while state != start:
        state, lid = parents[state]
        links.append(lid)
    links.reverse()
    return links


def _updown_route_between(
    graph: SwitchGraph, up: List[bool], source_switch: str, destination_switch: str
) -> Route:
    """Search + Route construction shared by the single-pair and per-design
    entry points.  An unknown *destination* (or an exhausted search) raises
    the documented RouteError; an unknown *source* raises TopologyError,
    matching the original per-flow BFS which touched the source's adjacency
    first and only ever discovered the destination by reaching it.
    """
    source_id = graph.switch_id(source_switch)
    path = (
        _updown_search(graph, up, source_id, graph.id_of[destination_switch])
        if destination_switch in graph.id_of
        else None
    )
    if path is None:
        raise RouteError(
            f"no up*/down* route from {source_switch!r} to {destination_switch!r}"
        )
    return Route([Channel(graph.links[lid], 0) for lid in path])


def updown_route(
    topology: Topology,
    source_switch: str,
    destination_switch: str,
    *,
    root: Optional[str] = None,
) -> Route:
    """Shortest route that never takes a down->up turn (up*/down* routing).

    Raises :class:`~repro.errors.RouteError` when no legal path exists —
    up*/down* needs every "up" direction to eventually reach a common
    ancestor, which holds whenever the topology is connected and links are
    bidirectional, but can fail on arbitrary unidirectional topologies; this
    limitation is exactly why the paper's method is more general.
    """
    if source_switch == destination_switch:
        raise RouteError("source and destination switch coincide")
    graph = SwitchGraph(topology)
    up = _updown_up_flags(graph, updown_orientation(topology, root))
    return _updown_route_between(graph, up, source_switch, destination_switch)


def compute_updown_routes(design: NocDesign, *, root: Optional[str] = None) -> RouteSet:
    """Route every flow of a design with up*/down* routing (stores + returns).

    The BFS-level orientation and the indexed :class:`SwitchGraph` come
    from the design's :class:`~repro.perf.design_context.DesignContext`:
    built once, shared by every flow (the seed version re-derived both per
    flow) *and* by every later call on the same design — the up*/down*
    ablation sweeps re-route the same design repeatedly and previously paid
    for a fresh BFS orientation each time.
    """
    context = DesignContext.of(design)
    graph = context.graph()
    _orientation, up = context.updown_state(root)
    for flow in design.traffic.flows:
        src_switch = design.switch_of(flow.src)
        dst_switch = design.switch_of(flow.dst)
        if src_switch == dst_switch:
            if design.routes.has_route(flow.name):
                design.routes.remove_route(flow.name)
            continue
        design.routes.set_route(
            flow.name, _updown_route_between(graph, up, src_switch, dst_switch)
        )
    return design.routes


def mesh_coordinates(switch: str) -> Tuple[int, int]:
    """Parse the ``(x, y)`` encoded in a mesh switch name ``sw_x_y``."""
    parts = switch.split("_")
    if len(parts) != 3 or parts[0] != "sw":
        raise RouteError(f"switch {switch!r} is not a mesh switch (expected 'sw_x_y')")
    return int(parts[1]), int(parts[2])


def xy_route(topology: Topology, source_switch: str, destination_switch: str) -> Route:
    """Dimension-ordered (X then Y) route on a mesh built by
    :func:`repro.synthesis.regular.mesh_topology`.

    XY routing forbids the four "illegal" turns of the turn model and is
    therefore deadlock free on meshes; it is used in tests as a known-good
    acyclic-CDG routing function.
    """
    if source_switch == destination_switch:
        raise RouteError("source and destination switch coincide")
    x0, y0 = mesh_coordinates(source_switch)
    x1, y1 = mesh_coordinates(destination_switch)
    links: List[Link] = []
    x, y = x0, y0
    while x != x1:
        step = 1 if x1 > x else -1
        next_switch = f"sw_{x + step}_{y}"
        link = topology.find_link(f"sw_{x}_{y}", next_switch)
        if link is None:
            raise RouteError(f"mesh link {f'sw_{x}_{y}'}->{next_switch} missing")
        links.append(link)
        x += step
    while y != y1:
        step = 1 if y1 > y else -1
        next_switch = f"sw_{x}_{y + step}"
        link = topology.find_link(f"sw_{x}_{y}", next_switch)
        if link is None:
            raise RouteError(f"mesh link {f'sw_{x}_{y}'}->{next_switch} missing")
        links.append(link)
        y += step
    return Route([Channel(link, 0) for link in links])


def compute_xy_routes(design: NocDesign) -> RouteSet:
    """Route every flow of a mesh design with XY routing (stores + returns)."""
    for flow in design.traffic.flows:
        src_switch = design.switch_of(flow.src)
        dst_switch = design.switch_of(flow.dst)
        if src_switch == dst_switch:
            if design.routes.has_route(flow.name):
                design.routes.remove_route(flow.name)
            continue
        design.routes.set_route(flow.name, xy_route(design.topology, src_switch, dst_switch))
    return design.routes
