"""The resource-ordering baseline (Dally & Towles resource classes).

This is the comparison scheme of Section 5 of the paper:

    "In this method the communication channels are given a resource number.
    After a flow uses a channel, the next channel that it acquires needs to
    have a resource number higher than the current channel.  [...] The
    number of classes needed for a flow depends on the length of the route
    and that leads to considerable overhead."

Deadlock freedom follows because a packet only ever waits for channels with
a strictly higher resource number, so no cyclic wait can form.  The cost is
extra virtual channels: a physical link must provide one channel per
distinct resource class any flow needs while crossing it.

Class-assignment strategies are looked up by name in the pluggable
:data:`repro.api.registry.ordering_strategies` registry (a registered
strategy factory takes the working design and returns a
:class:`ResourceClassAssigner`).  Built-ins:

* ``"hop_index"`` — the straightforward scheme the paper describes: the
  class of the *i*-th channel of a route is *i*.  A link then needs one VC
  per distinct hop index at which flows traverse it.
* ``"layered"`` — an optimised variant (used as an ablation): links get a
  base order from a DFS-based acyclic orientation of the link graph and a
  flow only opens a new class when it moves to a link with a lower base
  order, which needs far fewer VCs on tree-like topologies.  This shows the
  paper's comparison is against the textbook scheme, not against a straw
  man of our making.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.api.registry import ordering_strategies
from repro.core.cdg import build_cdg
from repro.errors import OrderingError
from repro.model.channels import Channel, Link
from repro.model.design import NocDesign
from repro.model.routes import Route

STRATEGY_HOP_INDEX = "hop_index"
STRATEGY_LAYERED = "layered"


@dataclass
class ResourceClassAssigner:
    """How one strategy maps routes to resource classes.

    Attributes
    ----------
    classes_for:
        Route -> per-hop resource-class list (one entry per channel).
    resource_number:
        ``(class, link)`` -> the strictly-increasing resource number
        recorded for a channel of that class on that link (the defining
        invariant checked by :func:`_check_ordering`).
    """

    classes_for: Callable[[Route], List[int]]
    resource_number: Callable[[int, Link], int]


@dataclass
class OrderingResult:
    """Outcome of applying resource ordering to a design.

    Attributes
    ----------
    design:
        Modified copy of the input design: links carry the extra VCs and the
        routes use them.
    strategy:
        Class-assignment strategy used.
    extra_vcs:
        Number of virtual channels added beyond one per link — the quantity
        plotted as the "Resource ordering" series in Figures 8 and 9.
    classes:
        Resource class assigned to every channel of the final design.
    classes_per_link:
        Number of distinct classes (= VCs) each physical link provides.
    """

    design: NocDesign
    strategy: str
    extra_vcs: int
    classes: Dict[Channel, int] = field(default_factory=dict)
    classes_per_link: Dict[Link, int] = field(default_factory=dict)

    @property
    def max_class(self) -> int:
        """Highest resource class used."""
        return max(self.classes.values()) if self.classes else 0

    def summary(self) -> str:
        """Short human-readable report."""
        return (
            f"Resource ordering ({self.strategy}) on {self.design.name!r}: "
            f"{self.extra_vcs} extra VC(s), {self.max_class + 1} resource class(es)"
        )


def _acyclic_link_order(design: NocDesign) -> Dict[Link, int]:
    """A total order on physical links derived from a DFS over the switch
    graph (an up*/down*-style orientation).

    Links pointing from a lower DFS-discovery switch to a higher one ("down"
    links) come after links pointing upwards, and within each group links
    are ordered by their endpoints' discovery times.  The result is used by
    the layered strategy: traversing links in increasing base order never
    needs a new class.
    """
    topology = design.topology
    discovery: Dict[str, int] = {}
    counter = 0
    for root in topology.switches:
        if root in discovery:
            continue
        stack = [root]
        while stack:
            node = stack.pop()
            if node in discovery:
                continue
            discovery[node] = counter
            counter += 1
            for neighbor in reversed(topology.neighbors(node)):
                if neighbor not in discovery:
                    stack.append(neighbor)
            # also walk backwards over incoming links so weakly connected
            # components are fully discovered
            for link in topology.in_links(node):
                if link.src not in discovery:
                    stack.append(link.src)

    def key(link: Link) -> Tuple[int, int, int, str]:
        up = 0 if discovery[link.dst] <= discovery[link.src] else 1
        return (up, discovery[link.src], discovery[link.dst], link.name)

    ordered = sorted(topology.links, key=key)
    return {link: i for i, link in enumerate(ordered)}


@ordering_strategies.register(STRATEGY_HOP_INDEX)
def _hop_index_strategy(work: NocDesign) -> ResourceClassAssigner:
    """The paper's textbook scheme: hop *i* gets class *i*."""

    def classes_for(route: Route) -> List[int]:
        return list(range(route.hop_count))

    def resource_number(cls: int, _link: Link) -> int:
        return cls

    return ResourceClassAssigner(classes_for, resource_number)


@ordering_strategies.register(STRATEGY_LAYERED)
def _layered_strategy(work: NocDesign) -> ResourceClassAssigner:
    """DFS-layered variant: a new class only on a base-order descent.

    A class level can span several hops, so the recorded resource number is
    the composite (level, base link order) flattened into one integer.
    """
    base_order = _acyclic_link_order(work)
    stride = len(work.topology.links) + 1

    def classes_for(route: Route) -> List[int]:
        classes: List[int] = []
        level = 0
        previous: Optional[Link] = None
        for link in route.links:
            if previous is not None and base_order[link] <= base_order[previous]:
                level += 1
            classes.append(level)
            previous = link
        return classes

    def resource_number(cls: int, link: Link) -> int:
        return cls * stride + base_order[link]

    return ResourceClassAssigner(classes_for, resource_number)


def apply_resource_ordering(
    design: NocDesign, *, strategy: str = STRATEGY_HOP_INDEX
) -> OrderingResult:
    """Apply the resource-ordering scheme and return the modified design.

    The input design must already have routes; the method keeps every flow
    on its physical path and only changes which VC of each link the flow
    uses, adding VCs where a link must serve several resource classes.

    ``strategy`` names an entry of the pluggable
    :data:`repro.api.registry.ordering_strategies` registry.
    """
    if strategy not in ordering_strategies:
        raise OrderingError(
            f"unknown resource-ordering strategy {strategy!r}; "
            f"available: {', '.join(ordering_strategies.names())}"
        )
    work = design.copy(name=f"{design.name}_ordering_{strategy}")
    topology = work.topology

    assigner: ResourceClassAssigner = ordering_strategies.get(strategy)(work)

    # First pass: determine, per flow and per hop, the resource class.
    flow_classes: Dict[str, List[int]] = {}
    for flow_name, route in work.routes.items():
        flow_classes[flow_name] = assigner.classes_for(route)

    # Second pass: per link, collect the set of classes required and give the
    # link one VC per class (classes are mapped to VC indices in increasing
    # order so that VC index is itself a valid resource number on that link).
    link_classes: Dict[Link, List[int]] = {}
    for flow_name, route in work.routes.items():
        for hop, channel in enumerate(route):
            cls = flow_classes[flow_name][hop]
            bucket = link_classes.setdefault(channel.link, [])
            if cls not in bucket:
                bucket.append(cls)
    for link in link_classes:
        link_classes[link].sort()

    extra = 0
    for link, classes in sorted(link_classes.items()):
        needed = len(classes)
        current = topology.vc_count(link)
        while current < needed:
            topology.add_virtual_channel(link)
            current += 1
        extra += max(0, needed - 1)

    # Third pass: rewrite routes so each hop uses the VC of its class.  The
    # recorded resource number must strictly increase along every route;
    # how a (class, link) pair maps to that number is the strategy's call.
    channel_class: Dict[Channel, int] = {}
    for flow_name, route in work.routes.items():
        new_channels = []
        for hop, channel in enumerate(route):
            cls = flow_classes[flow_name][hop]
            vc_index = link_classes[channel.link].index(cls)
            new_channel = Channel(channel.link, vc_index)
            channel_class[new_channel] = assigner.resource_number(cls, channel.link)
            new_channels.append(new_channel)
        work.routes.set_route(flow_name, Route(new_channels))

    classes_per_link = {link: len(classes) for link, classes in link_classes.items()}
    result = OrderingResult(
        design=work,
        strategy=strategy,
        extra_vcs=extra,
        classes=channel_class,
        classes_per_link=classes_per_link,
    )
    _check_ordering(result)
    return result


def _check_ordering(result: OrderingResult) -> None:
    """Verify the defining invariant: classes strictly increase along routes."""
    for flow_name, route in result.design.routes.items():
        previous_class: Optional[int] = None
        for channel in route:
            cls = result.classes.get(channel)
            if cls is None:
                raise OrderingError(
                    f"flow {flow_name!r} uses channel {channel.name} with no class"
                )
            if previous_class is not None and cls <= previous_class:
                raise OrderingError(
                    f"flow {flow_name!r}: resource class does not increase at "
                    f"{channel.name} ({previous_class} -> {cls})"
                )
            previous_class = cls


def ordering_is_deadlock_free(result: OrderingResult) -> bool:
    """Check the CDG of the ordered design is acyclic (it must be)."""
    return build_cdg(result.design).is_acyclic()
