"""repro — reproduction of "A Method to Remove Deadlocks in Networks-on-Chips
with Wormhole Flow Control" (Seiculescu, Murali, Benini, De Micheli, DATE 2010).

The package provides:

* a NoC design model (topology, traffic, routes) — :mod:`repro.model`;
* the paper's CDG-based minimal-VC deadlock-removal algorithm —
  :mod:`repro.core`;
* the resource-ordering baseline and routing utilities — :mod:`repro.routing`;
* an application-specific topology synthesizer — :mod:`repro.synthesis`;
* reconstructions of the paper's SoC benchmarks — :mod:`repro.benchmarks`;
* ORION-style power and area models — :mod:`repro.power`;
* a flit-level wormhole simulator with deadlock detection —
  :mod:`repro.simulation`;
* the evaluation drivers for every figure of the paper —
  :mod:`repro.analysis`.

Quickstart::

    from repro import paper_ring_design, remove_deadlocks, build_cdg

    design = paper_ring_design()
    assert not build_cdg(design).is_acyclic()      # Figure 2: one cycle
    result = remove_deadlocks(design)
    print(result.summary())                        # 1 VC added, CDG acyclic
"""

from repro.analysis.experiments import MethodComparison, compare_methods, sweep_switch_counts
from repro.analysis.performance import LoadSweep, compare_performance, load_latency_sweep
from repro.api import (
    ArtifactCache,
    ExperimentPlan,
    PlanResult,
    Registry,
    RunResult,
    RunSpec,
    Runner,
    ordering_strategies,
    removal_engines,
    run_plan,
    run_report,
    synthesis_backends,
)
from repro.benchmarks.registry import get_benchmark, list_benchmarks
from repro.core.cdg import ChannelDependencyGraph, build_cdg
from repro.core.cost import CostTable, build_cost_table, find_dependency_to_break
from repro.core.cycles import find_all_cycles, find_smallest_cycle, has_cycle
from repro.core.removal import DeadlockRemover, is_deadlock_free, remove_deadlocks
from repro.core.report import BreakAction, RemovalResult
from repro.errors import (
    ConvergenceError,
    DeadlockDetected,
    DesignError,
    PlanError,
    RegistryError,
    ReproError,
    SerializationError,
    ValidationError,
)
from repro.examples_data.paper_ring import paper_ring_design
from repro.export.dot import cdg_to_dot, design_report, topology_to_dot
from repro.model.channels import Channel, Link
from repro.model.design import NocDesign
from repro.model.routes import Route, RouteSet
from repro.model.serialization import load_design, save_design
from repro.model.topology import Topology
from repro.model.traffic import CommunicationGraph, Flow
from repro.model.validation import validate_design
from repro.perf import CDGIndex, IncrementalCycleSearch, parallel_map
from repro.power.estimator import estimate_area, estimate_power
from repro.power.orion import RouterPowerModel, TechnologyParameters
from repro.routing.ordering import OrderingResult, apply_resource_ordering
from repro.routing.shortest_path import compute_routes
from repro.simulation.simulator import SimulationConfig, Simulator, simulate_design
from repro.synthesis.builder import SynthesisConfig, synthesize_design

__version__ = "1.0.0"

__all__ = [
    # model
    "Channel",
    "Link",
    "Topology",
    "CommunicationGraph",
    "Flow",
    "Route",
    "RouteSet",
    "NocDesign",
    "validate_design",
    "save_design",
    "load_design",
    # core algorithm
    "ChannelDependencyGraph",
    "build_cdg",
    "find_smallest_cycle",
    "find_all_cycles",
    "has_cycle",
    "CostTable",
    "build_cost_table",
    "find_dependency_to_break",
    "DeadlockRemover",
    "remove_deadlocks",
    "is_deadlock_free",
    "RemovalResult",
    "BreakAction",
    # baselines and routing
    "apply_resource_ordering",
    "OrderingResult",
    "compute_routes",
    # synthesis and benchmarks
    "SynthesisConfig",
    "synthesize_design",
    "get_benchmark",
    "list_benchmarks",
    # power
    "TechnologyParameters",
    "RouterPowerModel",
    "estimate_power",
    "estimate_area",
    # simulation
    "Simulator",
    "SimulationConfig",
    "simulate_design",
    # performance core
    "CDGIndex",
    "IncrementalCycleSearch",
    "parallel_map",
    # analysis
    "MethodComparison",
    "compare_methods",
    "sweep_switch_counts",
    "LoadSweep",
    "load_latency_sweep",
    "compare_performance",
    # declarative experiment API
    "RunSpec",
    "ExperimentPlan",
    "RunResult",
    "PlanResult",
    "Runner",
    "ArtifactCache",
    "Registry",
    "run_plan",
    "run_report",
    "removal_engines",
    "ordering_strategies",
    "synthesis_backends",
    # exporters
    "topology_to_dot",
    "cdg_to_dot",
    "design_report",
    # canned designs
    "paper_ring_design",
    # errors
    "ReproError",
    "DesignError",
    "ValidationError",
    "ConvergenceError",
    "DeadlockDetected",
    "SerializationError",
    "PlanError",
    "RegistryError",
    "__version__",
]
