"""Graphviz DOT exporters and text reports."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.cdg import ChannelDependencyGraph
from repro.core.cycles import cycle_edges
from repro.model.channels import Channel
from repro.model.design import NocDesign
from repro.model.topology import Topology


def _quote(name: str) -> str:
    """DOT identifier quoting (switch and channel names contain ``->``)."""
    escaped = name.replace("\"", "\\\"")
    return f'"{escaped}"'


def topology_to_dot(
    design_or_topology,
    *,
    show_cores: bool = True,
    highlight_extra_vcs: bool = True,
) -> str:
    """Render a topology (or a whole design) as a Graphviz ``digraph``.

    Switches become boxes; each physical link becomes one edge labelled with
    its VC count (links that gained VCs beyond the first are highlighted, so
    the effect of the removal algorithm is visible at a glance); cores, when
    a design is given, become ellipses attached to their switch.
    """
    if isinstance(design_or_topology, NocDesign):
        design: Optional[NocDesign] = design_or_topology
        topology: Topology = design_or_topology.topology
    else:
        design = None
        topology = design_or_topology

    lines: List[str] = [f"digraph {_quote(topology.name)} {{", "  rankdir=LR;"]
    lines.append("  node [shape=box, style=filled, fillcolor=lightsteelblue];")
    for switch in topology.switches:
        lines.append(f"  {_quote(switch)};")
    for link in topology.links:
        vcs = topology.vc_count(link)
        attributes = [f'label="{vcs} VC{"s" if vcs != 1 else ""}"']
        if link.index > 0:
            attributes.append("style=dashed")
            attributes.append("color=darkorange")
        elif highlight_extra_vcs and vcs > 1:
            attributes.append("color=crimson")
            attributes.append("penwidth=2")
        lines.append(
            f"  {_quote(link.src)} -> {_quote(link.dst)} [{', '.join(attributes)}];"
        )
    if design is not None and show_cores:
        lines.append("  node [shape=ellipse, style=filled, fillcolor=honeydew];")
        for core, switch in sorted(design.core_map.items()):
            lines.append(f"  {_quote(core)};")
            lines.append(f"  {_quote(core)} -> {_quote(switch)} [arrowhead=none, style=dotted];")
    lines.append("}")
    return "\n".join(lines)


def cdg_to_dot(
    cdg: ChannelDependencyGraph,
    *,
    highlight_cycle: Optional[Sequence[Channel]] = None,
    show_flows: bool = True,
) -> str:
    """Render a channel dependency graph as a Graphviz ``digraph``.

    ``highlight_cycle`` colours the vertices and edges of one cycle (as
    returned by :func:`repro.core.cycles.find_smallest_cycle`) in red — the
    Figure 2 view of a design's deadlock potential.
    """
    highlighted_nodes: Set[Channel] = set(highlight_cycle or ())
    highlighted_edges: Set[Tuple[Channel, Channel]] = set()
    if highlight_cycle:
        highlighted_edges = set(cycle_edges(list(highlight_cycle)))

    lines: List[str] = ['digraph "CDG" {', "  rankdir=LR;"]
    lines.append("  node [shape=oval, style=filled, fillcolor=whitesmoke];")
    for channel in cdg.channels:
        if channel in highlighted_nodes:
            lines.append(
                f"  {_quote(channel.name)} [fillcolor=mistyrose, color=crimson, penwidth=2];"
            )
        else:
            lines.append(f"  {_quote(channel.name)};")
    for first, second in cdg.edges:
        attributes = []
        if show_flows:
            flows = sorted(cdg.flows_on_edge(first, second))
            attributes.append(f'label="{", ".join(flows)}"')
        if (first, second) in highlighted_edges:
            attributes.append("color=crimson")
            attributes.append("penwidth=2")
        suffix = f" [{', '.join(attributes)}]" if attributes else ""
        lines.append(f"  {_quote(first.name)} -> {_quote(second.name)}{suffix};")
    lines.append("}")
    return "\n".join(lines)


def design_report(design: NocDesign) -> str:
    """A plain-text summary of a design: sizes, per-link VCs, per-flow routes."""
    topology = design.topology
    lines = [
        f"Design {design.name}",
        f"  switches       : {topology.switch_count}",
        f"  physical links : {topology.link_count}"
        f" ({topology.extra_parallel_link_count} added in parallel)",
        f"  channels       : {topology.channel_count}"
        f" ({topology.extra_vc_count} extra VCs)",
        f"  cores / flows  : {design.traffic.core_count} / {design.traffic.flow_count}",
        "",
        "  links:",
    ]
    for link in topology.links:
        lines.append(
            f"    {link.name:<20} VCs={topology.vc_count(link)} "
            f"length={topology.link_length(link):.2f} mm"
        )
    lines.append("")
    lines.append("  routes:")
    for flow_name, route in design.routes.items():
        path = " -> ".join(channel.name for channel in route)
        lines.append(f"    {flow_name:<12} {path}")
    return "\n".join(lines)
