"""Exporters: Graphviz DOT views and text reports of designs and CDGs.

NoC papers communicate almost everything through two pictures — the
topology with its flows, and the channel dependency graph with its cycles.
This subpackage renders both as Graphviz DOT documents (no Graphviz
installation needed to *generate* them) plus a plain-text design report, so
users can inspect what the removal algorithm did to their design.
"""

from repro.export.dot import cdg_to_dot, design_report, topology_to_dot

__all__ = ["topology_to_dot", "cdg_to_dot", "design_report"]
