"""Command-line interface.

Installed as ``noc-deadlock``.  Subcommands:

* ``analyze``   — load a design JSON, report CDG cycles and deadlock status;
* ``remove``    — run the deadlock-removal algorithm and write the result;
* ``ordering``  — apply the resource-ordering baseline and write the result;
* ``synthesize``— generate an application-specific design from a benchmark;
* ``simulate``  — run the wormhole simulator on a design;
* ``benchmarks``— list the available SoC benchmarks;
* ``figures``   — regenerate the data behind the paper's figures;
* ``run``       — execute a declarative experiment plan (JSON), with an
  artifact cache so repeated sweeps reuse earlier work;
* ``lint``      — run the AST-based invariant checker (``repro.lint``)
  over the sources; exits non-zero on any non-baselined finding.

Every subcommand is a thin adapter over the library — ``figures`` and
``run`` both go through :mod:`repro.api`, so a plan holding the figure
reports prints byte-identical JSON to the ``figures`` subcommand.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.api.registry import (
    fault_models,
    ordering_strategies,
    recovery_policies,
    removal_engines,
    routing_engines,
    simulation_engines,
    topology_families,
    traffic_scenarios,
)
from repro.api.reports import run_report
from repro.api.runner import Runner, default_cache_dir
from repro.api.spec import ExperimentPlan
from repro.benchmarks.registry import get_benchmark, list_benchmarks
from repro.core.cdg import build_cdg
from repro.core.cycles import count_cycles, find_smallest_cycle
from repro.core.removal import remove_deadlocks
from repro.errors import ReproError
from repro.export.dot import cdg_to_dot, design_report, topology_to_dot
from repro.model.serialization import load_design, save_design
from repro.power.estimator import estimate_area, estimate_power
from repro.routing.ordering import apply_resource_ordering
from repro.simulation.simulator import SimulationConfig, simulate_design
from repro.synthesis.builder import SynthesisConfig, synthesize_design


def _cmd_analyze(args: argparse.Namespace) -> int:
    design = load_design(args.design)
    cdg = build_cdg(design)
    acyclic = cdg.is_acyclic()
    print(f"design           : {design.name}")
    print(f"switches / links : {design.topology.switch_count} / {design.topology.link_count}")
    print(f"flows            : {design.traffic.flow_count}")
    print(f"CDG channels     : {cdg.channel_count}")
    print(f"CDG dependencies : {cdg.edge_count}")
    print(f"deadlock free    : {'yes' if acyclic else 'NO'}")
    if not acyclic:
        cycles = count_cycles(cdg, limit=1000)
        smallest = find_smallest_cycle(cdg)
        print(f"cycles (capped)  : {cycles}")
        print("smallest cycle   : " + " -> ".join(c.name for c in smallest))
    return 0 if acyclic or not args.strict else 1


def _cmd_remove(args: argparse.Namespace) -> int:
    design = load_design(args.design)
    result = remove_deadlocks(design, engine=args.engine, cross_check=args.cross_check)
    print(result.summary())
    if args.output:
        save_design(result.design, args.output)
        print(f"wrote deadlock-free design to {args.output}")
    return 0


def _cmd_ordering(args: argparse.Namespace) -> int:
    design = load_design(args.design)
    result = apply_resource_ordering(design, strategy=args.strategy)
    print(result.summary())
    if args.output:
        save_design(result.design, args.output)
        print(f"wrote resource-ordered design to {args.output}")
    return 0


def _parse_json_object(value: Optional[str], flag: str) -> dict:
    """Parse an inline-JSON-object CLI value (``{}`` when omitted)."""
    if value is None:
        return {}
    try:
        parsed = json.loads(value)
    except json.JSONDecodeError as exc:
        raise SystemExit(f"invalid {flag} JSON: {exc}")
    if not isinstance(parsed, dict):
        raise SystemExit(f"{flag} must be a JSON object, got {parsed!r}")
    return parsed


def _cmd_synthesize(args: argparse.Namespace) -> int:
    traffic = get_benchmark(args.benchmark, seed=args.seed)
    family_params = _parse_json_object(args.family_params, "--family-params")
    if args.family_params is not None and args.topology_family is None:
        raise SystemExit("--family-params needs --topology-family")
    switches = args.switches
    if switches is None:
        if args.topology_family is not None:
            # Let the family's closed form decide; the builder derives the
            # size from the parameters.
            from repro.synthesis.families import family_size  # local: lazy import

            switches = family_size(args.topology_family, family_params)
        else:
            switches = 14
    config = SynthesisConfig(
        n_switches=switches,
        seed=args.seed,
        routing_engine=args.routing_engine,
        topology_family=args.topology_family,
        family_params=family_params,
    )
    design = synthesize_design(traffic, config)
    cdg = build_cdg(design)
    print(f"synthesized {design.name}: {design.topology.switch_count} switches, "
          f"{design.topology.link_count} links, CDG "
          f"{'acyclic' if cdg.is_acyclic() else 'CYCLIC'}")
    power = estimate_power(design)
    area = estimate_area(design)
    print(power.summary())
    print(area.summary())
    if args.output:
        save_design(design, args.output)
        print(f"wrote design to {args.output}")
    return 0


def _load_fault_schedule(value: Optional[str]):
    """Parse ``--fault-schedule``: inline JSON (starts with ``{``) or a file.

    Returns the raw document; resolution against the design's topology
    (including ``{"random": ...}`` requests) happens in ``simulate_design``.
    """
    if value is None:
        return None
    text = value if value.lstrip().startswith("{") else Path(value).read_text()
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        raise SystemExit(f"invalid fault schedule JSON: {exc}")


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.simulation.fault_models import build_fault_schedule  # local: lazy import

    design = load_design(args.design)
    fault_params = _parse_json_object(args.fault_params, "--fault-params")
    if args.fault_params is not None and args.fault_model is None:
        raise SystemExit("--fault-params needs --fault-model")
    # Resolves --fault-model through the registry or --fault-schedule via
    # EventSchedule.from_spec (and rejects passing both).
    schedule = build_fault_schedule(
        design,
        fault_model=args.fault_model,
        fault_params=fault_params,
        fault_schedule=_load_fault_schedule(args.fault_schedule),
        seed=args.seed,
    )
    config = SimulationConfig(
        injection_scale=args.injection_scale,
        buffer_depth=args.buffer_depth,
        seed=args.seed,
        traffic_scenario=args.traffic_scenario,
        scenario_params=_parse_json_object(args.scenario_params, "--scenario-params"),
    )
    stats = simulate_design(
        design,
        max_cycles=args.cycles,
        config=config,
        engine=args.engine,
        cross_check=args.cross_check,
        fault_schedule=schedule,
        fault_recovery=args.recovery_policy,
    )
    print(stats.summary())
    return 1 if stats.deadlock_detected else 0


def _cmd_export(args: argparse.Namespace) -> int:
    design = load_design(args.design)
    if args.what == "topology":
        output = topology_to_dot(design)
    elif args.what == "cdg":
        cdg = build_cdg(design)
        cycle = find_smallest_cycle(cdg)
        output = cdg_to_dot(cdg, highlight_cycle=cycle)
    else:
        output = design_report(design)
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(output + "\n")
        print(f"wrote {args.what} view to {args.output}")
    else:
        print(output)
    return 0


def _cmd_benchmarks(_args: argparse.Namespace) -> int:
    for name in list_benchmarks():
        traffic = get_benchmark(name)
        print(f"{name:12s}  cores={traffic.core_count:3d}  flows={traffic.flow_count:3d}")
    return 0


#: Figure-subcommand choices -> report-type names, in ``all`` print order.
_FIGURE_REPORTS = (
    ("8", "figure8"),
    ("9", "figure9"),
    ("10", "figure10"),
    ("area", "area"),
    ("overhead", "overhead"),
)


def _cmd_figures(args: argparse.Namespace) -> int:
    for choice, report in _FIGURE_REPORTS:
        if args.figure in (choice, "all"):
            data = run_report(report, {"seed": args.seed}, jobs=args.jobs)
            print(json.dumps(data, indent=2))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    plan = ExperimentPlan.load(args.plan)
    cache_dir = None
    if not args.no_cache:
        cache_dir = Path(args.cache_dir).expanduser() if args.cache_dir else default_cache_dir()
    runner = Runner(cache_dir=cache_dir, jobs=args.jobs)
    outcome = runner.run(plan)

    rendered = outcome.render_reports()
    for _name, document in rendered:
        print(json.dumps(document, indent=2))
    if not rendered:
        print(json.dumps(outcome.rows(), indent=2))
    if args.output:
        Path(args.output).write_text(json.dumps(outcome.to_dict(), indent=2) + "\n")
        print(
            f"wrote {len(outcome.results)} result(s) to {args.output}", file=sys.stderr
        )
    print(
        f"plan {plan.name!r}: {len(outcome.results)} point(s), "
        f"{outcome.cache_hits} served from cache",
        file=sys.stderr,
    )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import lint_paths, save_baseline  # local: lint-only import

    baseline: Optional[Path] = None
    if not args.no_baseline:
        baseline = Path(args.baseline)
    report = lint_paths(
        args.paths,
        root=Path.cwd(),
        tests_dir=args.tests_dir,
        baseline=baseline,
        rules=args.rules.split(",") if args.rules else None,
    )
    if args.update_baseline:
        if baseline is None:
            raise SystemExit("--update-baseline requires a baseline file (drop --no-baseline)")
        save_baseline(baseline, report.findings)
        print(f"wrote {len(report.findings)} finding(s) to {baseline}")
        return 0
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
    else:
        for finding in report.new_findings:
            print(finding.render())
        summary = (
            f"{report.checked_files} file(s) checked: "
            f"{len(report.new_findings)} new finding(s), "
            f"{len(report.grandfathered)} baselined, "
            f"{len(report.suppressed)} suppressed"
        )
        print(summary, file=sys.stderr)
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and documentation tools)."""
    parser = argparse.ArgumentParser(
        prog="noc-deadlock",
        description="Deadlock removal for wormhole NoCs (DATE 2010 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("analyze", help="report CDG cycles of a design file")
    p.add_argument("design", help="path to a design JSON file")
    p.add_argument("--strict", action="store_true", help="exit non-zero when cyclic")
    p.set_defaults(func=_cmd_analyze)

    p = sub.add_parser("remove", help="run the deadlock-removal algorithm")
    p.add_argument("design", help="path to a design JSON file")
    p.add_argument(
        "--engine",
        choices=removal_engines.names(),
        default="context",
        help="removal engine (default: context)",
    )
    p.add_argument(
        "--cross-check",
        action="store_true",
        help="verify the incremental CDG against a full rebuild every "
        "iteration (slow; debugging aid)",
    )
    p.add_argument("-o", "--output", help="where to write the modified design")
    p.set_defaults(func=_cmd_remove)

    p = sub.add_parser("ordering", help="apply the resource-ordering baseline")
    p.add_argument("design", help="path to a design JSON file")
    p.add_argument(
        "--strategy", choices=ordering_strategies.names(), default="hop_index"
    )
    p.add_argument("-o", "--output", help="where to write the modified design")
    p.set_defaults(func=_cmd_ordering)

    p = sub.add_parser("synthesize", help="synthesize a design from a benchmark")
    p.add_argument("benchmark", help="benchmark name (see 'benchmarks')")
    p.add_argument(
        "--switches",
        type=int,
        default=None,
        help="switch count (default: 14, or the family's closed form when "
        "--topology-family is given)",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--routing-engine",
        choices=routing_engines.names(),
        default="indexed",
        help="shortest-path routing engine (default: indexed)",
    )
    p.add_argument(
        "--topology-family",
        choices=topology_families.names(),
        default=None,
        help="generate the topology from a parameterized family instead of "
        "the application-specific synthesis flow",
    )
    p.add_argument(
        "--family-params",
        default=None,
        metavar="JSON",
        help="family parameters as a JSON object, e.g. '{\"k\": 4}' for "
        "fat_tree (requires --topology-family)",
    )
    p.add_argument("-o", "--output", help="where to write the design")
    p.set_defaults(func=_cmd_synthesize)

    p = sub.add_parser("simulate", help="run the wormhole simulator on a design")
    p.add_argument("design", help="path to a design JSON file")
    p.add_argument("--cycles", type=int, default=10000)
    p.add_argument("--injection-scale", type=float, default=1.0)
    p.add_argument("--buffer-depth", type=int, default=4)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--engine",
        choices=simulation_engines.names(),
        default="compiled",
        help="simulation engine (default: compiled; 'batched' runs the "
        "numpy array-program engine, one lane here, whole grids in plans)",
    )
    p.add_argument(
        "--traffic-scenario",
        choices=traffic_scenarios.names(),
        default="flows",
        help="traffic scenario (default: flows, the design's own traffic)",
    )
    p.add_argument(
        "--scenario-params",
        default=None,
        metavar="JSON",
        help="scenario parameters as a JSON object, e.g. "
        "'{\"trace\": \"demand.json\"}' for the trace scenario",
    )
    p.add_argument(
        "--cross-check",
        action="store_true",
        help="also run the legacy engine and fail on any statistics "
        "divergence (slow; debugging aid)",
    )
    p.add_argument(
        "--fault-schedule",
        default=None,
        metavar="JSON_OR_FILE",
        help="inject link/router failures mid-run: a JSON document (inline "
        "when starting with '{', otherwise a file path) with an 'events' "
        "list or a seeded 'random' request",
    )
    p.add_argument(
        "--fault-model",
        choices=fault_models.names(),
        default=None,
        help="generate the fault schedule from a correlated model instead "
        "of --fault-schedule (seeded from --seed)",
    )
    p.add_argument(
        "--fault-params",
        default=None,
        metavar="JSON",
        help="fault-model parameters as a JSON object, e.g. "
        "'{\"radius\": 2}' for spatial_burst (requires --fault-model)",
    )
    p.add_argument(
        "--recovery-policy",
        choices=recovery_policies.names(),
        default="removal",
        help="recovery policy repairing the route set after each fault "
        "batch (default: removal)",
    )
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser("export", help="export a design as Graphviz DOT or a text report")
    p.add_argument("design", help="path to a design JSON file")
    p.add_argument("what", choices=["topology", "cdg", "report"])
    p.add_argument("-o", "--output", help="file to write (stdout when omitted)")
    p.set_defaults(func=_cmd_export)

    p = sub.add_parser("benchmarks", help="list the available SoC benchmarks")
    p.set_defaults(func=_cmd_benchmarks)

    p = sub.add_parser("figures", help="regenerate the data behind the paper's figures")
    p.add_argument("figure", choices=["8", "9", "10", "area", "overhead", "all"])
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=None,
        help="fan sweep points out over N worker processes "
        "(default: serial; -1 = one per CPU)",
    )
    p.set_defaults(func=_cmd_figures)

    p = sub.add_parser(
        "run",
        help="execute a declarative experiment plan (JSON) with artifact caching",
    )
    p.add_argument("plan", help="path to an ExperimentPlan JSON document")
    p.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=None,
        help="fan plan points out over N worker processes "
        "(default: serial; -1 = one per CPU)",
    )
    p.add_argument(
        "--cache-dir",
        default=None,
        help="artifact cache directory (default: $NOC_DEADLOCK_CACHE_DIR "
        "or ~/.cache/noc-deadlock)",
    )
    p.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the artifact cache for this run",
    )
    p.add_argument(
        "-o",
        "--output",
        help="write the full result document (specs, results, reports) as JSON",
    )
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser(
        "lint",
        help="run the AST-based invariant checker over the sources",
    )
    p.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    p.add_argument(
        "--format",
        choices=["human", "json"],
        default="human",
        help="output format (default: human; json prints the full report)",
    )
    p.add_argument(
        "--baseline",
        default="lint-baseline.json",
        help="grandfathered-findings file (default: lint-baseline.json)",
    )
    p.add_argument(
        "--no-baseline",
        action="store_true",
        help="compare against an empty baseline — every finding is new",
    )
    p.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    p.add_argument(
        "--tests-dir",
        default="tests",
        help="test tree cross-referencing rules scan (default: tests)",
    )
    p.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all registered)",
    )
    p.set_defaults(func=_cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
