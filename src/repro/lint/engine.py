"""Lint orchestration: collect files, run every rule, report.

:func:`lint_paths` is the one entry point — the CLI subcommand and the
tests are thin adapters over it.  The pipeline:

1. collect ``.py`` files under the given paths (skipping hidden
   directories and ``__pycache__``);
2. parse each into a :class:`~repro.lint.base.FileContext` — a file that
   does not parse yields a single ``parse-error`` finding instead of
   aborting the run;
3. run every registered rule's per-file pass, drop findings whose line
   carries an inline ``# noc-lint: disable=`` comment;
4. run every rule's project-level pass (test files are parsed and
   provided, never linted);
5. subtract the baseline — only findings the baseline does not absorb are
   *new* and fail the run.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

from repro.lint.base import FileContext, ProjectContext, lint_rules
from repro.lint.baseline import diff_against_baseline, load_baseline
from repro.lint.findings import FINDINGS_FORMAT_VERSION, Finding
from repro.lint.suppress import split_suppressed

#: Rule id attached to files that fail to parse.
PARSE_ERROR_RULE = "parse-error"

#: Directory names never descended into.
_SKIPPED_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}


def _iter_python_files(paths: Sequence[Path]) -> List[Path]:
    """Every ``.py`` file under ``paths``, deduplicated, in sorted order."""
    seen = {}
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            seen[path.resolve()] = None
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if any(part in _SKIPPED_DIRS for part in candidate.parts):
                    continue
                seen[candidate.resolve()] = None
    return sorted(seen)


def _module_name(path: Path) -> Optional[str]:
    """Dotted module name via the nearest package-root heuristic.

    Walks up while ``__init__.py`` siblings exist, so
    ``.../src/repro/api/spec.py`` maps to ``repro.api.spec`` regardless of
    where the lint root sits.
    """
    parts = [path.stem] if path.stem != "__init__" else []
    current = path.parent
    while (current / "__init__.py").exists():
        parts.insert(0, current.name)
        current = current.parent
    return ".".join(parts) or None


def load_file_context(path: Path, root: Path) -> Union[FileContext, Finding]:
    """Parse one file; a syntax error returns a ``parse-error`` finding."""
    try:
        rel_path = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        rel_path = path.as_posix()
    try:
        source = path.read_text()
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError, ValueError) as exc:
        line = getattr(exc, "lineno", 0) or 0
        return Finding(
            path=rel_path,
            line=line,
            rule=PARSE_ERROR_RULE,
            message=f"file could not be parsed: {exc}",
        )
    return FileContext(
        path=path,
        rel_path=rel_path,
        source=source,
        lines=source.splitlines(),
        tree=tree,
        module=_module_name(path),
    )


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    new_findings: List[Finding] = field(default_factory=list)
    grandfathered: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    checked_files: int = 0
    baseline_path: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True when no *new* findings survived suppression and baseline."""
        return not self.new_findings

    def to_dict(self) -> dict:
        """The ``--format json`` document (schema shared with the baseline)."""
        return {
            "format_version": FINDINGS_FORMAT_VERSION,
            "checked_files": self.checked_files,
            "ok": self.ok,
            "baseline": self.baseline_path,
            "new_findings": [f.to_dict() for f in self.new_findings],
            "grandfathered": [f.to_dict() for f in self.grandfathered],
            "suppressed": len(self.suppressed),
        }


def lint_paths(
    paths: Sequence[Union[str, Path]],
    *,
    root: Optional[Union[str, Path]] = None,
    tests_dir: Optional[Union[str, Path]] = None,
    baseline: Optional[Union[str, Path]] = None,
    rules: Optional[Iterable[str]] = None,
) -> LintReport:
    """Run the linter and return a :class:`LintReport`.

    Parameters
    ----------
    paths:
        Files or directories to lint.
    root:
        Directory findings' paths are reported relative to (default: the
        current working directory).
    tests_dir:
        Test tree parsed (not linted) for cross-referencing rules; pass
        ``None`` to skip project rules that need tests.
    baseline:
        Baseline file to subtract; ``None`` compares against an empty
        baseline, so every finding is new.
    rules:
        Rule ids to run (default: every registered rule).
    """
    root_path = Path(root) if root is not None else Path.cwd()
    active = [lint_rules.get(rule_id)() for rule_id in (rules or lint_rules.names())]

    project = ProjectContext(root=root_path)
    raw_findings: List[Finding] = []
    suppressed: List[Finding] = []

    for path in _iter_python_files([Path(p) for p in paths]):
        loaded = load_file_context(path, root_path)
        if isinstance(loaded, Finding):
            raw_findings.append(loaded)
            continue
        project.files.append(loaded)

    for ctx in project.files:
        file_findings: List[Finding] = []
        for rule in active:
            file_findings.extend(rule.check_file(ctx))
        kept, dropped = split_suppressed(file_findings, ctx.lines)
        raw_findings.extend(kept)
        suppressed.extend(dropped)

    if tests_dir is not None:
        tests_path = Path(tests_dir)
        if tests_path.is_dir():
            for path in _iter_python_files([tests_path]):
                loaded = load_file_context(path, root_path)
                if isinstance(loaded, FileContext):
                    project.test_files.append(loaded)

    for rule in active:
        project_findings = list(rule.finalize(project))
        by_path = {ctx.rel_path: ctx.lines for ctx in project.files}
        for finding in project_findings:
            lines = by_path.get(finding.path)
            if lines is not None and split_suppressed([finding], lines)[1]:
                suppressed.append(finding)
            else:
                raw_findings.append(finding)

    raw_findings.sort()
    baseline_entries = load_baseline(baseline) if baseline is not None else []
    new, grandfathered = diff_against_baseline(raw_findings, baseline_entries)
    return LintReport(
        findings=raw_findings,
        new_findings=new,
        grandfathered=grandfathered,
        suppressed=suppressed,
        checked_files=len(project.files),
        baseline_path=str(baseline) if baseline is not None else None,
    )
