"""``noc-lint``: AST-based invariant checking for this repository.

The reproduction's correctness rests on invariants that runtime
cross-checks can only sample: determinism (all randomness flows from
``RunSpec.seed``), fingerprint completeness (every spec field is
content-addressed or deliberately elided), registry discipline (engines
are resolved by name, never constructed ad hoc), process-boundary safety
(only plain spec data crosses ``parallel_map``) and cross-check coverage
(every registered engine appears in a test).  This package checks them
*statically*, before any test runs, and gates CI through the
``noc-deadlock lint`` subcommand.

Rule API
--------
A rule subclasses :class:`~repro.lint.base.LintRule` and registers itself
in :data:`~repro.lint.base.lint_rules` (the same decorator registry the
engines use)::

    from repro.lint.base import FileContext, LintRule, lint_rules

    @lint_rules.register("my-rule")
    class MyRule(LintRule):
        rule_id = "my-rule"
        description = "one line on the invariant this protects"

        def check_file(self, ctx: FileContext):
            for node in ast.walk(ctx.tree):
                ...
                yield ctx.finding(node, self.rule_id, "what went wrong")

* :meth:`~repro.lint.base.LintRule.check_file` receives one parsed
  :class:`~repro.lint.base.FileContext` (path, source, lines, AST, dotted
  module name) per linted file and yields
  :class:`~repro.lint.findings.Finding` records;
* :meth:`~repro.lint.base.LintRule.finalize` runs once after all files,
  receiving the :class:`~repro.lint.base.ProjectContext` — including the
  parsed (never linted) test tree — for whole-project rules;
* built-in rules live in :mod:`repro.lint.rules`, the registry's lazy
  provider; new modules register there.

Workflow
--------
* **run**: ``noc-deadlock lint [paths]`` (default ``src``) prints findings
  and exits non-zero when any *new* finding survives; ``--format json``
  emits the machine-readable document CI consumes.
* **suppress**: a justified exception carries an inline same-line comment
  ``# noc-lint: disable=<rule-id> - <why>``; suppressions are visible at
  the offending line, never file- or block-wide.
* **baseline**: pre-existing findings a PR does not want to pay down yet
  are grandfathered in ``lint-baseline.json`` (``--update-baseline``
  rewrites it); matching ignores line numbers so unrelated edits do not
  invalidate entries.  This repo's baseline is empty — keep it that way.
"""

from repro.lint.base import FileContext, LintRule, ProjectContext, lint_rules
from repro.lint.baseline import diff_against_baseline, load_baseline, save_baseline
from repro.lint.engine import LintReport, lint_paths
from repro.lint.findings import FINDING_KEYS, Finding, structured_warning

__all__ = [
    "FINDING_KEYS",
    "FileContext",
    "Finding",
    "LintReport",
    "LintRule",
    "ProjectContext",
    "diff_against_baseline",
    "lint_paths",
    "lint_rules",
    "load_baseline",
    "save_baseline",
    "structured_warning",
]
