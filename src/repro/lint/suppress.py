"""Inline suppressions: ``# noc-lint: disable=<rule>[,<rule>...]``.

A finding is suppressed when the physical line it anchors to carries a
disable comment naming its rule id (or the wildcard ``all``).  Suppressions
are same-line only — a comment cannot silence a whole block — so every
suppression sits visibly next to the code it excuses, ideally with a short
justification after the directive::

    cutoff = time.time() - min_age  # noc-lint: disable=det-wallclock - mtime math
"""

from __future__ import annotations

import re
from typing import FrozenSet, List, Sequence

from repro.lint.findings import Finding

#: Matches the directive anywhere in a comment; group 1 is the rule list.
_DIRECTIVE = re.compile(r"#\s*noc-lint:\s*disable=([A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)")

#: Wildcard rule id suppressing every rule on the line.
SUPPRESS_ALL = "all"


def suppressed_rules(line: str) -> FrozenSet[str]:
    """Rule ids disabled on one physical source line (empty when none)."""
    match = _DIRECTIVE.search(line)
    if not match:
        return frozenset()
    return frozenset(part.strip() for part in match.group(1).split(","))


def is_suppressed(finding: Finding, lines: Sequence[str]) -> bool:
    """True when ``finding``'s anchor line disables its rule."""
    if not 1 <= finding.line <= len(lines):
        return False
    rules = suppressed_rules(lines[finding.line - 1])
    return finding.rule in rules or SUPPRESS_ALL in rules


def split_suppressed(
    findings: Sequence[Finding], lines: Sequence[str]
) -> "tuple[List[Finding], List[Finding]]":
    """Partition ``findings`` into (kept, suppressed) against one file's lines."""
    kept: List[Finding] = []
    dropped: List[Finding] = []
    for finding in findings:
        (dropped if is_suppressed(finding, lines) else kept).append(finding)
    return kept, dropped
