"""The :class:`Finding` record — one lint diagnostic, as plain data.

A finding pins down *what* (``rule``), *where* (``path``/``line``/``col``)
and *why* (``message``).  Findings serialize to the one JSON schema shared
by the ``noc-deadlock lint --format json`` output, the checked-in baseline
file and the structured warning payloads :mod:`repro.perf.executor` emits
(see :func:`structured_warning`), so CI log scraping sees a uniform shape
everywhere.

The baseline identity of a finding deliberately excludes the line number:
messages name the offending symbol, so an unrelated edit that shifts a
grandfathered finding down a few lines does not break the baseline match.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

#: Version tag of the findings/baseline JSON schema.
FINDINGS_FORMAT_VERSION = 1

#: The keys of one serialized finding, in canonical order.  Shared by the
#: lint JSON output, the baseline entries and the executor warning payloads.
FINDING_KEYS = ("rule", "path", "line", "col", "message")


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic: a rule violation at a source location.

    Attributes
    ----------
    path:
        Repo-relative POSIX path of the offending file (empty for
        project-level findings that have no single home).
    line:
        1-based line of the offending node (0 when not applicable).
    rule:
        Identifier of the rule that produced the finding (e.g.
        ``det-global-random``) — the token an inline
        ``# noc-lint: disable=<rule>`` comment names.
    message:
        Human-readable description naming the offending symbol.
    col:
        0-based column of the offending node.
    """

    path: str
    line: int
    rule: str
    message: str
    col: int = 0

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """The canonical JSON form (key order fixed by :data:`FINDING_KEYS`)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Finding":
        return cls(
            path=str(data.get("path", "")),
            line=int(data.get("line", 0)),
            rule=str(data["rule"]),
            message=str(data["message"]),
            col=int(data.get("col", 0)),
        )

    # ------------------------------------------------------------------
    def baseline_key(self) -> Tuple[str, str, str]:
        """Line-independent identity used for baseline matching."""
        return (self.rule, self.path, self.message)

    def render(self) -> str:
        """One-line human form: ``path:line:col: [rule] message``."""
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


def structured_warning(rule: str, message: str, *, path: Optional[str] = None) -> str:
    """``message`` plus a machine-readable finding payload.

    Runtime warning paths (e.g. :func:`repro.perf.executor.parallel_map`'s
    serial fallback) append this payload so CI log scrapers can parse one
    schema for static findings and runtime degradations alike::

        parallel_map: ... falling back to serial [noc-lint {"col": 0, ...}]
    """
    payload = {
        "rule": rule,
        "path": path or "",
        "line": 0,
        "col": 0,
        "message": message,
    }
    return f"{message} [noc-lint {json.dumps(payload, sort_keys=True)}]"
