"""The checked-in baseline: grandfathered findings that do not fail the build.

The baseline is a JSON document (``lint-baseline.json`` at the repo root)
listing findings that predate a rule and are accepted until someone pays
the cleanup down.  ``noc-deadlock lint`` subtracts the baseline from the
current findings — only *new* findings fail the run — and
``--update-baseline`` rewrites the file from the current state.

Matching is a multiset over :meth:`Finding.baseline_key` (rule, path,
message) — line numbers are excluded so unrelated edits that shift a
grandfathered finding do not break the match, while a *second* occurrence
of the same message in the same file still counts as new.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import List, Sequence, Tuple, Union

from repro.errors import ReproError
from repro.lint.findings import FINDINGS_FORMAT_VERSION, Finding


class BaselineError(ReproError):
    """Raised when a baseline file cannot be read or has the wrong shape."""


def load_baseline(path: Union[str, Path]) -> List[Finding]:
    """Parse a baseline file into findings (missing file = empty baseline)."""
    path = Path(path)
    if not path.exists():
        return []
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"could not read baseline {path}: {exc}") from exc
    if not isinstance(data, dict) or not isinstance(data.get("findings"), list):
        raise BaselineError(f"baseline {path} must be a JSON object with a 'findings' list")
    version = data.get("format_version", FINDINGS_FORMAT_VERSION)
    if version != FINDINGS_FORMAT_VERSION:
        raise BaselineError(
            f"unsupported baseline format version {version} "
            f"(expected {FINDINGS_FORMAT_VERSION})"
        )
    try:
        return [Finding.from_dict(entry) for entry in data["findings"]]
    except (KeyError, TypeError, ValueError) as exc:
        raise BaselineError(f"malformed baseline entry in {path}: {exc}") from exc


def save_baseline(path: Union[str, Path], findings: Sequence[Finding]) -> Path:
    """Write ``findings`` as the new baseline (sorted, stable on disk)."""
    path = Path(path)
    document = {
        "format_version": FINDINGS_FORMAT_VERSION,
        "findings": [finding.to_dict() for finding in sorted(findings)],
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def diff_against_baseline(
    findings: Sequence[Finding], baseline: Sequence[Finding]
) -> Tuple[List[Finding], List[Finding]]:
    """Split ``findings`` into (new, grandfathered) against ``baseline``.

    Multiset semantics: a baseline entry absorbs exactly one matching
    finding, so duplicates beyond the grandfathered count surface as new.
    """
    budget = Counter(entry.baseline_key() for entry in baseline)
    new: List[Finding] = []
    grandfathered: List[Finding] = []
    for finding in findings:
        key = finding.baseline_key()
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            grandfathered.append(finding)
        else:
            new.append(finding)
    return new, grandfathered
