"""The rule framework: file/project contexts and the :class:`LintRule` base.

A rule is a class registered in :data:`lint_rules` (the same decorator
:class:`~repro.api.registry.Registry` the engine and scenario registries
use).  The engine instantiates every registered rule once per run, calls
:meth:`LintRule.check_file` with a parsed :class:`FileContext` for each
linted file, then :meth:`LintRule.finalize` once with the whole
:class:`ProjectContext` — per-file rules implement only the former,
whole-project rules (e.g. registry/test cross-referencing) only the latter.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Tuple

from repro.api.registry import Registry
from repro.lint.findings import Finding

#: All lint rules, by rule id.  The provider module registers the built-ins
#: lazily, exactly like the engine registries.
lint_rules = Registry("lint rule", provider="repro.lint.rules")


@dataclass
class FileContext:
    """One parsed source file, as the per-file rules see it.

    Attributes
    ----------
    path:
        Absolute path on disk.
    rel_path:
        POSIX path relative to the lint root — the path findings carry.
    source:
        Full file text.
    lines:
        ``source.splitlines()`` (1-based access via ``lines[line - 1]``).
    tree:
        The parsed :class:`ast.Module`.
    module:
        Best-effort dotted module name (``repro.api.spec``) derived from
        the path, or ``None`` when the file is not under a package root.
    """

    path: Path
    rel_path: str
    source: str
    lines: List[str]
    tree: ast.Module
    module: Optional[str] = None

    # ------------------------------------------------------------------
    @property
    def parts(self) -> Tuple[str, ...]:
        """Path components of :attr:`rel_path` (for location allowlists)."""
        return tuple(self.rel_path.split("/"))

    def finding(self, node: ast.AST, rule: str, message: str) -> Finding:
        """A :class:`Finding` anchored at ``node`` in this file."""
        return Finding(
            path=self.rel_path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            rule=rule,
            message=message,
        )


@dataclass
class ProjectContext:
    """Everything a whole-project rule can see after the per-file pass.

    ``files`` are the linted sources; ``test_files`` are parsed test
    modules (never linted themselves — tests may construct engines
    directly) provided so cross-referencing rules can pair registrations
    with test coverage.
    """

    root: Path
    files: List[FileContext] = field(default_factory=list)
    test_files: List[FileContext] = field(default_factory=list)


class LintRule:
    """Base class of every lint rule.

    Subclasses set :attr:`rule_id` (the identifier findings carry and
    suppression comments name) and :attr:`description`, then override
    :meth:`check_file` and/or :meth:`finalize`.  Both default to "no
    findings", so a rule implements only the granularity it needs.

    Rules must be stateless across runs — the engine constructs a fresh
    instance per :func:`repro.lint.engine.lint_paths` call, so per-run
    accumulation in ``self`` (e.g. collecting registrations for
    :meth:`finalize`) is safe.
    """

    rule_id: str = ""
    description: str = ""

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        """Findings of this rule in one file (default: none)."""
        return ()

    def finalize(self, project: ProjectContext) -> Iterable[Finding]:
        """Whole-project findings after every file was checked (default: none)."""
        return ()
