"""Registry discipline: engines are looked up by name, never constructed ad hoc.

``RunSpec`` fields, CLI flags and plan documents all select implementations
through the :mod:`repro.api.registry` registries; ``cross_check`` and the
equivalence suites assume *every* dispatch goes through the same door.  A
module that constructs :class:`CompiledSimulator` or calls a removal-engine
function directly bypasses that door: third-party registrations stop
applying, engine defaults fork, and a future engine swap misses the call
site.

Allowed homes: the ``perf/`` package (where the engines live), the
provider modules that register the built-ins, and anything under
``tests/``.  A deliberate direct use elsewhere carries an inline
``# noc-lint: disable=registry-discipline`` with its justification.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List

from repro.lint.base import FileContext, LintRule, lint_rules
from repro.lint.findings import Finding


@lint_rules.register("registry-discipline")
class RegistryDisciplineRule(LintRule):
    """Direct engine construction outside the engine/provider modules."""

    rule_id = "registry-discipline"
    description = (
        "construct engines via registry lookup by name, not directly — "
        "direct construction bypasses RunSpec/CLI dispatch and cross_check"
    )

    #: Engine entry points -> the registry that owns them.
    ENGINE_CALLABLES: Dict[str, str] = {
        "CompiledSimulator": "simulation_engines",
        "Simulator": "simulation_engines",
        "IndexedRouter": "routing_engines",
        "_context_engine": "removal_engines",
        "_incremental_engine": "removal_engines",
        "_rebuild_engine": "removal_engines",
    }

    #: Path components any one of which whitelists a file.
    ALLOWED_PARTS = frozenset({"perf", "tests"})

    #: Modules allowed to touch engines directly: the providers that
    #: define/register the built-ins, and the registry itself.
    ALLOWED_MODULES = frozenset(
        {
            "repro.api.registry",
            "repro.core.removal",
            "repro.routing.shortest_path",
            "repro.simulation.simulator",
            "repro.simulation.scenarios",
        }
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if any(part in self.ALLOWED_PARTS for part in ctx.parts):
            return ()
        if ctx.module in self.ALLOWED_MODULES or (
            ctx.module or ""
        ).startswith("repro.perf"):
            return ()
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr
                if isinstance(func, ast.Attribute)
                else None
            )
            if name in self.ENGINE_CALLABLES:
                registry = self.ENGINE_CALLABLES[name]
                findings.append(
                    ctx.finding(
                        node,
                        self.rule_id,
                        f"direct construction of engine '{name}' bypasses the "
                        f"'{registry}' registry; resolve the implementation "
                        "by name so RunSpec/CLI dispatch and cross_check see "
                        "every call",
                    )
                )
        return findings
