"""Built-in lint rules — importing this module registers all of them.

This is the provider module of :data:`repro.lint.base.lint_rules`: the
registry imports it lazily on first lookup, exactly like the engine
registries import their providers.  Adding a rule means adding a module
here (or anywhere) that subclasses :class:`~repro.lint.base.LintRule` and
decorates it with ``@lint_rules.register("<rule-id>")``, then importing it
from this provider so the built-in set always loads together.
"""

from repro.lint.rules import (  # noqa: F401  (imported for registration)
    coverage,
    determinism,
    fingerprint,
    process_boundary,
    registry_discipline,
)
