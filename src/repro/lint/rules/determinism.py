"""Determinism rules: all randomness flows from an explicit seed.

The whole experiment API rests on :meth:`RunSpec.fingerprint` addressing a
*pure function of the spec*: two runs of one spec must produce identical
artifacts, or the shared cache serves poison.  These rules catch the three
ways that purity classically rots:

* ``det-global-random`` — using the shared module-level RNG
  (``random.random()``, ``random.shuffle``, ``from random import choice``)
  instead of a ``random.Random(seed)`` instance threaded from
  :attr:`RunSpec.seed`;
* ``det-unseeded-rng`` — constructing ``random.Random()`` with no seed
  (seeded by OS entropy, different every run);
* ``det-wallclock`` — reading the wall clock (``time.time``,
  ``datetime.now``) outside the top-level ``benchmarks/`` timing scripts
  (durations belong to ``time.perf_counter``/``monotonic``, which these
  rules deliberately allow);
* ``det-set-order`` — iterating a ``set``/``frozenset`` (or feeding one to
  ``join``/``list``/``tuple``/``enumerate``) where the order reaches
  output, without a ``sorted(...)`` wrapper.  Set iteration order depends
  on insertion history and string hash randomization, so it must never
  feed canonical JSON, error messages or serialized documents.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set

from repro.lint.base import FileContext, LintRule, lint_rules
from repro.lint.findings import Finding


def _module_aliases(tree: ast.Module, module: str) -> Set[str]:
    """Local names ``module`` is importable under (``import random as rnd``)."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module:
                    aliases.add(alias.asname or alias.name)
    return aliases


@lint_rules.register("det-global-random")
class GlobalRandomRule(LintRule):
    """Uses of the module-level RNG instead of a seeded instance."""

    rule_id = "det-global-random"
    description = (
        "randomness must come from a random.Random(seed) instance threaded "
        "from RunSpec.seed, never the shared module-level RNG"
    )

    #: ``random.`` attributes that are fine to touch: the seedable class
    #: itself (SystemRandom is deliberately absent — OS entropy is the bug).
    ALLOWED_ATTRS = frozenset({"Random"})

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        aliases = _module_aliases(ctx.tree, "random")
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name not in self.ALLOWED_ATTRS:
                        findings.append(
                            ctx.finding(
                                node,
                                self.rule_id,
                                f"'from random import {alias.name}' binds the "
                                "shared module-level RNG; import Random and "
                                "seed an instance explicitly",
                            )
                        )
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id in aliases
                and node.attr not in self.ALLOWED_ATTRS
            ):
                findings.append(
                    ctx.finding(
                        node,
                        self.rule_id,
                        f"'random.{node.attr}' uses the shared module-level "
                        "RNG; draw from a random.Random(seed) instance "
                        "threaded from RunSpec.seed",
                    )
                )
        return findings


@lint_rules.register("det-unseeded-rng")
class UnseededRngRule(LintRule):
    """``random.Random()`` constructed without an explicit seed."""

    rule_id = "det-unseeded-rng"
    description = "random.Random() without a seed draws OS entropy — pass a seed"

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        aliases = _module_aliases(ctx.tree, "random")
        from_imports = {
            alias.asname or alias.name
            for node in ast.walk(ctx.tree)
            if isinstance(node, ast.ImportFrom) and node.module == "random"
            for alias in node.names
            if alias.name == "Random"
        }
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or node.args or node.keywords:
                continue
            func = node.func
            is_random_class = (
                isinstance(func, ast.Attribute)
                and func.attr == "Random"
                and isinstance(func.value, ast.Name)
                and func.value.id in aliases
            ) or (isinstance(func, ast.Name) and func.id in from_imports)
            if is_random_class:
                findings.append(
                    ctx.finding(
                        node,
                        self.rule_id,
                        "random.Random() without a seed is entropy-seeded and "
                        "differs every run; pass a seed derived from "
                        "RunSpec.seed",
                    )
                )
        return findings


@lint_rules.register("det-wallclock")
class WallClockRule(LintRule):
    """Wall-clock reads outside the top-level ``benchmarks/`` scripts."""

    rule_id = "det-wallclock"
    description = (
        "time.time/datetime.now read the wall clock; use perf_counter/"
        "monotonic for durations, or thread timestamps in explicitly"
    )

    TIME_ATTRS = frozenset({"time", "time_ns"})
    DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.parts and ctx.parts[0] == "benchmarks":
            return ()
        findings: List[Finding] = []
        time_aliases = _module_aliases(ctx.tree, "time")
        datetime_aliases = _module_aliases(ctx.tree, "datetime")
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            value = node.value
            if (
                node.attr in self.TIME_ATTRS
                and isinstance(value, ast.Name)
                and value.id in time_aliases
            ):
                findings.append(
                    ctx.finding(
                        node,
                        self.rule_id,
                        f"'time.{node.attr}' reads the wall clock; durations "
                        "belong to time.perf_counter/monotonic and anything "
                        "cached must be a pure function of the spec",
                    )
                )
            elif node.attr in self.DATETIME_ATTRS and (
                (isinstance(value, ast.Name) and value.id == "datetime")
                or (
                    isinstance(value, ast.Attribute)
                    and value.attr in {"datetime", "date"}
                    and isinstance(value.value, ast.Name)
                    and value.value.id in datetime_aliases
                )
            ):
                findings.append(
                    ctx.finding(
                        node,
                        self.rule_id,
                        f"'datetime.{node.attr}' reads the wall clock; thread "
                        "timestamps in explicitly so cached artifacts stay "
                        "reproducible",
                    )
                )
        return findings


# ----------------------------------------------------------------------
# det-set-order
# ----------------------------------------------------------------------

_SET_OP_METHODS = frozenset(
    {"union", "difference", "intersection", "symmetric_difference"}
)
_ORDER_SENSITIVE_BUILTINS = frozenset({"list", "tuple", "enumerate", "iter"})


@lint_rules.register("det-set-order")
class SetOrderRule(LintRule):
    """Set iteration order reaching order-sensitive output.

    Everywhere, feeding a set straight into ``"...".join`` / ``list`` /
    ``tuple`` / ``enumerate`` / ``iter`` is flagged.  In the canonical-
    output modules (:data:`CANONICAL_MODULES` — the ones whose output is
    hashed, cached or serialized) plain ``for`` loops over sets are flagged
    too: even an order-independent-looking body tends to grow an append.
    Wrapping the set in ``sorted(...)`` is the sanctioned fix.
    """

    rule_id = "det-set-order"
    description = (
        "iterating a set feeds arbitrary order into output; wrap in sorted()"
    )

    #: Modules whose output is canonical (hashed, cached or serialized):
    #: here even a bare ``for`` over a set is a finding.
    CANONICAL_MODULES = frozenset(
        {
            "repro.api.spec",
            "repro.api.cache",
            "repro.api.result",
            "repro.api.runner",
            "repro.api.reports",
            "repro.simulation.events",
            "repro.model.serialization",
        }
    )

    # ------------------------------------------------------------------
    def _collect_set_names(self, tree: ast.Module) -> Set[str]:
        """Names bound (anywhere in the file) to an obviously-set expression."""
        names: Set[str] = set()
        grew = True
        while grew:
            grew = False
            for node in ast.walk(tree):
                if isinstance(node, ast.Assign) and self._is_set_expr(node.value, names):
                    for target in node.targets:
                        if isinstance(target, ast.Name) and target.id not in names:
                            names.add(target.id)
                            grew = True
                elif (
                    isinstance(node, ast.AnnAssign)
                    and node.value is not None
                    and isinstance(node.target, ast.Name)
                    and self._is_set_expr(node.value, names)
                    and node.target.id not in names
                ):
                    names.add(node.target.id)
                    grew = True
        return names

    def _is_set_expr(self, node: ast.AST, set_names: Set[str]) -> bool:
        """Conservatively: does ``node`` evaluate to a set?"""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in set_names
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in {"set", "frozenset"}:
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _SET_OP_METHODS
                and self._is_set_expr(func.value, set_names)
            ):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set_expr(node.left, set_names) or self._is_set_expr(
                node.right, set_names
            )
        return False

    # ------------------------------------------------------------------
    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        set_names = self._collect_set_names(ctx.tree)
        canonical = ctx.module in self.CANONICAL_MODULES

        def flag(node: ast.AST, what: str) -> None:
            findings.append(
                ctx.finding(
                    node,
                    self.rule_id,
                    f"{what} iterates a set in arbitrary order; wrap it in "
                    "sorted(...) so the output is deterministic",
                )
            )

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "join"
                    and node.args
                    and self._is_set_expr(node.args[0], set_names)
                ):
                    flag(node, "str.join over a set")
                elif (
                    isinstance(func, ast.Name)
                    and func.id in _ORDER_SENSITIVE_BUILTINS
                    and node.args
                    and self._is_set_expr(node.args[0], set_names)
                ):
                    flag(node, f"{func.id}() over a set")
            elif canonical and isinstance(node, (ast.For, ast.AsyncFor)):
                if self._is_set_expr(node.iter, set_names):
                    flag(node, "for-loop over a set in a canonical-output module")
            elif canonical and isinstance(
                node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)
            ):
                for generator in node.generators:
                    if self._is_set_expr(generator.iter, set_names):
                        flag(node, "comprehension over a set in a canonical-output module")
        return findings
