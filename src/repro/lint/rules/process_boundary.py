"""Process-boundary safety: only plain data crosses ``parallel_map``.

The sweep executor pickles the callable and every work item into pool
workers.  The repo's contract (enforced at every existing call site by
hand until now) is that work items are *plain spec data* — dicts, strings,
numbers, tuples thereof — never live designs, contexts or engine objects:
those drag megabytes through pickle, tie workers to parent state, and
break the "workers resolve everything by registry name" rule that keeps
the cache coherent.

The rule inspects every ``parallel_map(func, items, ...)`` call site:

* ``func`` must be a named module-level callable (or ``functools.partial``
  over one) — lambdas and comprehension-local closures cannot pickle;
* when ``items`` is statically visible (a literal, a comprehension, or a
  name assigned one in the same file), each element expression is checked:
  constructor calls (a Capitalized callable) and lambdas are flagged,
  conversion calls like ``.to_dict()`` and plain names/constants pass.

A bare ``items`` name the rule cannot resolve is accepted — this is a
heuristic pass, not a type system.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional

from repro.lint.base import FileContext, LintRule, lint_rules
from repro.lint.findings import Finding

#: Calls allowed inside a work-item expression: plain-data conversions.
_PLAIN_CALLS = frozenset(
    {
        "to_dict",
        "asdict",
        "fingerprint",
        "synthesis_fingerprint",
        "dict",
        "list",
        "tuple",
        "sorted",
        "str",
        "int",
        "float",
        "range",
        "zip",
    }
)


def _call_name(func: ast.AST) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


@lint_rules.register("process-boundary")
class ProcessBoundaryRule(LintRule):
    """Non-plain-data arguments to ``parallel_map``."""

    rule_id = "process-boundary"
    description = (
        "only plain spec data may cross the parallel_map process boundary; "
        "convert objects with .to_dict() and rebuild them in the worker"
    )

    # ------------------------------------------------------------------
    def _assignments(self, tree: ast.Module) -> Dict[str, ast.AST]:
        """Every simple ``name = expr`` in the file (last one wins)."""
        assigns: Dict[str, ast.AST] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        assigns[target.id] = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    assigns[node.target.id] = node.value
        return assigns

    def _element_exprs(
        self, items: ast.AST, assigns: Dict[str, ast.AST]
    ) -> List[ast.AST]:
        """The per-item expressions of ``items``, when statically visible."""
        if isinstance(items, ast.Name):
            resolved = assigns.get(items.id)
            if resolved is None or isinstance(resolved, ast.Name):
                return []
            items = resolved
        if isinstance(items, (ast.List, ast.Tuple)):
            return list(items.elts)
        if isinstance(items, (ast.ListComp, ast.GeneratorExp)):
            return [items.elt]
        return []

    def _flag_non_plain(
        self, ctx: FileContext, element: ast.AST, findings: List[Finding]
    ) -> None:
        for node in ast.walk(element):
            if isinstance(node, ast.Lambda):
                findings.append(
                    ctx.finding(
                        node,
                        self.rule_id,
                        "a lambda inside a parallel_map work item cannot "
                        "cross the process boundary",
                    )
                )
            elif isinstance(node, ast.Call):
                name = _call_name(node.func)
                if name and name[:1].isupper() and name not in _PLAIN_CALLS:
                    findings.append(
                        ctx.finding(
                            node,
                            self.rule_id,
                            f"work item constructs '{name}(...)'; only plain "
                            "spec data may cross the parallel_map process "
                            "boundary — ship a dict (e.g. .to_dict()) and "
                            "rebuild in the worker",
                        )
                    )

    # ------------------------------------------------------------------
    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        assigns = self._assignments(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if _call_name(node.func) != "parallel_map" or not node.args:
                continue
            func_arg = node.args[0]
            if isinstance(func_arg, ast.Lambda):
                findings.append(
                    ctx.finding(
                        func_arg,
                        self.rule_id,
                        "parallel_map callable is a lambda, which cannot "
                        "pickle into pool workers; use a module-level "
                        "function",
                    )
                )
            if len(node.args) > 1:
                for element in self._element_exprs(node.args[1], assigns):
                    self._flag_non_plain(ctx, element, findings)
        return findings
