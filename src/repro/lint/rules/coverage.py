"""Cross-check coverage: every registered engine name appears in a test.

The cross-check machinery (``cross_check=True`` re-running a reference
engine and raising on divergence) only proves anything for engines a test
actually exercises.  This rule pairs every ``<registry>.register(<name>)``
site in the linted sources with the string literals of the test tree: a
registered name no test ever mentions is an engine the equivalence suites
silently skip.

Registration names are resolved statically — a literal first argument or a
module-level string constant (``ENGINE_LEGACY = "legacy"``) both work.
The rule stays quiet when no test tree was provided (e.g. linting a
fixture directory), so it never produces vacuous findings.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set

from repro.lint.base import FileContext, LintRule, ProjectContext, lint_rules
from repro.lint.findings import Finding


@dataclass(frozen=True)
class _Registration:
    registry: str
    name: str
    path: str
    line: int
    col: int


@lint_rules.register("engine-test-coverage")
class EngineTestCoverageRule(LintRule):
    """Registered engine names that no test references."""

    rule_id = "engine-test-coverage"
    description = (
        "every registered engine/strategy/scenario name must be referenced "
        "by at least one test, or the cross-check suites silently skip it"
    )

    #: Registries whose registrations must be test-covered.
    REGISTRIES = frozenset(
        {
            "removal_engines",
            "ordering_strategies",
            "synthesis_backends",
            "routing_engines",
            "simulation_engines",
            "traffic_scenarios",
            "topology_families",
            "fault_models",
            "recovery_policies",
        }
    )

    def __init__(self) -> None:
        self._registrations: List[_Registration] = []

    # ------------------------------------------------------------------
    def _resolve_name(
        self, arg: ast.AST, constants: Dict[str, str]
    ) -> Optional[str]:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
        if isinstance(arg, ast.Name):
            return constants.get(arg.id)
        return None

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        constants: Dict[str, str] = {}
        for node in ctx.tree.body:
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Constant):
                if isinstance(node.value.value, str):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            constants[target.id] = node.value.value
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "register"
                and isinstance(func.value, ast.Name)
                and func.value.id in self.REGISTRIES
                and node.args
            ):
                name = self._resolve_name(node.args[0], constants)
                if name is not None:
                    self._registrations.append(
                        _Registration(
                            registry=func.value.id,
                            name=name,
                            path=ctx.rel_path,
                            line=node.lineno,
                            col=node.col_offset,
                        )
                    )
        return ()

    # ------------------------------------------------------------------
    def finalize(self, project: ProjectContext) -> Iterable[Finding]:
        if not project.test_files or not self._registrations:
            return ()
        referenced: Set[str] = set()
        for ctx in project.test_files:
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.Constant) and isinstance(node.value, str):
                    referenced.add(node.value)
        findings: List[Finding] = []
        for registration in self._registrations:
            if registration.name in referenced:
                continue
            findings.append(
                Finding(
                    path=registration.path,
                    line=registration.line,
                    col=registration.col,
                    rule=self.rule_id,
                    message=(
                        f"registered {registration.registry} entry "
                        f"'{registration.name}' is not referenced by any "
                        "test; the cross-check suites never exercise it"
                    ),
                )
            )
        return findings
