"""Fingerprint completeness: every ``RunSpec`` field is content-addressed.

The artifact cache keys on :meth:`RunSpec.fingerprint`, which hashes the
canonical ``to_dict()`` form.  A field that exists on the dataclass but
never reaches ``to_dict()`` silently aliases distinct evaluation points to
one cache address — the worst class of bug this repo can have, because no
test fails: the cache just serves the wrong physics.

The rule combines AST analysis with runtime introspection:

* **AST**: the fields of the ``RunSpec`` classdef are read from its
  annotated assignments; the *covered* names are the string constants
  reachable from the ``to_dict``/``fingerprint`` method bodies, following
  module-level constant tuples to a fixpoint (so the
  ``_SIM_AXIS_FIELDS``-driven elision loop counts as coverage);
* **runtime**: when the linted file is the real ``repro.api.spec`` module,
  ``dataclasses.fields(RunSpec)`` is unioned in, so a dynamically injected
  field cannot hide from the static pass;
* **elision allowlist**: a field may be *deliberately* excluded from the
  fingerprint by listing it in the module-level ``FINGERPRINT_ELIDED``
  tuple — an explicit, reviewable act instead of a silent omission.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set

from repro.lint.base import FileContext, LintRule, lint_rules
from repro.lint.findings import Finding

#: Methods whose bodies define fingerprint coverage.
_FINGERPRINT_METHODS = ("to_dict", "fingerprint")

#: Module-level tuple naming fields deliberately left out of the fingerprint.
ELISION_CONSTANT = "FINGERPRINT_ELIDED"


def _is_dataclass_def(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = target.attr if isinstance(target, ast.Attribute) else getattr(target, "id", "")
        if name == "dataclass":
            return True
    return False


def _dataclass_fields(classdef: ast.ClassDef) -> Dict[str, ast.AnnAssign]:
    """Field name -> defining node, skipping ``ClassVar`` annotations."""
    fields: Dict[str, ast.AnnAssign] = {}
    for node in classdef.body:
        if not isinstance(node, ast.AnnAssign) or not isinstance(node.target, ast.Name):
            continue
        annotation = ast.dump(node.annotation)
        if "ClassVar" in annotation:
            continue
        fields[node.target.id] = node
    return fields


def _string_constants(node: ast.AST) -> Set[str]:
    return {
        child.value
        for child in ast.walk(node)
        if isinstance(child, ast.Constant) and isinstance(child.value, str)
    }


def _referenced_names(node: ast.AST) -> Set[str]:
    return {child.id for child in ast.walk(node) if isinstance(child, ast.Name)}


def _module_assignments(tree: ast.Module) -> Dict[str, ast.AST]:
    """Module-level ``NAME = <expr>`` assignments (last one wins)."""
    assigns: Dict[str, ast.AST] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    assigns[target.id] = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                assigns[node.target.id] = node.value
    return assigns


@lint_rules.register("fingerprint-completeness")
class FingerprintCompletenessRule(LintRule):
    """Every ``RunSpec`` field is fingerprinted or explicitly elided."""

    rule_id = "fingerprint-completeness"
    description = (
        "a RunSpec field must appear in the canonical to_dict() form or in "
        "the FINGERPRINT_ELIDED allowlist — silent omissions alias cache keys"
    )

    #: Name of the spec dataclass the rule introspects.
    SPEC_CLASS = "RunSpec"

    #: Module whose runtime dataclass is unioned with the AST fields.
    RUNTIME_MODULE = "repro.api.spec"

    # ------------------------------------------------------------------
    def _covered_names(self, classdef: ast.ClassDef, tree: ast.Module) -> Set[str]:
        """String constants reachable from the fingerprinting methods.

        Seeds with the ``to_dict``/``fingerprint`` bodies, then follows
        module-level constant assignments referenced from already-covered
        code to a fixpoint — two levels of indirection like
        ``_SIM_FIELD_DEFAULTS`` -> ``_SIM_AXIS_FIELDS`` resolve fully.
        """
        covered: Set[str] = set()
        pending: Set[str] = set()
        for node in classdef.body:
            if isinstance(node, ast.FunctionDef) and node.name in _FINGERPRINT_METHODS:
                covered |= _string_constants(node)
                pending |= _referenced_names(node)
        assigns = _module_assignments(tree)
        resolved: Set[str] = set()
        while pending:
            name = pending.pop()
            if name in resolved or name not in assigns:
                continue
            resolved.add(name)
            value = assigns[name]
            covered |= _string_constants(value)
            pending |= _referenced_names(value)
        return covered

    def _elided_names(self, tree: ast.Module) -> Set[str]:
        value = _module_assignments(tree).get(ELISION_CONSTANT)
        return _string_constants(value) if value is not None else set()

    def _runtime_fields(self, ctx: FileContext) -> Set[str]:
        """``dataclasses.fields(RunSpec)`` of the real module, best effort."""
        if ctx.module != self.RUNTIME_MODULE:
            return set()
        try:
            import dataclasses
            import importlib

            module = importlib.import_module(self.RUNTIME_MODULE)
            spec_class = getattr(module, self.SPEC_CLASS)
            return {spec_field.name for spec_field in dataclasses.fields(spec_class)}
        except Exception:  # pragma: no cover - introspection is best effort
            return set()

    # ------------------------------------------------------------------
    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        classdef: Optional[ast.ClassDef] = None
        for node in ctx.tree.body:
            if (
                isinstance(node, ast.ClassDef)
                and node.name == self.SPEC_CLASS
                and _is_dataclass_def(node)
            ):
                classdef = node
                break
        if classdef is None:
            return ()

        ast_fields = _dataclass_fields(classdef)
        covered = self._covered_names(classdef, ctx.tree)
        elided = self._elided_names(ctx.tree)
        runtime_only = self._runtime_fields(ctx) - set(ast_fields)

        findings: List[Finding] = []
        for name, node in ast_fields.items():
            if name in covered or name in elided:
                continue
            findings.append(
                ctx.finding(
                    node,
                    self.rule_id,
                    f"{self.SPEC_CLASS} field '{name}' is neither serialized "
                    "by to_dict()/fingerprint() nor listed in "
                    f"{ELISION_CONSTANT}; an unfingerprinted field aliases "
                    "distinct specs to one cache address",
                )
            )
        for name in sorted(runtime_only - covered - elided):
            findings.append(
                ctx.finding(
                    classdef,
                    self.rule_id,
                    f"runtime {self.SPEC_CLASS} field '{name}' (not visible "
                    "in the class body) is neither fingerprinted nor in "
                    f"{ELISION_CONSTANT}",
                )
            )
        return findings
