"""Algorithm 1 — the deadlock-removal driver.

The outer loop of the paper's method:

1. build the channel dependency graph from the current routes;
2. find the smallest cycle (breaking the smallest cycle first often also
   breaks larger cycles sharing edges with it);
3. evaluate the cost of breaking the cycle in the forward and in the
   backward direction (Algorithm 2) and apply the cheaper break;
4. update topology and routes and repeat until the CDG is acyclic.

On top of the paper's algorithm this module exposes two ablation knobs used
by the benchmark harness: the cycle-selection heuristic (smallest / largest
/ random) and the direction policy (best-of-both / forward-only /
backward-only).

Interchangeable engines drive the loop, looked up by name in the pluggable
:data:`repro.api.registry.removal_engines` registry (new engines register
with a decorator and become valid ``engine=`` values everywhere, including
:class:`~repro.api.spec.RunSpec` and the CLI).  Built-ins:

* ``engine="context"`` (default) — everything the incremental engine does,
  plus the shared per-design state of
  :class:`~repro.perf.design_context.DesignContext`: cost tables for both
  break directions come from one pass over interned channel-id arrays
  (:mod:`repro.perf.cost_index`), the affected flows of a break are read
  from the indexed per-edge flow sets instead of scanning every route, and
  the smallest-cycle BFS is depth-limited to where a strictly shorter
  cycle can still exist.  Identical
  :class:`~repro.core.report.BreakAction` sequences to both other engines.
* ``engine="incremental"`` — the PR 1 performance core: the CDG is
  maintained incrementally from the route deltas each break reports, and
  the smallest-cycle search is SCC-pruned and cached per component,
  re-searching only the dirty region.  Kept byte-for-byte as the PR 3
  baseline the scaling benchmark measures against.
* ``engine="rebuild"`` — the seed behaviour: ``build_cdg(work)`` from
  scratch and a full BFS sweep per iteration.  Kept as the reference for
  cross-checks, ablation selections (largest / random) and benchmarking.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Optional

from repro.api.registry import removal_engines
from repro.core.breaker import RESOURCE_PHYSICAL, RESOURCE_VIRTUAL, break_cycle
from repro.core.cdg import build_cdg
from repro.core.cost import BACKWARD, FORWARD, find_dependency_to_break
from repro.core.cycles import (
    count_cycles,
    find_all_cycles,
    find_largest_cycle,
    find_smallest_cycle,
)
from repro.core.report import RemovalResult
from repro.errors import ConvergenceError, RemovalError
from repro.model.design import NocDesign
from repro.model.validation import validate_design
from repro.perf.cdg_index import CDGIndex
from repro.perf.cycle_search import IncrementalCycleSearch, count_cycles_indexed
from repro.perf.design_context import DesignContext

SELECT_SMALLEST = "smallest"
SELECT_LARGEST = "largest"
SELECT_RANDOM = "random"
_SELECTIONS = (SELECT_SMALLEST, SELECT_LARGEST, SELECT_RANDOM)

POLICY_BEST = "best"
POLICY_FORWARD = "forward"
POLICY_BACKWARD = "backward"
_POLICIES = (POLICY_BEST, POLICY_FORWARD, POLICY_BACKWARD)

ENGINE_CONTEXT = "context"
ENGINE_INCREMENTAL = "incremental"
ENGINE_REBUILD = "rebuild"
#: Engine used when callers do not choose one explicitly.
DEFAULT_REMOVAL_ENGINE = ENGINE_CONTEXT


class DeadlockRemover:
    """Configurable implementation of Algorithm 1.

    Parameters
    ----------
    cycle_selection:
        Which cycle to break at every iteration.  ``"smallest"`` is the
        paper's heuristic; ``"largest"`` and ``"random"`` exist for the
        ablation benchmark.
    direction_policy:
        ``"best"`` compares forward and backward costs (the paper);
        ``"forward"`` / ``"backward"`` force a single direction.
    resource_mode:
        ``"virtual"`` (default) duplicates channels as extra VCs on the same
        physical link; ``"physical"`` adds parallel physical links instead,
        for NoC architectures without VC support (Section 1 of the paper).
    max_iterations:
        Safety cap; ``None`` derives a generous bound from the CDG size.
    count_initial_cycles:
        When true the initial number of elementary cycles is counted (can be
        expensive on dense CDGs) and stored in the result.
    seed:
        Random seed, only used with ``cycle_selection="random"``.
    on_iteration:
        Optional callback invoked with each
        :class:`~repro.core.report.BreakAction` as it happens.
    validate:
        Validate the design before and after removal (recommended).
    engine:
        ``"context"`` (default) adds the shared
        :class:`~repro.perf.design_context.DesignContext` state on top of
        the incremental loop: one-pass int-indexed cost tables, indexed
        affected-flow lookup and a depth-limited cycle BFS;
        ``"incremental"`` maintains the CDG from route deltas and runs the
        SCC-pruned indexed cycle search; ``"rebuild"`` is the seed
        behaviour (full ``build_cdg`` + full BFS sweep per iteration).  All
        three produce identical break sequences; the accelerated engines
        only speed up the paper's ``"smallest"`` selection and
        transparently fall back to rebuilding for the ablation selections.
    cross_check:
        Debug flag: after every incremental update, rebuild the CDG from
        scratch and assert the index matches it exactly (slow — for tests
        and debugging only).  The context engine additionally re-derives
        every cost table (and break choice) with the reference builder,
        raising on any mismatch; the CDG verification covers the per-edge
        flow sets its affected-flow lookup is served from.  Ignored by the
        rebuild engine.
    """

    def __init__(
        self,
        *,
        cycle_selection: str = SELECT_SMALLEST,
        direction_policy: str = POLICY_BEST,
        resource_mode: str = RESOURCE_VIRTUAL,
        max_iterations: Optional[int] = None,
        count_initial_cycles: bool = True,
        seed: int = 0,
        on_iteration: Optional[Callable] = None,
        validate: bool = True,
        engine: str = DEFAULT_REMOVAL_ENGINE,
        cross_check: bool = False,
    ):
        if cycle_selection not in _SELECTIONS:
            raise RemovalError(f"unknown cycle selection {cycle_selection!r}")
        if direction_policy not in _POLICIES:
            raise RemovalError(f"unknown direction policy {direction_policy!r}")
        if resource_mode not in (RESOURCE_VIRTUAL, RESOURCE_PHYSICAL):
            raise RemovalError(f"unknown resource mode {resource_mode!r}")
        if engine not in removal_engines:
            raise RemovalError(
                f"unknown removal engine {engine!r}; "
                f"available: {', '.join(removal_engines.names())}"
            )
        self.cycle_selection = cycle_selection
        self.direction_policy = direction_policy
        self.resource_mode = resource_mode
        self.max_iterations = max_iterations
        self.count_initial_cycles = count_initial_cycles
        self.seed = seed
        self.on_iteration = on_iteration
        self.validate = validate
        self.engine = engine
        self.cross_check = cross_check

    # ------------------------------------------------------------------
    def _select_cycle(self, cdg, rng: random.Random):
        if self.cycle_selection == SELECT_SMALLEST:
            return find_smallest_cycle(cdg)
        if self.cycle_selection == SELECT_LARGEST:
            return find_largest_cycle(cdg, limit=2000)
        cycles = find_all_cycles(cdg, limit=2000)
        if not cycles:
            return None
        return cycles[rng.randrange(len(cycles))]

    def _choose_break(self, cycle, routes):
        if self.direction_policy == POLICY_FORWARD:
            cost, pos, table = find_dependency_to_break(cycle, routes, FORWARD)
            return FORWARD, cost, pos, table
        if self.direction_policy == POLICY_BACKWARD:
            cost, pos, table = find_dependency_to_break(cycle, routes, BACKWARD)
            return BACKWARD, cost, pos, table
        f_cost, f_pos, f_table = find_dependency_to_break(cycle, routes, FORWARD)
        b_cost, b_pos, b_table = find_dependency_to_break(cycle, routes, BACKWARD)
        if f_cost <= b_cost:
            return FORWARD, f_cost, f_pos, f_table
        return BACKWARD, b_cost, b_pos, b_table

    # ------------------------------------------------------------------
    def remove(self, design: NocDesign, *, in_place: bool = False) -> RemovalResult:
        """Run Algorithm 1 on ``design`` and return the removal result.

        By default the input design is left untouched and the result carries
        a modified copy; pass ``in_place=True`` to mutate the input.
        """
        start = time.perf_counter()
        if self.validate:
            validate_design(design)
        if self.engine == ENGINE_CONTEXT and not in_place:
            # Warm the *source* design's CDG index before copying: copy()
            # then forks it into the work design's context, so repeated
            # removal runs on the same design clone the index per run
            # instead of rebuilding it from the routes per run.
            DesignContext.of(design).cdg_index()
        work = design if in_place else design.copy()

        rng = random.Random(self.seed)
        engine = removal_engines.get(self.engine)
        result = engine(self, work, rng)

        result.runtime_seconds = time.perf_counter() - start
        if self.validate:
            validate_design(work)
        return result

    def _remove_rebuild(self, work: NocDesign, rng: random.Random) -> RemovalResult:
        """The seed loop: full CDG rebuild and full cycle re-search per break."""
        cdg = build_cdg(work)
        initial_cycles = 0
        initially_free = cdg.is_acyclic()
        if self.count_initial_cycles and not initially_free:
            initial_cycles = count_cycles(cdg, limit=2000)

        max_iterations = self.max_iterations
        if max_iterations is None:
            max_iterations = 100 + 10 * max(cdg.edge_count, 1)

        result = RemovalResult(
            design=work,
            initially_deadlock_free=initially_free,
            initial_cycle_count=initial_cycles,
        )

        iteration = 0
        while True:
            cycle = self._select_cycle(cdg, rng)
            if cycle is None:
                break
            iteration += 1
            if iteration > max_iterations:
                remaining = count_cycles(cdg, limit=100)
                raise ConvergenceError(iteration - 1, remaining)
            action = self._apply_break(work, cycle, iteration, result)
            # The CDG is a pure function of the routes, so rebuilding it after
            # every break keeps it consistent by construction (Step 12).
            cdg = build_cdg(work)

        result.iterations = iteration
        if not cdg.is_acyclic():  # pragma: no cover - defensive
            raise RemovalError("internal error: CDG still cyclic after removal loop")
        return result

    def _remove_incremental(self, work: NocDesign) -> RemovalResult:
        """The performance-core loop: route-delta CDG updates + indexed search.

        Produces the exact same :class:`~repro.core.report.BreakAction`
        sequence as :meth:`_remove_rebuild` with ``cycle_selection="smallest"``
        (enforced by ``cross_check=True`` and the equivalence test suite).
        """
        index = CDGIndex.from_routes(work.routes)
        initially_free = index.is_acyclic()
        initial_cycles = 0
        if self.count_initial_cycles and not initially_free:
            initial_cycles = count_cycles_indexed(index, limit=2000)

        max_iterations = self.max_iterations
        if max_iterations is None:
            max_iterations = 100 + 10 * max(index.edge_count, 1)

        result = RemovalResult(
            design=work,
            initially_deadlock_free=initially_free,
            initial_cycle_count=initial_cycles,
        )

        search = IncrementalCycleSearch(index)
        iteration = 0
        while True:
            cycle = search.find_smallest()
            if cycle is None:
                break
            iteration += 1
            if iteration > max_iterations:
                remaining = count_cycles_indexed(index, limit=100)
                raise ConvergenceError(iteration - 1, remaining)
            action = self._apply_break(work, cycle, iteration, result)
            # Apply the break's route delta instead of rebuilding: remove the
            # dependencies of every rerouted flow's old route, add the new ones.
            for flow_name, old_route in (action.previous_routes or {}).items():
                index.apply_route_change(
                    flow_name, old_route.channels, work.routes.route(flow_name).channels
                )
            if self.cross_check:
                index.verify_against(build_cdg(work))

        result.iterations = iteration
        if not index.is_acyclic():  # pragma: no cover - defensive
            raise RemovalError("internal error: CDG still cyclic after removal loop")
        return result

    def _remove_context(self, work: NocDesign) -> RemovalResult:
        """The design-context loop: shared state + one-pass cost tables.

        Same break sequence as the other engines (enforced by
        ``cross_check=True``, the hypothesis suites and the per-benchmark
        action-equality tests); on top of :meth:`_remove_incremental` the
        cost tables of both directions come from one pass over interned
        channel-id arrays, the affected flows of each break are read from
        the indexed per-edge flow sets, and the cycle BFS is depth-limited.
        """
        context = DesignContext.of(work)
        index = context.cdg_index()
        cost_engine = context.cost_engine()
        initially_free = index.is_acyclic()
        initial_cycles = 0
        if self.count_initial_cycles and not initially_free:
            initial_cycles = count_cycles_indexed(index, limit=2000)

        max_iterations = self.max_iterations
        if max_iterations is None:
            max_iterations = 100 + 10 * max(index.edge_count, 1)

        result = RemovalResult(
            design=work,
            initially_deadlock_free=initially_free,
            initial_cycle_count=initial_cycles,
        )

        policy = {
            POLICY_BEST: "best",
            POLICY_FORWARD: FORWARD,
            POLICY_BACKWARD: BACKWARD,
        }[self.direction_policy]
        search = IncrementalCycleSearch(index, depth_limited=True)
        iteration = 0
        while True:
            cycle = search.find_smallest()
            if cycle is None:
                break
            iteration += 1
            if iteration > max_iterations:
                remaining = count_cycles_indexed(index, limit=100)
                raise ConvergenceError(iteration - 1, remaining)
            direction, cost, position, table = cost_engine.best_break(cycle, policy)
            if self.cross_check:
                self._verify_indexed_choice(work, cycle, direction, position, table)
            action = break_cycle(
                work,
                cycle,
                position,
                direction,
                iteration=iteration,
                cost_table=table,
                resource_mode=self.resource_mode,
                context=context,
            )
            result.actions.append(action)
            if self.on_iteration is not None:
                self.on_iteration(action)
            for flow_name, old_route in (action.previous_routes or {}).items():
                context.apply_route_change(
                    flow_name, old_route, work.routes.route(flow_name)
                )
            if self.cross_check:
                index.verify_against(build_cdg(work))

        result.iterations = iteration
        if not index.is_acyclic():  # pragma: no cover - defensive
            raise RemovalError("internal error: CDG still cyclic after removal loop")
        return result

    def _verify_indexed_choice(self, work, cycle, direction, position, table) -> None:
        """Cross-check: the indexed cost engine must match the reference."""
        ref_direction, ref_cost, ref_position, ref_table = self._choose_break(
            cycle, work.routes
        )
        if (
            (direction, table.best_cost, position)
            != (ref_direction, ref_cost, ref_position)
            or table != ref_table
        ):
            raise RemovalError(
                "indexed cost engine diverged from the reference builder: "
                f"chose {direction!r} cost {table.best_cost} at position "
                f"{position}, reference chose {ref_direction!r} cost "
                f"{ref_cost} at position {ref_position}"
            )

    def _apply_break(self, work: NocDesign, cycle, iteration: int, result: RemovalResult):
        """Cost both directions, break the cheaper one, record the action."""
        direction, cost, position, table = self._choose_break(cycle, work.routes)
        action = break_cycle(
            work,
            cycle,
            position,
            direction,
            iteration=iteration,
            cost_table=table,
            resource_mode=self.resource_mode,
        )
        result.actions.append(action)
        if self.on_iteration is not None:
            self.on_iteration(action)
        return action


@removal_engines.register(ENGINE_CONTEXT)
def _context_engine(
    remover: DeadlockRemover, work: NocDesign, rng: random.Random
) -> RemovalResult:
    """Default engine: design-context shared state + one-pass cost tables.

    Only accelerates the paper's ``"smallest"`` selection; the ablation
    selections transparently fall back to the rebuild loop.
    """
    if remover.cycle_selection != SELECT_SMALLEST:
        return remover._remove_rebuild(work, rng)
    return remover._remove_context(work)


@removal_engines.register(ENGINE_INCREMENTAL)
def _incremental_engine(
    remover: DeadlockRemover, work: NocDesign, rng: random.Random
) -> RemovalResult:
    """Default engine: route-delta CDG maintenance + indexed cycle search.

    Only accelerates the paper's ``"smallest"`` selection; the ablation
    selections transparently fall back to the rebuild loop.
    """
    if remover.cycle_selection != SELECT_SMALLEST:
        return remover._remove_rebuild(work, rng)
    return remover._remove_incremental(work)


@removal_engines.register(ENGINE_REBUILD)
def _rebuild_engine(
    remover: DeadlockRemover, work: NocDesign, rng: random.Random
) -> RemovalResult:
    """Seed engine: full ``build_cdg`` + full BFS sweep per iteration."""
    return remover._remove_rebuild(work, rng)


def remove_deadlocks(design: NocDesign, **options) -> RemovalResult:
    """Convenience wrapper: ``DeadlockRemover(**options).remove(design)``."""
    in_place = options.pop("in_place", False)
    remover = DeadlockRemover(**options)
    return remover.remove(design, in_place=in_place)


def is_deadlock_free(design: NocDesign) -> bool:
    """True when the design's CDG is already acyclic (no removal needed)."""
    return build_cdg(design).is_acyclic()
