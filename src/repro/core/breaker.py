"""Breaking a CDG cycle by duplicating channels and re-routing flows.

This implements ``BreakCycleForward`` and ``BreakCycleBackward`` from
Section 4.1 of the paper.  Breaking the dependency ``d(cm, cm+1)`` of a
cycle works on the real design, not just on the CDG:

1. every flow whose route uses ``cm`` immediately followed by ``cm+1`` is
   identified (these flows *create* the dependency);
2. for each such flow the cycle channels that must be duplicated are
   collected — from the flow's entry into the cycle up to ``cm`` for a
   forward break, from ``cm+1`` down to the flow's exit for a backward
   break (duplicating only the channel adjacent to the removed edge is not
   sufficient in general, see Figure 7 of the paper);
3. one new virtual channel is added to the physical link of every channel
   that needs duplication (flows share the duplicates, which is why the
   combined cost is the column maximum of the cost table);
4. the affected flows are re-routed onto the duplicated channels.

After the re-routing the dependency ``cm -> cm+1`` no longer exists in the
CDG rebuilt from the updated routes, because every flow that created it now
reaches ``cm+1`` from the duplicate ``cm'`` instead.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.cost import BACKWARD, FORWARD
from repro.core.cycles import cycle_edges
from repro.core.report import BreakAction
from repro.errors import RemovalError
from repro.model.channels import Channel
from repro.model.design import NocDesign
from repro.model.routes import Route

#: Duplicate channels as extra VCs on the same physical link (the paper's
#: default) or as parallel physical links (for architectures without VCs).
RESOURCE_VIRTUAL = "virtual"
RESOURCE_PHYSICAL = "physical"
_RESOURCE_MODES = (RESOURCE_VIRTUAL, RESOURCE_PHYSICAL)


def _find_edge_occurrence(route: Route, edge: Tuple[Channel, Channel]) -> int:
    """Index ``i`` such that ``(route[i], route[i+1]) == edge``, or -1."""
    for i, pair in enumerate(route.dependencies()):
        if pair == edge:
            return i
    return -1


def _positions_to_duplicate(
    route: Route,
    cycle_set: set,
    edge: Tuple[Channel, Channel],
    direction: str,
) -> List[int]:
    """Route positions whose channel must be duplicated for this flow."""
    occurrence = _find_edge_occurrence(route, edge)
    if occurrence < 0:
        return []
    if direction == FORWARD:
        candidate_range = range(0, occurrence + 1)
    else:
        candidate_range = range(occurrence + 1, len(route))
    return [p for p in candidate_range if route[p] in cycle_set]


def flows_creating_dependency(
    design: NocDesign, edge: Tuple[Channel, Channel]
) -> List[str]:
    """Names of flows whose route uses ``edge[0]`` immediately before ``edge[1]``."""
    names = []
    for flow_name, route in design.routes.items():
        if _find_edge_occurrence(route, edge) >= 0:
            names.append(flow_name)
    return names


def _duplicate_channel(design: NocDesign, original: Channel, resource_mode: str) -> Channel:
    """Create the duplicate of ``original`` according to the resource mode."""
    if resource_mode == RESOURCE_VIRTUAL:
        return design.topology.add_virtual_channel(original.link)
    new_link = design.topology.add_parallel_link(original.link)
    return Channel(new_link, 0)


def break_cycle(
    design: NocDesign,
    cycle: Sequence[Channel],
    position: int,
    direction: str,
    *,
    iteration: int = 0,
    cost_table=None,
    resource_mode: str = RESOURCE_VIRTUAL,
    context=None,
) -> BreakAction:
    """Break the dependency at ``position`` of ``cycle`` in ``direction``.

    The design is modified in place (topology gains VCs — or parallel
    physical links with ``resource_mode="physical"`` — and affected routes
    are rewritten).  Returns the :class:`~repro.core.report.BreakAction`
    describing what happened.

    ``context`` (a :class:`~repro.perf.design_context.DesignContext` of
    ``design``) is an optional accelerator: the affected flows are then
    read from the indexed per-edge flow sets instead of scanning every
    route, and channel/link duplications are reported back to the context
    so its cached switch graph stays exact.  The produced action is
    identical either way (the indexed flow list equals the scan, in the
    same sorted order).
    """
    if direction not in (FORWARD, BACKWARD):
        raise RemovalError(f"unknown break direction {direction!r}")
    if resource_mode not in _RESOURCE_MODES:
        raise RemovalError(f"unknown resource mode {resource_mode!r}")
    cycle = list(cycle)
    edges = cycle_edges(cycle)
    if position < 0 or position >= len(edges):
        raise RemovalError(
            f"edge position {position} outside cycle of length {len(cycle)}"
        )
    edge = edges[position]
    cycle_set = set(cycle)

    if context is not None:
        affected = context.flows_creating(edge)
    else:
        affected = flows_creating_dependency(design, edge)
    if not affected:
        raise RemovalError(
            f"no flow creates the dependency {edge[0].name} -> {edge[1].name}; "
            "the cycle does not match the current routes"
        )

    duplicates: Dict[Channel, Channel] = {}
    rerouted: List[str] = []
    previous_routes: Dict[str, Route] = {}
    for flow_name in affected:
        route = design.routes.route(flow_name)
        previous_routes[flow_name] = route
        positions = _positions_to_duplicate(route, cycle_set, edge, direction)
        if not positions:
            # Cannot happen for a genuine dependency: the edge's own channel
            # (tail for forward, head for backward) is always in the cycle,
            # so an empty set means the cycle and the routes disagree.
            raise RemovalError(
                f"flow {flow_name!r} creates {edge[0].name} -> {edge[1].name} but no "
                f"channel was selected for duplication ({direction} break)"
            )
        replacement: Dict[int, Channel] = {}
        for p in positions:
            original = route[p]
            if original not in duplicates:
                duplicate = _duplicate_channel(design, original, resource_mode)
                duplicates[original] = duplicate
                if context is not None:
                    if duplicate.link != original.link:
                        context.notify_link_added(duplicate.link)
                    context.notify_channel_added(duplicate)
            replacement[p] = duplicates[original]
        design.routes.set_route(flow_name, route.replace_at_positions(replacement))
        rerouted.append(flow_name)

    if not duplicates:
        raise RemovalError(
            f"breaking {edge[0].name} -> {edge[1].name} in the {direction} direction "
            "required no channel duplication; this indicates an inconsistent cost table"
        )

    return BreakAction(
        iteration=iteration,
        direction=direction,
        cycle=tuple(cycle),
        broken_edge=edge,
        cost=len(duplicates),
        flows_rerouted=tuple(sorted(rerouted)),
        channels_added=duplicates,
        cost_table=cost_table,
        previous_routes=previous_routes,
    )


def break_cycle_forward(
    design: NocDesign,
    cycle: Sequence[Channel],
    position: int,
    *,
    iteration: int = 0,
    cost_table=None,
) -> BreakAction:
    """``BreakCycleForward`` of Algorithm 1."""
    return break_cycle(
        design, cycle, position, FORWARD, iteration=iteration, cost_table=cost_table
    )


def break_cycle_backward(
    design: NocDesign,
    cycle: Sequence[Channel],
    position: int,
    *,
    iteration: int = 0,
    cost_table=None,
) -> BreakAction:
    """``BreakCycleBackward`` of Algorithm 1."""
    return break_cycle(
        design, cycle, position, BACKWARD, iteration=iteration, cost_table=cost_table
    )
