"""Cost tables for choosing which dependency of a cycle to break.

This module implements Algorithm 2 of the paper (``FindDepToBreakForward``)
and its backward counterpart.  For a cycle ``c1 .. cj`` of the CDG the cost
of removing the dependency ``d(cm, cm+1)`` caused by a flow is the number of
cycle channels that have to be duplicated so that re-routing the flow onto
the duplicates actually removes the dependency *without recreating the cycle
through the new vertices* (Figure 7 of the paper shows why duplicating a
single vertex is not always enough):

* **forward** break — duplicate the cycle channels the flow traverses from
  where it enters the cycle up to (and including) ``cm``;
* **backward** break — duplicate the cycle channels the flow traverses from
  ``cm+1`` down to where it exits the cycle.

The per-flow costs are combined with a column-wise maximum (the channels to
duplicate for different flows overlap and can share the newly added VCs) and
the dependency with the smallest combined cost is selected, exactly as in
Table 1 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.cdg import ChannelDependencyGraph
from repro.core.cycles import cycle_edges
from repro.errors import RemovalError
from repro.model.channels import Channel
from repro.model.routes import Route, RouteSet

FORWARD = "forward"
BACKWARD = "backward"
_DIRECTIONS = (FORWARD, BACKWARD)


@dataclass
class CostTable:
    """The cost table of Algorithm 2 (e.g. Table 1 of the paper).

    Attributes
    ----------
    direction:
        ``"forward"`` or ``"backward"``.
    cycle:
        The cycle channels in order.
    edges:
        The dependency edges of the cycle, ``edges[m] == (cycle[m],
        cycle[(m+1) % len(cycle)])``.
    flow_names:
        Rows of the table: flows that create at least one dependency of the
        cycle.
    entries:
        ``entries[flow][m]`` — cost contributed by ``flow`` at edge ``m``;
        ``0`` means the flow does not create that dependency.
    max_costs:
        Column-wise maxima (the combined cost of breaking each edge).
    best_cost / best_position:
        Minimum of ``max_costs`` and the index achieving it (ties broken by
        the smallest index).
    """

    direction: str
    cycle: Tuple[Channel, ...]
    edges: Tuple[Tuple[Channel, Channel], ...]
    flow_names: Tuple[str, ...]
    entries: Dict[str, Tuple[int, ...]] = field(default_factory=dict)
    max_costs: Tuple[int, ...] = ()
    best_cost: int = 0
    best_position: int = 0

    @property
    def edge_labels(self) -> List[str]:
        """Human-readable column labels ``D1 .. Dj`` as in Table 1."""
        return [f"D{m + 1}" for m in range(len(self.edges))]

    def cost_of(self, flow_name: str, position: int) -> int:
        """Cost contributed by one flow at one edge position."""
        return self.entries[flow_name][position]

    def flows_creating(self, position: int) -> List[str]:
        """Flows that create the dependency at ``position`` (non-zero cost)."""
        return [name for name in self.flow_names if self.entries[name][position] > 0]

    def to_text(self) -> str:
        """Render the table the way the paper prints Table 1."""
        labels = self.edge_labels
        width = max([6] + [len(name) for name in self.flow_names])
        header = " " * (width + 1) + " ".join(f"{label:>4}" for label in labels)
        lines = [f"Cost table ({self.direction} direction)", header]
        for name in self.flow_names:
            row = " ".join(f"{value:>4}" for value in self.entries[name])
            lines.append(f"{name:<{width}} {row}")
        max_row = " ".join(f"{value:>4}" for value in self.max_costs)
        lines.append(f"{'MAX':<{width}} {max_row}")
        lines.append(
            f"best: cost {self.best_cost} at {labels[self.best_position]} "
            f"({self.edges[self.best_position][0].name} -> "
            f"{self.edges[self.best_position][1].name})"
        )
        return "\n".join(lines)

    def as_matrix(self) -> List[List[int]]:
        """The per-flow rows as a list of lists (row order = flow_names)."""
        return [list(self.entries[name]) for name in self.flow_names]


def _ordinal_costs(route: Route, cycle_set: set) -> List[int]:
    """For each position in the route, the number of cycle channels seen so
    far (inclusive).  Position ``i`` holds the 'forward ordinal' of
    ``route[i]`` when ``route[i]`` is a cycle channel."""
    ordinals = []
    count = 0
    for channel in route:
        if channel in cycle_set:
            count += 1
        ordinals.append(count)
    return ordinals


def _ordinal_costs_reverse(route: Route, cycle_set: set) -> List[int]:
    """Backward counterpart: number of cycle channels from position ``i`` to
    the end of the route (inclusive)."""
    ordinals = [0] * len(route)
    count = 0
    for i in range(len(route) - 1, -1, -1):
        if route[i] in cycle_set:
            count += 1
        ordinals[i] = count
    return ordinals


def build_cost_table(
    cycle: Sequence[Channel],
    routes: RouteSet,
    direction: str = FORWARD,
) -> CostTable:
    """Build the cost table of Algorithm 2 for one cycle and one direction."""
    if direction not in _DIRECTIONS:
        raise RemovalError(f"unknown break direction {direction!r}")
    cycle = list(cycle)
    if len(cycle) < 2:
        raise RemovalError("a CDG cycle must contain at least two channels")
    edges = cycle_edges(cycle)
    edge_index = {edge: m for m, edge in enumerate(edges)}
    cycle_set = set(cycle)

    entries: Dict[str, List[int]] = {}
    for flow_name, route in routes.items():
        # Flows not touching at least two cycle channels can never create a
        # cycle dependency (Algorithm 2, lines 3-7).
        in_cycle = sum(1 for channel in route if channel in cycle_set)
        if in_cycle < 2:
            continue
        if direction == FORWARD:
            ordinals = _ordinal_costs(route, cycle_set)
        else:
            ordinals = _ordinal_costs_reverse(route, cycle_set)
        row = [0] * len(edges)
        created_any = False
        for i, pair in enumerate(route.dependencies()):
            position = edge_index.get(pair)
            if position is None:
                continue
            created_any = True
            if direction == FORWARD:
                # duplicate from the flow's entry into the cycle up to and
                # including the edge's first channel (route position i)
                value = ordinals[i]
            else:
                # duplicate from the edge's second channel (route position
                # i + 1) down to where the flow exits the cycle
                value = ordinals[i + 1]
            row[position] = max(row[position], value)
        if created_any:
            entries[flow_name] = row

    flow_names = tuple(sorted(entries))
    if not flow_names:
        raise RemovalError(
            "no flow creates any dependency of the cycle; the cycle does not "
            "belong to this route set"
        )
    max_costs = tuple(
        max(entries[name][m] for name in flow_names) for m in range(len(edges))
    )
    best_position = min(range(len(edges)), key=lambda m: (max_costs[m], m))
    best_cost = max_costs[best_position]
    return CostTable(
        direction=direction,
        cycle=tuple(cycle),
        edges=tuple(edges),
        flow_names=flow_names,
        entries={name: tuple(row) for name, row in entries.items()},
        max_costs=max_costs,
        best_cost=best_cost,
        best_position=best_position,
    )


def find_dependency_to_break(
    cycle: Sequence[Channel],
    routes: RouteSet,
    direction: str = FORWARD,
) -> Tuple[int, int, CostTable]:
    """``FindDepToBreakForward`` / ``...Backward`` of Algorithm 1.

    Returns ``(cost, position, table)`` where ``position`` indexes the cycle
    edge to remove.
    """
    table = build_cost_table(cycle, routes, direction)
    return table.best_cost, table.best_position, table


def best_break(
    cycle: Sequence[Channel], routes: RouteSet
) -> Tuple[str, int, int, CostTable]:
    """Evaluate both directions and return the cheaper one.

    Returns ``(direction, cost, position, table)``.  Forward wins ties, as
    in Step 7 of Algorithm 1 (``if f_cost <= b_cost``).
    """
    f_cost, f_pos, f_table = find_dependency_to_break(cycle, routes, FORWARD)
    b_cost, b_pos, b_table = find_dependency_to_break(cycle, routes, BACKWARD)
    if f_cost <= b_cost:
        return FORWARD, f_cost, f_pos, f_table
    return BACKWARD, b_cost, b_pos, b_table
