"""Cycle detection in the channel dependency graph.

The paper (Section 4) runs a breadth-first search from every vertex of the
CDG; whenever the start vertex is reached again a cycle has been found, and
``GetSmallestCycle`` returns the shortest one.  We implement exactly that
(deterministically: vertices and successors are visited in sorted order) and
additionally expose a full cycle enumeration based on Johnson's algorithm
(via :func:`networkx.simple_cycles`) which the analysis and test code use.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.core.cdg import ChannelDependencyGraph
from repro.errors import CycleSearchError
from repro.model.channels import Channel


def has_cycle(cdg: ChannelDependencyGraph) -> bool:
    """True when the CDG contains at least one directed cycle."""
    return not cdg.is_acyclic()


def _shortest_cycle_through(cdg: ChannelDependencyGraph, start: Channel) -> Optional[List[Channel]]:
    """Shortest cycle that passes through ``start`` (BFS), or None.

    The BFS explores successors of ``start``; the first time an edge back to
    ``start`` is seen, the path from ``start`` to that predecessor plus the
    closing edge is a shortest cycle through ``start``.
    """
    parent: Dict[Channel, Optional[Channel]] = {start: None}
    queue = deque([start])
    while queue:
        node = queue.popleft()
        for succ in cdg.successors(node):
            if succ == start:
                # Found the closing edge node -> start; reconstruct.
                cycle = [node]
                current = node
                while parent[current] is not None:
                    current = parent[current]
                    cycle.append(current)
                cycle.reverse()
                return cycle
            if succ not in parent:
                parent[succ] = node
                queue.append(succ)
    return None


def find_smallest_cycle(cdg: ChannelDependencyGraph) -> Optional[List[Channel]]:
    """``GetSmallestCycle`` from Algorithm 1.

    Returns the vertices of the smallest cycle as an ordered list
    ``[c1, ..., cj]`` such that the CDG has edges ``c1->c2``, ...,
    ``c(j-1)->cj`` and the closing edge ``cj->c1``.  Returns ``None`` when
    the CDG is acyclic.  Ties are broken deterministically by the sorted
    order of the starting channel.
    """
    best: Optional[List[Channel]] = None
    for start in cdg.channels:
        cycle = _shortest_cycle_through(cdg, start)
        if cycle is None:
            continue
        if best is None or len(cycle) < len(best):
            best = cycle
            # A CDG dependency always connects two distinct channels (links
            # forbid src == dst, and add_dependency rejects self-loops), so
            # no cycle can be shorter than 2 — stop searching on a 2-cycle.
            if len(best) == 2:
                break
    return best


def find_cycle_through(cdg: ChannelDependencyGraph, channel: Channel) -> Optional[List[Channel]]:
    """Shortest cycle passing through a specific channel, or None."""
    if not cdg.has_channel(channel):
        raise CycleSearchError(f"channel {channel.name} is not a vertex of the CDG")
    return _shortest_cycle_through(cdg, channel)


def find_all_cycles(
    cdg: ChannelDependencyGraph, limit: Optional[int] = None
) -> List[List[Channel]]:
    """Enumerate elementary cycles of the CDG (Johnson's algorithm).

    Parameters
    ----------
    limit:
        Stop after this many cycles; dense CDGs can have exponentially many
        elementary cycles and analyses usually only need a count or a
        sample.
    """
    graph = cdg.to_networkx()
    cycles: List[List[Channel]] = []
    for cycle in nx.simple_cycles(graph):
        cycles.append(list(cycle))
        if limit is not None and len(cycles) >= limit:
            break
    cycles.sort(key=lambda cyc: (len(cyc), [c.name for c in cyc]))
    return cycles


def count_cycles(cdg: ChannelDependencyGraph, limit: Optional[int] = 10000) -> int:
    """Number of elementary cycles (capped at ``limit``).

    The count is independent of enumeration order, so the graph is relabelled
    to dense integers first: Johnson's algorithm then hashes small ints
    instead of nested ``Channel`` dataclasses, which is several times faster
    on the dense CDGs the removal loop counts.
    """
    if limit is not None and limit <= 0:
        return 0
    graph = nx.convert_node_labels_to_integers(cdg.to_networkx())
    count = 0
    for _ in nx.simple_cycles(graph):
        count += 1
        if limit is not None and count >= limit:
            break
    return count


def find_largest_cycle(cdg: ChannelDependencyGraph, limit: Optional[int] = 10000) -> Optional[List[Channel]]:
    """The longest elementary cycle (used by the ablation study).

    Takes the maximum over the raw enumeration instead of sorting all
    cycles first; ties between equally long cycles are still broken by the
    lexicographically smallest channel-name sequence, so the result is the
    same cycle :func:`find_all_cycles` followed by ``max(key=len)`` returned.
    """
    graph = cdg.to_networkx()
    best: Optional[List[Channel]] = None
    best_names: Optional[List[str]] = None
    seen = 0
    for cycle in nx.simple_cycles(graph):
        seen += 1
        if best is None or len(cycle) > len(best):
            best = list(cycle)
            best_names = None
        elif len(cycle) == len(best):
            names = [c.name for c in cycle]
            if best_names is None:
                best_names = [c.name for c in best]
            if names < best_names:
                best = list(cycle)
                best_names = names
        if limit is not None and seen >= limit:
            break
    return best


def cycle_edges(cycle: Sequence[Channel]) -> List[Tuple[Channel, Channel]]:
    """The dependency edges of a cycle, including the closing edge."""
    cycle = list(cycle)
    if not cycle:
        raise CycleSearchError("cannot compute edges of an empty cycle")
    edges = list(zip(cycle, cycle[1:]))
    edges.append((cycle[-1], cycle[0]))
    return edges


def verify_cycle(cdg: ChannelDependencyGraph, cycle: Sequence[Channel]) -> bool:
    """True when every edge of ``cycle`` (including the closing one) is in the CDG."""
    if not cycle:
        return False
    return all(cdg.has_dependency(a, b) for a, b in cycle_edges(cycle))
