"""The paper's contribution: CDG-based minimal-VC deadlock removal.

* :mod:`repro.core.cdg` — the Channel Dependency Graph (Definition 4).
* :mod:`repro.core.cycles` — cycle detection (smallest cycle first, as in
  Step 3/13 of Algorithm 1, plus full enumeration for analysis).
* :mod:`repro.core.cost` — the forward/backward cost tables of Algorithm 2
  (Table 1 of the paper).
* :mod:`repro.core.breaker` — ``BreakCycleForward`` / ``BreakCycleBackward``.
* :mod:`repro.core.removal` — the outer loop (Algorithm 1).
"""

from repro.core.cdg import ChannelDependencyGraph, build_cdg
from repro.core.cost import CostTable, build_cost_table, find_dependency_to_break
from repro.core.cycles import find_all_cycles, find_smallest_cycle, has_cycle
from repro.core.removal import DeadlockRemover, remove_deadlocks
from repro.core.report import BreakAction, RemovalResult

__all__ = [
    "ChannelDependencyGraph",
    "build_cdg",
    "find_smallest_cycle",
    "find_all_cycles",
    "has_cycle",
    "CostTable",
    "build_cost_table",
    "find_dependency_to_break",
    "DeadlockRemover",
    "remove_deadlocks",
    "RemovalResult",
    "BreakAction",
]
