"""Result records produced by the deadlock-removal algorithm."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.cost import CostTable
from repro.model.channels import Channel
from repro.model.design import NocDesign
from repro.model.routes import Route


@dataclass
class BreakAction:
    """One iteration of Algorithm 1: a cycle was broken.

    Attributes
    ----------
    iteration:
        1-based index of the removal iteration.
    direction:
        ``"forward"`` or ``"backward"`` — which break procedure was applied.
    cycle:
        The cycle that was broken (ordered channel list).
    broken_edge:
        The dependency that was removed.
    cost:
        Combined cost from the cost table — equals the number of channels
        that were duplicated.
    flows_rerouted:
        Names of the flows whose routes were moved onto the new channels.
    channels_added:
        Mapping original channel -> newly added channel (same physical link,
        fresh VC index).
    cost_table:
        The full cost table of the chosen direction, for reporting.
    previous_routes:
        The routes of the rerouted flows *before* this break.  Together with
        the flows' current routes this is the exact route delta of the break,
        which the incremental CDG engine (:mod:`repro.perf.cdg_index`)
        applies instead of rebuilding the graph.  Excluded from equality so
        that action sequences compare on what was broken, not on bookkeeping.
    """

    iteration: int
    direction: str
    cycle: Tuple[Channel, ...]
    broken_edge: Tuple[Channel, Channel]
    cost: int
    flows_rerouted: Tuple[str, ...]
    channels_added: Dict[Channel, Channel]
    cost_table: Optional[CostTable] = None
    previous_routes: Optional[Dict[str, Route]] = field(
        default=None, compare=False, repr=False
    )

    @property
    def added_vc_count(self) -> int:
        """Number of virtual channels added by this action."""
        return len(self.channels_added)

    def describe(self) -> str:
        """One-line human-readable description."""
        edge = f"{self.broken_edge[0].name} -> {self.broken_edge[1].name}"
        return (
            f"iteration {self.iteration}: broke {edge} ({self.direction}, "
            f"cost {self.cost}), rerouted {len(self.flows_rerouted)} flow(s), "
            f"added {self.added_vc_count} VC(s)"
        )


@dataclass
class RemovalResult:
    """Outcome of running Algorithm 1 on a design.

    The headline number is :attr:`added_vc_count` — the quantity plotted in
    Figures 8 and 9 of the paper for the "Deadlock removal alg." series.
    """

    design: NocDesign
    actions: List[BreakAction] = field(default_factory=list)
    initially_deadlock_free: bool = False
    initial_cycle_count: int = 0
    iterations: int = 0
    runtime_seconds: float = 0.0

    @property
    def added_vc_count(self) -> int:
        """Total number of VCs added over all break actions."""
        return sum(action.added_vc_count for action in self.actions)

    @property
    def rerouted_flows(self) -> List[str]:
        """All flows whose route changed at least once, sorted."""
        names = set()
        for action in self.actions:
            names.update(action.flows_rerouted)
        return sorted(names)

    @property
    def is_deadlock_free(self) -> bool:
        """True — the algorithm only returns once the CDG is acyclic.

        Kept as an explicit property so that callers reading a serialized
        report do not need to re-run the analysis.
        """
        return True

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"Deadlock removal report for design {self.design.name!r}",
            f"  initial CDG cycles      : {self.initial_cycle_count}"
            + (" (already deadlock free)" if self.initially_deadlock_free else ""),
            f"  iterations              : {self.iterations}",
            f"  virtual channels added  : {self.added_vc_count}",
            f"  flows rerouted          : {len(self.rerouted_flows)}",
            f"  runtime                 : {self.runtime_seconds:.3f} s",
        ]
        for action in self.actions:
            lines.append("  - " + action.describe())
        return "\n".join(lines)
