"""Channel Dependency Graph (CDG) — Definition 4 of the paper.

Vertices are channels ``(physical link, VC)``; there is a directed edge from
channel ``ci`` to channel ``cj`` when at least one route uses ``ci``
immediately followed by ``cj``.  A cycle in this graph is the necessary
condition for a routing deadlock under wormhole flow control with static
routing (Dally & Towles), which is the condition the removal algorithm
eliminates.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

import networkx as nx

from repro.errors import DesignError
from repro.model.channels import Channel
from repro.model.design import NocDesign
from repro.model.routes import RouteSet


class ChannelDependencyGraph:
    """Directed graph over channels with flow-labelled dependency edges.

    Each edge remembers *which flows* create the dependency; the cost model
    (Algorithm 2) and the cycle breaker both need that information.
    """

    def __init__(self):
        # node -> set of successor nodes
        self._succ: Dict[Channel, Set[Channel]] = {}
        self._pred: Dict[Channel, Set[Channel]] = {}
        # (ci, cj) -> set of flow names creating the dependency
        self._edge_flows: Dict[Tuple[Channel, Channel], Set[str]] = {}
        # Sorted views of the vertex/edge sets, rebuilt lazily after mutation
        # so repeated reporting calls stop re-sorting the same data.
        self._channels_cache: Optional[List[Channel]] = None
        self._edges_cache: Optional[List[Tuple[Channel, Channel]]] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_channel(self, channel: Channel) -> None:
        """Add an isolated channel vertex (no-op when already present)."""
        if channel not in self._succ:
            self._succ[channel] = set()
            self._pred[channel] = set()
            self._channels_cache = None

    def add_dependency(self, first: Channel, second: Channel, flow_name: str) -> None:
        """Record that ``flow_name`` uses ``first`` immediately before ``second``."""
        if first == second:
            raise DesignError(
                f"self-loop dependency on channel {first.name}: a channel "
                "cannot depend on itself (its link would need src == dst)"
            )
        self.add_channel(first)
        self.add_channel(second)
        self._succ[first].add(second)
        self._pred[second].add(first)
        self._edge_flows.setdefault((first, second), set()).add(flow_name)
        self._edges_cache = None

    def add_route(self, flow_name: str, channels: Iterable[Channel]) -> None:
        """Add every consecutive channel pair of a route as dependencies."""
        channels = list(channels)
        for channel in channels:
            self.add_channel(channel)
        for first, second in zip(channels, channels[1:]):
            self.add_dependency(first, second, flow_name)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def channels(self) -> List[Channel]:
        """All vertices, sorted."""
        if self._channels_cache is None:
            self._channels_cache = sorted(self._succ)
        return list(self._channels_cache)

    @property
    def channel_count(self) -> int:
        """Number of vertices."""
        return len(self._succ)

    @property
    def edges(self) -> List[Tuple[Channel, Channel]]:
        """All dependency edges, sorted."""
        if self._edges_cache is None:
            self._edges_cache = sorted(self._edge_flows)
        return list(self._edges_cache)

    @property
    def edge_count(self) -> int:
        """Number of dependency edges."""
        return len(self._edge_flows)

    def has_channel(self, channel: Channel) -> bool:
        """True when the channel is a vertex of the CDG."""
        return channel in self._succ

    def has_dependency(self, first: Channel, second: Channel) -> bool:
        """True when the edge ``first -> second`` exists."""
        return (first, second) in self._edge_flows

    def successors(self, channel: Channel) -> List[Channel]:
        """Channels reachable over one dependency edge, sorted."""
        return sorted(self._succ.get(channel, ()))

    def predecessors(self, channel: Channel) -> List[Channel]:
        """Channels with a dependency edge into ``channel``, sorted."""
        return sorted(self._pred.get(channel, ()))

    def flows_on_edge(self, first: Channel, second: Channel) -> FrozenSet[str]:
        """Names of the flows that create the dependency ``first -> second``."""
        return frozenset(self._edge_flows.get((first, second), frozenset()))

    def out_degree(self, channel: Channel) -> int:
        """Number of outgoing dependency edges."""
        return len(self._succ.get(channel, ()))

    def in_degree(self, channel: Channel) -> int:
        """Number of incoming dependency edges."""
        return len(self._pred.get(channel, ()))

    # ------------------------------------------------------------------
    # structure analysis
    # ------------------------------------------------------------------
    def is_acyclic(self) -> bool:
        """True when the CDG contains no directed cycle.

        Uses Kahn's algorithm; acyclicity of the CDG is exactly the
        deadlock-freedom condition the paper targets.
        """
        in_degree = {node: len(preds) for node, preds in self._pred.items()}
        queue = [node for node, degree in in_degree.items() if degree == 0]
        visited = 0
        while queue:
            node = queue.pop()
            visited += 1
            for succ in self._succ[node]:
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    queue.append(succ)
        return visited == len(self._succ)

    def to_networkx(self) -> nx.DiGraph:
        """Export to a :class:`networkx.DiGraph` (edge attribute ``flows``)."""
        graph = nx.DiGraph()
        graph.add_nodes_from(self._succ)
        for (first, second), flows in self._edge_flows.items():
            graph.add_edge(first, second, flows=frozenset(flows))
        return graph

    def subgraph_on(self, channels: Iterable[Channel]) -> "ChannelDependencyGraph":
        """The induced sub-CDG on a set of channels (used in analyses)."""
        keep = set(channels)
        sub = ChannelDependencyGraph()
        for channel in keep:
            if channel in self._succ:
                sub.add_channel(channel)
        for (first, second), flows in self._edge_flows.items():
            if first in keep and second in keep:
                for flow in flows:
                    sub.add_dependency(first, second, flow)
        return sub

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ChannelDependencyGraph(channels={self.channel_count}, edges={self.edge_count})"


def build_cdg(
    design_or_routes,
    *,
    include_unused_channels: bool = False,
) -> ChannelDependencyGraph:
    """Build the CDG from a :class:`~repro.model.design.NocDesign` or a
    :class:`~repro.model.routes.RouteSet` (Step 2 of Algorithm 1).

    Parameters
    ----------
    design_or_routes:
        Either a full design (topology + routes) or a bare route set.
    include_unused_channels:
        When true and a design is given, every topology channel becomes a
        vertex even if no route uses it.  Unused channels can never be part
        of a cycle, so this only matters for reporting.
    """
    if isinstance(design_or_routes, NocDesign):
        routes: RouteSet = design_or_routes.routes
        design: Optional[NocDesign] = design_or_routes
    else:
        routes = design_or_routes
        design = None

    cdg = ChannelDependencyGraph()
    if include_unused_channels and design is not None:
        for channel in design.topology.channels():
            cdg.add_channel(channel)
    for flow_name, route in routes.items():
        cdg.add_route(flow_name, route.channels)
    return cdg
