"""The worked example of the paper (Figures 1-7 and Table 1).

Four switches ``SW1..SW4`` connected in a unidirectional ring by links
``L1..L4`` and four flows:

* ``F1`` with route ``{L1, L2, L3}``
* ``F2`` with route ``{L3, L4}``
* ``F3`` with route ``{L4, L1}``
* ``F4`` with route ``{L1, L2}``

The corresponding CDG (Figure 2) contains the cycle ``L1 -> L2 -> L3 -> L4
-> L1``, so the unmodified design can deadlock.  Table 1 of the paper gives
the forward-direction cost table for that cycle; its MAX row is
``[1, 2, 1, 1]`` and the cheapest break has cost 1.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.model.channels import Channel, Link
from repro.model.design import NocDesign
from repro.model.routes import Route, RouteSet
from repro.model.topology import Topology
from repro.model.traffic import CommunicationGraph

#: The paper's link names mapped onto directed switch pairs.  The ring is
#: SW1 -> SW2 -> SW3 -> SW4 -> SW1 with L1 = SW1->SW2, L2 = SW2->SW3,
#: L3 = SW3->SW4 and L4 = SW4->SW1.
PAPER_LINKS: Dict[str, Tuple[str, str]] = {
    "L1": ("SW1", "SW2"),
    "L2": ("SW2", "SW3"),
    "L3": ("SW3", "SW4"),
    "L4": ("SW4", "SW1"),
}

#: Routes of the four flows, expressed with the paper's link names.
PAPER_ROUTES: Dict[str, List[str]] = {
    "F1": ["L1", "L2", "L3"],
    "F2": ["L3", "L4"],
    "F3": ["L4", "L1"],
    "F4": ["L1", "L2"],
}


def paper_link(name: str) -> Link:
    """The :class:`~repro.model.channels.Link` object for a paper link name."""
    src, dst = PAPER_LINKS[name]
    return Link(src, dst)


def paper_channel(name: str, vc: int = 0) -> Channel:
    """The channel (VC 0 by default) for a paper link name."""
    return Channel(paper_link(name), vc)


def paper_ring_design() -> NocDesign:
    """Build the complete ring design of Figure 1.

    Each flow gets a source core attached to the switch its route starts
    from and a destination core attached to the switch its route ends at, so
    the design passes full validation and can also be fed to the wormhole
    simulator.
    """
    topology = Topology("paper_ring")
    topology.add_switches(["SW1", "SW2", "SW3", "SW4"])
    for name in sorted(PAPER_LINKS):
        src, dst = PAPER_LINKS[name]
        topology.add_link(src, dst)

    traffic = CommunicationGraph("paper_ring_traffic")
    routes = RouteSet()
    core_map: Dict[str, str] = {}
    for flow_name in sorted(PAPER_ROUTES):
        link_names = PAPER_ROUTES[flow_name]
        channels = [paper_channel(n) for n in link_names]
        route = Route(channels)
        src_core = f"core_{flow_name}_src"
        dst_core = f"core_{flow_name}_dst"
        traffic.add_core(src_core)
        traffic.add_core(dst_core)
        traffic.add_flow(flow_name, src_core, dst_core, bandwidth=100.0)
        core_map[src_core] = route.source_switch
        core_map[dst_core] = route.destination_switch
        routes.set_route(flow_name, route)

    return NocDesign(
        name="paper_ring",
        topology=topology,
        traffic=traffic,
        core_map=core_map,
        routes=routes,
    )


def paper_ring_cycle() -> List[Channel]:
    """The CDG cycle of Figure 2, starting at L1 (the paper's ordering)."""
    return [paper_channel(n) for n in ("L1", "L2", "L3", "L4")]


def paper_ring_expected_cost_table() -> Dict[str, List[int]]:
    """Table 1 of the paper: per-flow forward costs at D1..D4 plus MAX row."""
    return {
        "F1": [1, 2, 0, 0],
        "F2": [0, 0, 1, 0],
        "F3": [0, 0, 0, 1],
        "F4": [1, 0, 0, 0],
        "MAX": [1, 2, 1, 1],
    }
