"""Canned designs used by documentation, tests and benchmarks.

The most important one is :func:`repro.examples_data.paper_ring.paper_ring_design`,
the 4-switch ring of Figures 1-4 of the paper, whose cost table is Table 1.
"""

from repro.examples_data.paper_ring import (
    paper_ring_design,
    paper_ring_expected_cost_table,
)

__all__ = ["paper_ring_design", "paper_ring_expected_cost_table"]
