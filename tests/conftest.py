"""Shared fixtures for the test suite.

Expensive objects (synthesized benchmark designs) are module- or
session-scoped; the cheap ones (the paper's ring) are function-scoped so
tests can mutate them freely.
"""

from __future__ import annotations

import pytest

from repro.benchmarks.soc import d26_media, d36_8
from repro.examples_data.paper_ring import paper_ring_design
from repro.model.channels import Channel, Link
from repro.model.design import NocDesign
from repro.model.routes import Route, RouteSet
from repro.model.topology import Topology
from repro.model.traffic import CommunicationGraph
from repro.synthesis.builder import SynthesisConfig, synthesize_design
from repro.synthesis.families import family_design
from repro.synthesis.regular import default_mesh_traffic, default_ring_traffic


def pytest_configure(config):
    # Many historical tests still exercise the deprecated ring_design /
    # mesh_design shims on purpose; keep their warnings out of the summary.
    config.addinivalue_line(
        "filterwarnings",
        "ignore:repro.synthesis.regular:DeprecationWarning",
    )


@pytest.fixture
def ring_design_fixture() -> NocDesign:
    """The paper's 4-switch ring (Figures 1-4), fresh for every test."""
    return paper_ring_design()


@pytest.fixture
def simple_line_design() -> NocDesign:
    """A tiny 3-switch line with two flows — always deadlock free."""
    topology = Topology("line3")
    topology.add_switches(["A", "B", "C"])
    topology.add_bidirectional_link("A", "B")
    topology.add_bidirectional_link("B", "C")

    traffic = CommunicationGraph("line3_traffic")
    traffic.add_cores(["c0", "c1", "c2"])
    traffic.add_flow("f0", "c0", "c2", bandwidth=100.0)
    traffic.add_flow("f1", "c2", "c0", bandwidth=50.0)

    routes = RouteSet()
    ab = Channel(Link("A", "B"))
    bc = Channel(Link("B", "C"))
    cb = Channel(Link("C", "B"))
    ba = Channel(Link("B", "A"))
    routes.set_route("f0", Route([ab, bc]))
    routes.set_route("f1", Route([cb, ba]))

    return NocDesign(
        name="line3",
        topology=topology,
        traffic=traffic,
        core_map={"c0": "A", "c1": "B", "c2": "C"},
        routes=routes,
    )


@pytest.fixture
def small_mesh_design() -> NocDesign:
    """A 3x3 XY-routed mesh (acyclic CDG by construction)."""
    return family_design(
        "mesh",
        default_mesh_traffic(3, 3, name="mesh3x3_traffic"),
        {"rows": 3, "cols": 3, "routing": "xy"},
        name="mesh3x3",
        core_map={f"core_{x}_{y}": f"sw_{x}_{y}" for x in range(3) for y in range(3)},
    )


@pytest.fixture
def small_ring_design() -> NocDesign:
    """A 6-switch unidirectional ring with i -> i+2 flows (cyclic CDG)."""
    return family_design(
        "ring",
        default_ring_traffic(6, name="ring6_traffic"),
        {"n_switches": 6},
        name="ring6",
    )


@pytest.fixture(scope="session")
def d26_traffic() -> CommunicationGraph:
    """The D26_media benchmark traffic (session-scoped, read-only)."""
    return d26_media()


@pytest.fixture(scope="session")
def d36_8_traffic() -> CommunicationGraph:
    """The D36_8 benchmark traffic (session-scoped, read-only)."""
    return d36_8()


@pytest.fixture(scope="session")
def d26_design_14sw(d26_traffic) -> NocDesign:
    """A 14-switch synthesized design for D26_media (session-scoped).

    Tests must not mutate this fixture; they should ``copy()`` it first.
    """
    return synthesize_design(d26_traffic, SynthesisConfig(n_switches=14))


@pytest.fixture(scope="session")
def d36_8_design_14sw(d36_8_traffic) -> NocDesign:
    """A 14-switch synthesized design for D36_8 (session-scoped, cyclic CDG).

    Tests must not mutate this fixture; they should ``copy()`` it first.
    """
    return synthesize_design(d36_8_traffic, SynthesisConfig(n_switches=14))
