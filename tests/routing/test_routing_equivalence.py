"""Equivalence and performance-regression tests for the routing engines.

The indexed engine (`repro.perf.route_engine`) must return *identical*
routes to the legacy path-tuple search on every input — this suite checks
that on random topologies (hypothesis), on synthesized benchmark designs,
through the ``cross_check`` debug flag, and pins down the complexity fix
with a wall-clock bound on the 8x8 mesh that the legacy search needed
seconds of exponential tie expansion for.
"""

from __future__ import annotations

import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.registry import routing_engines
from repro.errors import RouteError
from repro.model.design import NocDesign
from repro.model.topology import Topology
from repro.model.traffic import CommunicationGraph
from repro.routing.shortest_path import (
    ENGINE_INDEXED,
    ENGINE_LEGACY,
    compute_routes,
    shortest_route,
)
from repro.synthesis.builder import SynthesisConfig, synthesize_design
from repro.synthesis.regular import mesh_topology

SWITCHES = [f"S{i}" for i in range(6)]


@st.composite
def random_strongly_connected_topology(draw) -> Topology:
    """A random directed topology containing a Hamiltonian cycle.

    The base cycle keeps every pair reachable so compute_routes never has
    to deal with unreachable flows; random extra links (drawn from all
    ordered pairs) create the equal-cost path diversity that distinguishes
    the tie-breaking behaviour of the two engines.
    """
    n = draw(st.integers(min_value=3, max_value=6))
    switches = SWITCHES[:n]
    topology = Topology("random")
    topology.add_switches(switches)
    for i in range(n):
        topology.add_link(switches[i], switches[(i + 1) % n])
    pairs = [(a, b) for a in switches for b in switches if a != b]
    extras = draw(
        st.lists(st.sampled_from(pairs), unique=True, max_size=len(pairs))
    )
    for a, b in extras:
        if topology.find_link(a, b) is None:
            topology.add_link(a, b)
    return topology


@st.composite
def random_design(draw) -> NocDesign:
    """A routed-traffic design over a random strongly connected topology."""
    topology = draw(random_strongly_connected_topology())
    switches = topology.switches
    traffic = CommunicationGraph("random_traffic")
    n_cores = draw(st.integers(min_value=2, max_value=8))
    core_map = {}
    for i in range(n_cores):
        core = f"c{i}"
        traffic.add_core(core)
        core_map[core] = draw(st.sampled_from(switches))
    n_flows = draw(st.integers(min_value=1, max_value=10))
    endpoints = st.integers(min_value=0, max_value=n_cores - 1)
    for i in range(n_flows):
        src = draw(endpoints)
        dst = draw(endpoints.filter(lambda d, s=src: d != s))
        bandwidth = draw(
            st.floats(min_value=0.1, max_value=500.0, allow_nan=False, allow_infinity=False)
        )
        traffic.add_flow(f"f{i}", f"c{src}", f"c{dst}", bandwidth=bandwidth)
    return NocDesign(
        name="random", topology=topology, traffic=traffic, core_map=core_map
    )


class TestShortestRouteEquivalence:
    @settings(max_examples=150, deadline=None)
    @given(
        topology=random_strongly_connected_topology(),
        pair=st.tuples(st.integers(0, 5), st.integers(0, 5)),
        data=st.data(),
    )
    def test_single_pair_routes_identical(self, topology, pair, data):
        switches = topology.switches
        source = switches[pair[0] % len(switches)]
        target = switches[pair[1] % len(switches)]
        if source == target:
            return
        weights = {}
        for link in topology.links:
            weights[link] = data.draw(
                st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
                label=f"w[{link.name}]",
            )
        legacy = shortest_route(topology, source, target, link_weights=weights, engine=ENGINE_LEGACY)
        indexed = shortest_route(topology, source, target, link_weights=weights, engine=ENGINE_INDEXED)
        assert indexed == legacy

    def test_negative_congestion_factor_stays_equivalent(self, d26_traffic):
        # A negative factor can push link weights to zero or below, outside
        # the indexed engine's soundness argument — the indexed entry must
        # serve such inputs through the reference search.
        base = synthesize_design(d26_traffic, SynthesisConfig(n_switches=8))
        legacy = base.copy()
        indexed = base.copy()
        compute_routes(legacy, congestion_factor=-2.0, engine=ENGINE_LEGACY)
        compute_routes(indexed, congestion_factor=-2.0, engine=ENGINE_INDEXED)
        assert indexed.routes == legacy.routes

    def test_non_positive_weights_fall_back_to_legacy(self):
        # Outside the indexed engine's equivalence argument: the call must
        # still succeed (served by the legacy search) and stay consistent.
        topology = mesh_topology(2, 2)
        link = topology.links[0]
        route = shortest_route(
            topology, "sw_0_0", "sw_1_1", link_weights={link: 0.0}
        )
        legacy = shortest_route(
            topology, "sw_0_0", "sw_1_1", link_weights={link: 0.0}, engine=ENGINE_LEGACY
        )
        assert route == legacy


class TestComputeRoutesEquivalence:
    @settings(max_examples=100, deadline=None)
    @given(design=random_design(), mode=st.sampled_from(["hops", "congestion"]))
    def test_route_sets_identical(self, design, mode):
        legacy = design.copy()
        indexed = design.copy()
        compute_routes(legacy, weight_mode=mode, engine=ENGINE_LEGACY)
        compute_routes(indexed, weight_mode=mode, engine=ENGINE_INDEXED)
        assert indexed.routes == legacy.routes

    @pytest.mark.parametrize("traffic_fixture", ["d26_traffic", "d36_8_traffic"])
    def test_synthesized_benchmarks_identical(self, traffic_fixture, request):
        traffic = request.getfixturevalue(traffic_fixture)
        indexed = synthesize_design(traffic, SynthesisConfig(n_switches=12))
        legacy = synthesize_design(
            traffic, SynthesisConfig(n_switches=12, routing_engine=ENGINE_LEGACY)
        )
        assert indexed.routes == legacy.routes
        assert indexed.topology == legacy.topology

    def test_overwrite_false_preserved_routes_affect_congestion(self, d26_traffic):
        base = synthesize_design(d26_traffic, SynthesisConfig(n_switches=10))
        # Drop half the routes, recompute with overwrite=False on copies.
        for design_engine in (ENGINE_LEGACY, ENGINE_INDEXED):
            partial = base.copy()
            for i, name in enumerate(partial.routes.flow_names):
                if i % 2 == 0:
                    partial.routes.remove_route(name)
            compute_routes(partial, overwrite=False, engine=design_engine)
            if design_engine == ENGINE_LEGACY:
                reference = partial.routes
        assert partial.routes == reference


class TestCrossCheck:
    def test_cross_check_passes_on_benchmark_design(self, d26_traffic):
        design = synthesize_design(d26_traffic, SynthesisConfig(n_switches=8))
        design.routes = type(design.routes)()
        compute_routes(design, cross_check=True)

    def test_cross_check_detects_divergent_engine(self, small_mesh_design):
        def _bogus(design, *, weight_mode, congestion_factor, overwrite):
            # Correct routes, but silently drops one flow — the kind of
            # subtle divergence the cross-check exists to catch.
            routes = routing_engines.get(ENGINE_INDEXED)(
                design,
                weight_mode=weight_mode,
                congestion_factor=congestion_factor,
                overwrite=overwrite,
            )
            routes.remove_route(routes.flow_names[0])
            return routes

        routing_engines.register("bogus", _bogus)
        try:
            design = small_mesh_design
            design.routes = type(design.routes)()
            with pytest.raises(RouteError, match="diverged from the reference"):
                compute_routes(
                    design,
                    weight_mode="congestion",
                    engine="bogus",
                    cross_check=True,
                )
        finally:
            routing_engines.unregister("bogus")

    def test_unknown_engine_rejected(self, small_mesh_design):
        with pytest.raises(RouteError, match="unknown routing engine"):
            compute_routes(small_mesh_design, engine="warp-drive")
        with pytest.raises(RouteError, match="single-pair routing engine"):
            shortest_route(
                small_mesh_design.topology, "sw_0_0", "sw_1_1", engine="warp-drive"
            )

    def test_third_party_engine_rejected_by_single_pair_search(self, small_mesh_design):
        # A registered engine is a *design-level* loop; shortest_route must
        # refuse it rather than silently substituting the indexed search.
        routing_engines.register("thirdparty", lambda design, **kwargs: design.routes)
        try:
            with pytest.raises(RouteError, match="single-pair routing engine"):
                shortest_route(
                    small_mesh_design.topology, "sw_0_0", "sw_1_1", engine="thirdparty"
                )
        finally:
            routing_engines.unregister("thirdparty")

    def test_builtin_engines_registered(self):
        names = routing_engines.names()
        assert ENGINE_INDEXED in names
        assert ENGINE_LEGACY in names


class TestMeshTimingRegression:
    def test_8x8_mesh_routing_completes_in_bounded_time(self):
        """The legacy search took ~1 s of exponential tie expansion here;
        the indexed engine must stay orders of magnitude under a bound
        loose enough for noisy CI machines."""
        n = 8
        topology = mesh_topology(n, n)
        traffic = CommunicationGraph("complement")
        for x in range(n):
            for y in range(n):
                traffic.add_core(f"core_{x}_{y}")
        flow_id = 0
        for x in range(n):
            for y in range(n):
                tx, ty = n - 1 - x, n - 1 - y
                if (x, y) == (tx, ty):
                    continue
                traffic.add_flow(
                    f"f{flow_id}", f"core_{x}_{y}", f"core_{tx}_{ty}", bandwidth=50.0
                )
                flow_id += 1
        core_map = {
            f"core_{x}_{y}": f"sw_{x}_{y}" for x in range(n) for y in range(n)
        }
        design = NocDesign(
            name="mesh8", topology=topology, traffic=traffic, core_map=core_map
        )
        start = time.perf_counter()
        compute_routes(design, engine=ENGINE_INDEXED)
        elapsed = time.perf_counter() - start
        assert elapsed < 5.0, f"indexed mesh routing took {elapsed:.2f}s"
        assert len(design.routes) == flow_id
