"""Tests for per-switch routing tables (repro.routing.tables)."""

import pytest

from repro.errors import RouteError
from repro.model.channels import Channel, Link
from repro.routing.tables import RoutingTable, build_routing_tables, table_sizes


class TestRoutingTable:
    def test_add_and_lookup(self):
        table = RoutingTable("A")
        out = Channel(Link("A", "B"))
        table.add_entry("f0", None, out)
        assert table.lookup("f0", None) == out
        assert table.entry_count == 1

    def test_conflicting_entry_rejected(self):
        table = RoutingTable("A")
        table.add_entry("f0", None, Channel(Link("A", "B")))
        with pytest.raises(RouteError):
            table.add_entry("f0", None, Channel(Link("A", "C")))

    def test_duplicate_identical_entry_allowed(self):
        table = RoutingTable("A")
        out = Channel(Link("A", "B"))
        table.add_entry("f0", None, out)
        table.add_entry("f0", None, out)
        assert table.entry_count == 1

    def test_missing_entry_raises(self):
        with pytest.raises(RouteError):
            RoutingTable("A").lookup("f0", None)

    def test_output_channels_sorted_unique(self):
        table = RoutingTable("A")
        out = Channel(Link("A", "B"))
        table.add_entry("f0", None, out)
        table.add_entry("f1", None, out)
        assert table.output_channels() == [out]


class TestBuildTables:
    def test_every_switch_gets_a_table(self, ring_design_fixture):
        tables = build_routing_tables(ring_design_fixture)
        assert set(tables) == set(ring_design_fixture.topology.switches)

    def test_injection_entries_use_none_incoming(self, ring_design_fixture):
        tables = build_routing_tables(ring_design_fixture)
        # F1 starts at SW1, so SW1 has an entry with no incoming channel.
        entries = tables["SW1"].entries
        assert ("F1", None) in entries

    def test_transit_entries_record_incoming_channel(self, ring_design_fixture):
        tables = build_routing_tables(ring_design_fixture)
        l1 = Channel(Link("SW1", "SW2"))
        l2 = Channel(Link("SW2", "SW3"))
        assert tables["SW2"].lookup("F1", l1) == l2

    def test_lookup_follows_full_route(self, ring_design_fixture):
        tables = build_routing_tables(ring_design_fixture)
        route = ring_design_fixture.routes.route("F1")
        incoming = None
        for channel in route:
            found = tables[channel.src].lookup("F1", incoming)
            assert found == channel
            incoming = channel

    def test_table_sizes(self, ring_design_fixture):
        sizes = table_sizes(ring_design_fixture)
        assert sum(sizes.values()) == ring_design_fixture.routes.total_hop_count()

    def test_tables_for_synthesized_design(self, d26_design_14sw):
        tables = build_routing_tables(d26_design_14sw)
        assert sum(t.entry_count for t in tables.values()) == (
            d26_design_14sw.routes.total_hop_count()
        )
