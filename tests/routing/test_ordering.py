"""Tests for the resource-ordering baseline (repro.routing.ordering)."""

import pytest

from repro.core.cdg import build_cdg
from repro.errors import OrderingError
from repro.model.validation import validate_design
from repro.routing.ordering import (
    STRATEGY_HOP_INDEX,
    STRATEGY_LAYERED,
    apply_resource_ordering,
    ordering_is_deadlock_free,
)


class TestHopIndexStrategy:
    def test_ring_needs_extra_vcs(self, ring_design_fixture):
        result = apply_resource_ordering(ring_design_fixture)
        # Longest route has 3 hops, so some link must host classes 0,1,2.
        assert result.extra_vcs == 3
        assert result.max_class == 2

    def test_resulting_cdg_is_acyclic(self, ring_design_fixture):
        result = apply_resource_ordering(ring_design_fixture)
        assert build_cdg(result.design).is_acyclic()
        assert ordering_is_deadlock_free(result)

    def test_classes_strictly_increase_along_routes(self, ring_design_fixture):
        result = apply_resource_ordering(ring_design_fixture)
        for _name, route in result.design.routes.items():
            classes = [result.classes[c] for c in route]
            assert classes == sorted(classes)
            assert len(set(classes)) == len(classes)

    def test_original_design_untouched(self, ring_design_fixture):
        apply_resource_ordering(ring_design_fixture)
        assert ring_design_fixture.extra_vc_count == 0

    def test_physical_paths_preserved(self, ring_design_fixture):
        result = apply_resource_ordering(ring_design_fixture)
        for name, route in ring_design_fixture.routes.items():
            assert result.design.routes.route(name).links == route.links

    def test_modified_design_is_valid(self, ring_design_fixture):
        validate_design(apply_resource_ordering(ring_design_fixture).design)

    def test_acyclic_design_may_still_pay_overhead(self, d26_design_14sw):
        """The paper's key observation (Figure 8): even when the input design
        is already deadlock free, resource ordering adds VCs because class
        numbers must increase along every route."""
        design = d26_design_14sw.copy()
        assert build_cdg(design).is_acyclic()
        result = apply_resource_ordering(design)
        assert result.extra_vcs > 0

    def test_extra_vcs_counted_on_topology(self, ring_design_fixture):
        result = apply_resource_ordering(ring_design_fixture)
        assert result.design.extra_vc_count == result.extra_vcs

    def test_mesh_design_ordering(self, small_mesh_design):
        result = apply_resource_ordering(small_mesh_design)
        assert build_cdg(result.design).is_acyclic()
        assert result.extra_vcs >= 0
        validate_design(result.design)


class TestLayeredStrategy:
    def test_layered_is_deadlock_free(self, ring_design_fixture):
        result = apply_resource_ordering(ring_design_fixture, strategy=STRATEGY_LAYERED)
        assert build_cdg(result.design).is_acyclic()

    def test_layered_never_worse_than_hop_index_on_tree(self, d26_design_14sw):
        design = d26_design_14sw.copy()
        hop = apply_resource_ordering(design, strategy=STRATEGY_HOP_INDEX)
        layered = apply_resource_ordering(design, strategy=STRATEGY_LAYERED)
        assert layered.extra_vcs <= hop.extra_vcs

    def test_layered_classes_strictly_increase(self, small_ring_design):
        result = apply_resource_ordering(small_ring_design, strategy=STRATEGY_LAYERED)
        for _name, route in result.design.routes.items():
            classes = [result.classes[c] for c in route]
            assert classes == sorted(classes)
            assert len(set(classes)) == len(classes)

    def test_layered_valid_design(self, small_ring_design):
        validate_design(
            apply_resource_ordering(small_ring_design, strategy=STRATEGY_LAYERED).design
        )


class TestErrorsAndSummary:
    def test_unknown_strategy_rejected(self, ring_design_fixture):
        with pytest.raises(OrderingError):
            apply_resource_ordering(ring_design_fixture, strategy="magic")

    def test_summary_mentions_extra_vcs(self, ring_design_fixture):
        summary = apply_resource_ordering(ring_design_fixture).summary()
        assert "extra VC" in summary

    def test_classes_per_link_counts(self, ring_design_fixture):
        result = apply_resource_ordering(ring_design_fixture)
        assert sum(count - 1 for count in result.classes_per_link.values()) == (
            result.extra_vcs
        )
