"""Tests for shortest-path route computation (repro.routing.shortest_path)."""

import pytest

from repro.errors import RouteError
from repro.model.channels import Link
from repro.model.topology import Topology
from repro.model.validation import validate_design
from repro.routing.shortest_path import (
    average_hop_count,
    compute_routes,
    shortest_route,
)
from repro.synthesis.regular import mesh_design, ring_topology


@pytest.fixture
def square() -> Topology:
    """A bidirectional square A-B-C-D-A."""
    topo = Topology("square")
    topo.add_switches(["A", "B", "C", "D"])
    topo.add_bidirectional_link("A", "B")
    topo.add_bidirectional_link("B", "C")
    topo.add_bidirectional_link("C", "D")
    topo.add_bidirectional_link("D", "A")
    return topo


class TestShortestRoute:
    def test_direct_neighbour(self, square):
        route = shortest_route(square, "A", "B")
        assert route.hop_count == 1
        assert route.links == (Link("A", "B"),)

    def test_two_hop_path(self, square):
        route = shortest_route(square, "A", "C")
        assert route.hop_count == 2
        assert route.source_switch == "A"
        assert route.destination_switch == "C"

    def test_deterministic_tie_break(self, square):
        # A->C has two 2-hop paths (via B or via D); the lexicographically
        # smaller switch sequence must win every time.
        first = shortest_route(square, "A", "C")
        second = shortest_route(square, "A", "C")
        assert first == second
        assert first.switches[1] == "B"

    def test_weights_can_reroute(self, square):
        weights = {Link("A", "B"): 10.0, Link("B", "C"): 10.0}
        route = shortest_route(square, "A", "C", link_weights=weights)
        assert route.switches[1] == "D"

    def test_same_switch_rejected(self, square):
        with pytest.raises(RouteError):
            shortest_route(square, "A", "A")

    def test_unreachable_destination_rejected(self):
        topo = ring_topology(4)  # unidirectional sw0->sw1->sw2->sw3->sw0
        topo.add_switch("island")
        with pytest.raises(RouteError):
            shortest_route(topo, "sw0", "island")

    def test_unidirectional_ring_goes_the_long_way(self):
        topo = ring_topology(5)
        route = shortest_route(topo, "sw3", "sw1")
        assert route.hop_count == 3
        assert route.switches == ["sw3", "sw4", "sw0", "sw1"]


class TestComputeRoutes:
    def test_all_flows_get_routes(self, d26_design_14sw):
        design = d26_design_14sw
        for flow in design.traffic.flows:
            src, dst = design.flow_endpoints_switches(flow)
            if src != dst:
                assert design.routes.has_route(flow.name)

    def test_local_flows_get_no_route(self, small_mesh_design):
        design = small_mesh_design.copy()
        # Move a destination core onto the same switch as its source.
        flow = design.traffic.flows[0]
        design.core_map[flow.dst] = design.core_map[flow.src]
        compute_routes(design)
        assert not design.routes.has_route(flow.name)

    def test_hops_mode_gives_minimum_hop_routes(self, small_mesh_design):
        design = small_mesh_design.copy()
        compute_routes(design, weight_mode="hops")
        validate_design(design)
        for flow in design.traffic.flows:
            src, dst = design.flow_endpoints_switches(flow)
            if src == dst:
                continue
            sx, sy = (int(p) for p in src.split("_")[1:])
            dx, dy = (int(p) for p in dst.split("_")[1:])
            manhattan = abs(sx - dx) + abs(sy - dy)
            assert design.routes.route(flow.name).hop_count == manhattan

    def test_unknown_weight_mode_rejected(self, small_mesh_design):
        with pytest.raises(RouteError):
            compute_routes(small_mesh_design.copy(), weight_mode="banana")

    def test_overwrite_false_keeps_existing_routes(self, small_mesh_design):
        design = small_mesh_design.copy()
        existing = {name: design.routes.route(name) for name in design.routes}
        compute_routes(design, weight_mode="hops", overwrite=False)
        for name, route in existing.items():
            assert design.routes.route(name) == route

    def test_congestion_mode_is_deterministic(self, d26_traffic):
        from repro.synthesis.builder import SynthesisConfig, synthesize_design

        first = synthesize_design(d26_traffic, SynthesisConfig(n_switches=8))
        second = synthesize_design(d26_traffic, SynthesisConfig(n_switches=8))
        assert first.routes == second.routes


class TestAverageHopCount:
    def test_zero_for_empty_routes(self, simple_line_design):
        design = simple_line_design.copy()
        design.routes.remove_route("f0")
        design.routes.remove_route("f1")
        assert average_hop_count(design) == 0.0

    def test_weighted_average(self, simple_line_design):
        # f0 (bw 100) and f1 (bw 50) both have 2 hops -> average 2.
        assert average_hop_count(simple_line_design) == pytest.approx(2.0)

    def test_mesh_average_positive(self, small_mesh_design):
        assert average_hop_count(small_mesh_design) > 0
