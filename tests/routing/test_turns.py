"""Tests for turn-prohibition routing (repro.routing.turns)."""

import pytest

from repro.core.cdg import build_cdg
from repro.errors import RouteError
from repro.model.validation import validate_design
from repro.routing.turns import (
    bfs_levels,
    compute_updown_routes,
    compute_xy_routes,
    mesh_coordinates,
    updown_orientation,
    updown_route,
    xy_route,
)
from repro.synthesis.regular import mesh_design, mesh_topology


class TestBfsLevels:
    def test_levels_from_root(self, small_mesh_design):
        levels = bfs_levels(small_mesh_design.topology, "sw_0_0")
        assert levels["sw_0_0"] == 0
        assert levels["sw_1_0"] == 1
        assert levels["sw_2_2"] == 4

    def test_unknown_root_rejected(self, small_mesh_design):
        with pytest.raises(RouteError):
            bfs_levels(small_mesh_design.topology, "nope")


class TestUpDown:
    def test_orientation_covers_all_links(self, small_mesh_design):
        orientation = updown_orientation(small_mesh_design.topology)
        assert set(orientation) == set(small_mesh_design.topology.links)
        assert set(orientation.values()) <= {"up", "down"}

    def test_opposite_links_have_opposite_orientation(self, small_mesh_design):
        orientation = updown_orientation(small_mesh_design.topology)
        for link, direction in orientation.items():
            assert orientation[link.reversed()] != direction

    def test_updown_routes_are_acyclic(self, d26_traffic):
        """up*/down* is a deadlock-avoidance routing: its CDG never has cycles."""
        from repro.synthesis.builder import SynthesisConfig, synthesize_design

        design = synthesize_design(
            d26_traffic, SynthesisConfig(n_switches=10, routing="updown")
        )
        assert build_cdg(design).is_acyclic()
        validate_design(design)

    def test_updown_route_endpoints(self, small_mesh_design):
        route = updown_route(small_mesh_design.topology, "sw_0_0", "sw_2_2")
        assert route.source_switch == "sw_0_0"
        assert route.destination_switch == "sw_2_2"

    def test_updown_same_switch_rejected(self, small_mesh_design):
        with pytest.raises(RouteError):
            updown_route(small_mesh_design.topology, "sw_0_0", "sw_0_0")

    def test_updown_unknown_destination_is_route_error(self, small_mesh_design):
        # An unreachable (here: nonexistent) destination is a routing
        # failure, not a topology error — the seed BFS simply exhausted.
        with pytest.raises(RouteError, match="no up\\*/down\\* route"):
            updown_route(small_mesh_design.topology, "sw_0_0", "sw_9_9")

    def test_compute_updown_routes_on_mesh(self, small_mesh_design):
        design = small_mesh_design.copy()
        compute_updown_routes(design)
        validate_design(design)
        assert build_cdg(design).is_acyclic()


class TestXY:
    def test_mesh_coordinates_parse(self):
        assert mesh_coordinates("sw_2_1") == (2, 1)

    def test_bad_switch_name_rejected(self):
        with pytest.raises(RouteError):
            mesh_coordinates("router7")

    def test_xy_route_goes_x_first(self, small_mesh_design):
        route = xy_route(small_mesh_design.topology, "sw_0_0", "sw_2_1")
        assert route.switches == ["sw_0_0", "sw_1_0", "sw_2_0", "sw_2_1"]

    def test_xy_route_same_switch_rejected(self, small_mesh_design):
        with pytest.raises(RouteError):
            xy_route(small_mesh_design.topology, "sw_0_0", "sw_0_0")

    def test_xy_routes_always_acyclic(self):
        design = mesh_design(4, 4)
        assert build_cdg(design).is_acyclic()

    def test_xy_missing_link_detected(self, small_mesh_design):
        topo = small_mesh_design.topology.copy()
        topo.remove_link(topo.find_link("sw_0_0", "sw_1_0"))
        with pytest.raises(RouteError):
            xy_route(topo, "sw_0_0", "sw_2_0")

    def test_compute_xy_routes_skips_local_flows(self, small_mesh_design):
        design = small_mesh_design.copy()
        flow = design.traffic.flows[0]
        design.core_map[flow.dst] = design.core_map[flow.src]
        compute_xy_routes(design)
        assert not design.routes.has_route(flow.name)
