"""Tests for the exception hierarchy (repro.errors)."""

import pytest

from repro import errors


class TestHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception) and obj is not errors.ReproError:
                if obj.__module__ == "repro.errors":
                    assert issubclass(obj, errors.ReproError), name

    def test_design_errors_grouped(self):
        assert issubclass(errors.TopologyError, errors.DesignError)
        assert issubclass(errors.TrafficError, errors.DesignError)
        assert issubclass(errors.RouteError, errors.DesignError)
        assert issubclass(errors.ValidationError, errors.DesignError)

    def test_convergence_is_a_removal_error(self):
        assert issubclass(errors.ConvergenceError, errors.RemovalError)

    def test_deadlock_detected_is_a_simulation_error(self):
        assert issubclass(errors.DeadlockDetected, errors.SimulationError)


class TestPayloads:
    def test_validation_error_keeps_problems(self):
        exc = errors.ValidationError(["a", "b", "c"])
        assert exc.problems == ["a", "b", "c"]
        assert "a" in str(exc)

    def test_validation_error_truncates_long_lists(self):
        exc = errors.ValidationError([f"problem {i}" for i in range(10)])
        assert "+5 more" in str(exc)

    def test_convergence_error_payload(self):
        exc = errors.ConvergenceError(12, 3)
        assert exc.iterations == 12
        assert exc.remaining_cycles == 3
        assert "12" in str(exc)

    def test_deadlock_detected_payload(self):
        exc = errors.DeadlockDetected(500, ["c1", "c2"])
        assert exc.cycle == 500
        assert len(exc.blocked_channels) == 2
        assert "500" in str(exc)
