"""Tests for the latency-vs-load performance evaluation (repro.analysis.performance)."""

import pytest

from repro.analysis.performance import (
    LoadPoint,
    compare_performance,
    load_latency_sweep,
)
from repro.core.removal import remove_deadlocks


class TestLoadPoint:
    def test_saturation_flag(self):
        fine = LoadPoint(1.0, 1.0, 0.95, 50.0, 80, 100, False)
        saturated = LoadPoint(2.0, 1.0, 0.5, 400.0, 900, 100, False)
        assert not fine.saturated
        assert saturated.saturated

    def test_zero_offer_never_saturated(self):
        idle = LoadPoint(0.0, 0.0, 0.0, 0.0, 0, 0, False)
        assert not idle.saturated


class TestSweep:
    def test_latency_grows_with_load(self, simple_line_design):
        sweep = load_latency_sweep(
            simple_line_design,
            injection_scales=(0.5, 4.0),
            max_cycles=1500,
        )
        assert len(sweep.points) == 2
        low, high = sweep.points
        assert high.packets_delivered > low.packets_delivered
        assert high.average_latency >= low.average_latency
        assert not low.deadlocked and not high.deadlocked

    def test_offered_load_scales_linearly(self, simple_line_design):
        sweep = load_latency_sweep(
            simple_line_design, injection_scales=(0.5, 1.0), max_cycles=200
        )
        assert sweep.points[1].offered_flits_per_cycle == pytest.approx(
            2 * sweep.points[0].offered_flits_per_cycle
        )

    def test_unprotected_ring_deadlocks_in_sweep(self, ring_design_fixture):
        sweep = load_latency_sweep(
            ring_design_fixture,
            injection_scales=(6.0,),
            max_cycles=4000,
            buffer_depth=2,
            seed=1,
        )
        assert sweep.points[0].deadlocked
        assert sweep.saturation_scale == 6.0

    def test_protected_ring_survives_same_sweep(self, ring_design_fixture):
        fixed = remove_deadlocks(ring_design_fixture).design
        sweep = load_latency_sweep(
            fixed, injection_scales=(6.0,), max_cycles=4000, buffer_depth=2, seed=1
        )
        assert not sweep.points[0].deadlocked

    def test_as_rows_shape(self, simple_line_design):
        sweep = load_latency_sweep(
            simple_line_design, injection_scales=(1.0,), max_cycles=300
        )
        rows = sweep.as_rows()
        assert len(rows) == 1
        assert len(rows[0]) == 5

    def test_saturation_scale_none_when_healthy(self, simple_line_design):
        sweep = load_latency_sweep(
            simple_line_design, injection_scales=(0.25, 0.5), max_cycles=500
        )
        assert sweep.saturation_scale is None


class TestCompare:
    def test_compare_performance_runs_all_designs(self, ring_design_fixture):
        fixed = remove_deadlocks(ring_design_fixture).design
        results = compare_performance(
            {"unprotected": ring_design_fixture, "removal": fixed},
            injection_scales=(0.5,),
            max_cycles=500,
        )
        assert set(results) == {"unprotected", "removal"}
        assert all(len(sweep.points) == 1 for sweep in results.values())
