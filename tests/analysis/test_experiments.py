"""Tests for the three-way comparison driver (repro.analysis.experiments).

These tests assert the *shape* of the paper's results on a small
configuration: deadlock removal adds far fewer VCs than resource ordering,
which shows up as area and power savings, while staying close to the
unprotected design.
"""

import pytest

from repro.analysis.experiments import compare_methods, sweep_switch_counts
from repro.core.cdg import build_cdg


@pytest.fixture(scope="module")
def d36_8_comparison():
    """One comparison point reused by several tests (module-scoped)."""
    return compare_methods("D36_8", 14)


class TestCompareMethods:
    def test_both_methods_yield_deadlock_free_designs(self, d36_8_comparison):
        assert build_cdg(d36_8_comparison.removal.design).is_acyclic()
        assert build_cdg(d36_8_comparison.ordering.design).is_acyclic()

    def test_removal_uses_fewer_vcs_than_ordering(self, d36_8_comparison):
        assert d36_8_comparison.removal_extra_vcs < d36_8_comparison.ordering_extra_vcs

    def test_vc_reduction_is_large(self, d36_8_comparison):
        assert d36_8_comparison.vc_reduction_percent > 50.0

    def test_power_and_area_savings_positive(self, d36_8_comparison):
        assert d36_8_comparison.power_saving_percent > 0
        assert d36_8_comparison.area_saving_percent > 0

    def test_overhead_vs_unprotected_is_small(self, d36_8_comparison):
        assert d36_8_comparison.removal_power_overhead_percent < 10.0
        assert d36_8_comparison.removal_area_overhead_percent < 10.0

    def test_normalised_ordering_power_above_one(self, d36_8_comparison):
        assert d36_8_comparison.normalised_ordering_power > 1.0

    def test_as_row_contains_headline_fields(self, d36_8_comparison):
        row = d36_8_comparison.as_row()
        assert row["benchmark"] == "D36_8"
        assert row["switch_count"] == 14
        assert row["removal_extra_vcs"] == d36_8_comparison.removal_extra_vcs
        assert "power_saving_percent" in row
        assert "removal_runtime_s" in row

    def test_accepts_traffic_object(self, d26_traffic):
        comparison = compare_methods(d26_traffic, 8)
        assert comparison.benchmark == "D26_media"
        assert comparison.switch_count == 8

    def test_synthesis_overrides_forwarded(self):
        sparse = compare_methods("D36_8", 10, synthesis_overrides={"extra_link_fraction": 0.0})
        assert sparse.removal_extra_vcs == 0


class TestSweep:
    def test_sweep_produces_one_row_per_count(self, d26_traffic):
        rows = sweep_switch_counts(d26_traffic, [5, 8])
        assert [row.switch_count for row in rows] == [5, 8]

    def test_d26_media_removal_is_mostly_free(self, d26_traffic):
        """Figure 8's message: application-specific topologies for D26_media
        are (almost always) deadlock free, so removal costs ~nothing while
        ordering pays per-hop classes."""
        rows = sweep_switch_counts(d26_traffic, [8, 14, 20])
        assert sum(row.removal_extra_vcs for row in rows) <= 2
        assert all(
            row.ordering_extra_vcs >= row.removal_extra_vcs for row in rows
        )
        assert any(row.ordering_extra_vcs > 5 for row in rows)
