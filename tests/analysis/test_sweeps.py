"""Tests for the figure-level sweeps (repro.analysis.sweeps).

The full-size sweeps run in the benchmark harness; here they are exercised
on reduced grids to keep the unit-test suite fast while still checking the
shape of every figure.
"""

import pytest

from repro.analysis.sweeps import (
    FIGURE10_BENCHMARKS,
    FIGURE8_SWITCH_COUNTS,
    FIGURE9_SWITCH_COUNTS,
    area_savings_table,
    figure10_power_series,
    figure8_series,
    figure9_series,
    overhead_vs_unprotected,
    runtime_scaling,
)


class TestDefaults:
    def test_figure8_grid_spans_paper_range(self):
        assert min(FIGURE8_SWITCH_COUNTS) == 5
        assert max(FIGURE8_SWITCH_COUNTS) == 25

    def test_figure9_grid_spans_paper_range(self):
        assert min(FIGURE9_SWITCH_COUNTS) == 10
        assert max(FIGURE9_SWITCH_COUNTS) == 35

    def test_figure10_lists_all_six_benchmarks(self):
        assert len(FIGURE10_BENCHMARKS) == 6


class TestFigure8:
    def test_reduced_figure8_shape(self):
        data = figure8_series(switch_counts=[8, 14])
        assert data["benchmark"] == "D26_media"
        assert len(data["resource_ordering_vcs"]) == 2
        for ordering, removal in zip(
            data["resource_ordering_vcs"], data["deadlock_removal_vcs"]
        ):
            assert removal <= ordering


class TestFigure9:
    def test_reduced_figure9_shape(self):
        data = figure9_series(switch_counts=[14, 22])
        assert data["benchmark"] == "D36_8"
        for ordering, removal in zip(
            data["resource_ordering_vcs"], data["deadlock_removal_vcs"]
        ):
            assert removal < ordering
        # Ordering overhead grows with the switch count (longer routes).
        assert data["resource_ordering_vcs"][1] > data["resource_ordering_vcs"][0]


class TestFigure10:
    def test_reduced_figure10_shape(self):
        data = figure10_power_series(benchmarks=["D26_media", "D36_8"], switch_count=10)
        assert data["deadlock_removal_normalised_power"] == [1.0, 1.0]
        assert all(v >= 1.0 for v in data["resource_ordering_normalised_power"])
        assert data["average_power_saving_percent"] >= 0


class TestClaims:
    def test_area_savings_table_reduced(self):
        data = area_savings_table(benchmarks=["D36_8"], switch_count=14)
        assert data["ordering_extra_vcs"][0] > data["removal_extra_vcs"][0]
        assert data["average_vc_reduction_percent"] > 50
        assert data["average_area_saving_percent"] > 0

    def test_overhead_vs_unprotected_reduced(self):
        data = overhead_vs_unprotected(benchmarks=["D36_8"], switch_count=14)
        assert data["average_power_overhead_percent"] < 10
        assert data["average_area_overhead_percent"] < 10

    def test_runtime_scaling_reduced(self):
        data = runtime_scaling(benchmarks=["D26_media"], switch_count=10)
        assert data["removal_seconds"][0] < 60
        assert data["total_removal_seconds"] < 60
