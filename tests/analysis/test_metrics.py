"""Tests for metric helpers (repro.analysis.metrics)."""

import pytest

from repro.analysis.metrics import (
    arithmetic_mean,
    format_table,
    geometric_mean,
    normalise,
    percent_change,
    percent_reduction,
)


class TestPercentages:
    def test_percent_change_increase(self):
        assert percent_change(100, 150) == pytest.approx(50.0)

    def test_percent_change_decrease(self):
        assert percent_change(100, 80) == pytest.approx(-20.0)

    def test_percent_change_zero_reference(self):
        assert percent_change(0, 0) == 0.0
        assert percent_change(0, 5) == 100.0

    def test_percent_reduction(self):
        assert percent_reduction(100, 12) == pytest.approx(88.0)

    def test_percent_reduction_zero_reference(self):
        assert percent_reduction(0, 5) == 0.0

    def test_full_reduction(self):
        assert percent_reduction(40, 0) == pytest.approx(100.0)


class TestMeans:
    def test_geometric_mean(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)

    def test_geometric_mean_ignores_nonpositive(self):
        assert geometric_mean([0, 4, 4]) == pytest.approx(4.0)

    def test_geometric_mean_empty(self):
        assert geometric_mean([]) == 0.0

    def test_arithmetic_mean(self):
        assert arithmetic_mean([1, 2, 3]) == pytest.approx(2.0)
        assert arithmetic_mean([]) == 0.0


class TestNormalise:
    def test_normalise_to_reference(self):
        values = {"removal": 10.0, "ordering": 12.0}
        normalised = normalise(values, "removal")
        assert normalised["removal"] == pytest.approx(1.0)
        assert normalised["ordering"] == pytest.approx(1.2)

    def test_normalise_zero_reference(self):
        assert normalise({"a": 0.0, "b": 5.0}, "a") == {"a": 0.0, "b": 0.0}


class TestFormatTable:
    def test_headers_and_rows_rendered(self):
        text = format_table(["name", "value"], [["x", 1.234], ["long_name", 22]])
        lines = text.splitlines()
        assert "name" in lines[0]
        assert "1.23" in text
        assert "long_name" in text

    def test_column_alignment(self):
        text = format_table(["a", "b"], [["xx", 1]])
        header, separator, row = text.splitlines()
        assert len(header) == len(separator)
