"""Tests for the DOT / report exporters (repro.export)."""

import pytest

from repro.core.cdg import build_cdg
from repro.core.cycles import find_smallest_cycle
from repro.core.removal import remove_deadlocks
from repro.export import cdg_to_dot, design_report, topology_to_dot


class TestTopologyDot:
    def test_contains_all_switches_and_links(self, ring_design_fixture):
        dot = topology_to_dot(ring_design_fixture)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        for switch in ring_design_fixture.topology.switches:
            assert f'"{switch}"' in dot
        assert dot.count("->") >= ring_design_fixture.topology.link_count

    def test_cores_shown_for_designs(self, ring_design_fixture):
        dot = topology_to_dot(ring_design_fixture)
        assert '"core_F1_src"' in dot

    def test_cores_hidden_on_request(self, ring_design_fixture):
        dot = topology_to_dot(ring_design_fixture, show_cores=False)
        assert "core_F1_src" not in dot

    def test_accepts_bare_topology(self, ring_design_fixture):
        dot = topology_to_dot(ring_design_fixture.topology)
        assert "core_F1_src" not in dot
        assert '"SW1"' in dot

    def test_extra_vcs_highlighted(self, ring_design_fixture):
        result = remove_deadlocks(ring_design_fixture)
        dot = topology_to_dot(result.design)
        assert "crimson" in dot
        assert "2 VCs" in dot

    def test_parallel_links_dashed(self, ring_design_fixture):
        result = remove_deadlocks(ring_design_fixture, resource_mode="physical")
        dot = topology_to_dot(result.design)
        assert "style=dashed" in dot


class TestCdgDot:
    def test_contains_all_channels_and_dependencies(self, ring_design_fixture):
        cdg = build_cdg(ring_design_fixture)
        dot = cdg_to_dot(cdg)
        assert dot.count("->") >= cdg.edge_count
        assert '"SW1->SW2.vc0"' in dot

    def test_flow_labels_present(self, ring_design_fixture):
        cdg = build_cdg(ring_design_fixture)
        dot = cdg_to_dot(cdg)
        assert "F1" in dot
        assert "F3" in dot

    def test_flow_labels_can_be_disabled(self, ring_design_fixture):
        cdg = build_cdg(ring_design_fixture)
        dot = cdg_to_dot(cdg, show_flows=False)
        assert "F1" not in dot

    def test_cycle_highlighting(self, ring_design_fixture):
        cdg = build_cdg(ring_design_fixture)
        cycle = find_smallest_cycle(cdg)
        dot = cdg_to_dot(cdg, highlight_cycle=cycle)
        assert dot.count("crimson") >= len(cycle)

    def test_acyclic_cdg_renders_without_highlight(self, simple_line_design):
        dot = cdg_to_dot(build_cdg(simple_line_design))
        assert "crimson" not in dot


class TestDesignReport:
    def test_report_lists_links_and_routes(self, ring_design_fixture):
        report = design_report(ring_design_fixture)
        assert "switches       : 4" in report
        assert "SW1->SW2" in report
        assert "F1" in report

    def test_report_counts_added_resources(self, ring_design_fixture):
        result = remove_deadlocks(ring_design_fixture)
        report = design_report(result.design)
        assert "1 extra VCs" in report
