"""Tests for the link power/area model (repro.power.link)."""

import pytest

from repro.errors import PowerModelError
from repro.power.link import LinkPowerModel
from repro.power.orion import TechnologyParameters


@pytest.fixture
def model() -> LinkPowerModel:
    return LinkPowerModel()


class TestLinkPower:
    def test_power_grows_with_length(self, model):
        assert model.total_power_mw(4.0, 0.3) > model.total_power_mw(1.0, 0.3)

    def test_dynamic_power_grows_with_load(self, model):
        assert model.dynamic_power_mw(2.0, 0.8) > model.dynamic_power_mw(2.0, 0.2)

    def test_leakage_independent_of_load(self, model):
        assert model.leakage_power_mw(2.0) > 0

    def test_total_is_sum(self, model):
        assert model.total_power_mw(2.0, 0.5) == pytest.approx(
            model.dynamic_power_mw(2.0, 0.5) + model.leakage_power_mw(2.0)
        )

    def test_load_clamped(self, model):
        assert model.dynamic_power_mw(2.0, 5.0) == model.dynamic_power_mw(2.0, 1.0)

    def test_reasonable_magnitude(self, model):
        # A 2 mm 32-bit link at 30% load should be a few mW at 65 nm.
        assert 0.1 < model.total_power_mw(2.0, 0.3) < 20.0

    def test_nonpositive_length_rejected(self, model):
        with pytest.raises(PowerModelError):
            model.total_power_mw(0.0, 0.5)
        with pytest.raises(PowerModelError):
            model.leakage_power_mw(-1.0)


class TestLinkArea:
    def test_area_grows_with_length(self, model):
        assert model.area_mm2(4.0) > model.area_mm2(1.0)

    def test_area_units_consistent(self, model):
        assert model.area_mm2(2.0) == pytest.approx(model.area_um2(2.0) / 1e6)

    def test_wider_link_larger_area(self):
        narrow = LinkPowerModel(TechnologyParameters(flit_width_bits=16))
        wide = LinkPowerModel(TechnologyParameters(flit_width_bits=64))
        assert wide.area_mm2(2.0) > narrow.area_mm2(2.0)

    def test_nonpositive_length_rejected(self, model):
        with pytest.raises(PowerModelError):
            model.area_um2(0.0)
