"""Tests for the router power/area model (repro.power.orion)."""

import pytest

from repro.errors import PowerModelError
from repro.power.orion import RouterPowerModel, TechnologyParameters


@pytest.fixture
def model() -> RouterPowerModel:
    return RouterPowerModel()


class TestTechnologyParameters:
    def test_defaults_are_65nm(self):
        tech = TechnologyParameters()
        assert tech.tech_nm == 65.0
        assert tech.scale == 1.0

    def test_scale_for_other_nodes(self):
        assert TechnologyParameters(tech_nm=32.5).scale == pytest.approx(0.5)

    def test_link_capacity(self):
        tech = TechnologyParameters(flit_width_bits=32, frequency_hz=500e6)
        # 4 bytes * 500 MHz = 2000 MB/s
        assert tech.link_capacity_mbps == pytest.approx(2000.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(PowerModelError):
            TechnologyParameters(tech_nm=0)
        with pytest.raises(PowerModelError):
            TechnologyParameters(flit_width_bits=0)


class TestReferenceMagnitudes:
    """Sanity band around published ORION 2.0 numbers for a 5-port router."""

    def test_power_in_tens_of_milliwatts(self, model):
        power = model.total_power_mw(5, 5, 10, load=0.3)
        assert 5.0 < power < 120.0

    def test_area_in_tenths_of_mm2(self, model):
        area = model.area_mm2(5, 5, 10)
        assert 0.02 < area < 0.4


class TestScalingBehaviour:
    def test_power_grows_with_vcs(self, model):
        base = model.total_power_mw(5, 5, 5, load=0.3)
        more_vcs = model.total_power_mw(5, 5, 15, load=0.3)
        assert more_vcs > base

    def test_area_grows_with_vcs(self, model):
        assert model.area_mm2(5, 5, 15) > model.area_mm2(5, 5, 5)

    def test_area_grows_with_ports(self, model):
        assert model.area_mm2(7, 7, 7) > model.area_mm2(4, 4, 4)

    def test_dynamic_power_grows_with_load(self, model):
        low = model.dynamic_power_mw(5, 5, 10, load=0.1)
        high = model.dynamic_power_mw(5, 5, 10, load=0.9)
        assert high > low

    def test_leakage_is_load_independent(self, model):
        assert model.leakage_power_mw(5, 5, 10) == model.leakage_power_mw(5, 5, 10)

    def test_total_is_dynamic_plus_leakage(self, model):
        total = model.total_power_mw(5, 5, 10, load=0.5)
        expected = model.dynamic_power_mw(5, 5, 10, 0.5) + model.leakage_power_mw(5, 5, 10)
        assert total == pytest.approx(expected)

    def test_load_is_clamped(self, model):
        assert model.dynamic_power_mw(5, 5, 10, load=2.0) == (
            model.dynamic_power_mw(5, 5, 10, load=1.0)
        )
        assert model.dynamic_power_mw(5, 5, 10, load=-1.0) == (
            model.dynamic_power_mw(5, 5, 10, load=0.0)
        )

    def test_smaller_node_lowers_power_and_area(self):
        old = RouterPowerModel(TechnologyParameters(tech_nm=65))
        new = RouterPowerModel(TechnologyParameters(tech_nm=45))
        assert new.total_power_mw(5, 5, 10, 0.3) < old.total_power_mw(5, 5, 10, 0.3)
        assert new.area_mm2(5, 5, 10) < old.area_mm2(5, 5, 10)

    def test_area_linear_in_buffer_depth(self):
        shallow = RouterPowerModel(TechnologyParameters(buffer_depth_flits=2))
        deep = RouterPowerModel(TechnologyParameters(buffer_depth_flits=8))
        assert deep.area_mm2(5, 5, 10) > shallow.area_mm2(5, 5, 10)


class TestValidation:
    def test_zero_ports_rejected(self, model):
        with pytest.raises(PowerModelError):
            model.total_power_mw(0, 5, 5, 0.3)

    def test_vcs_fewer_than_ports_rejected(self, model):
        with pytest.raises(PowerModelError):
            model.area_mm2(5, 5, 3)
