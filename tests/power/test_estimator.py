"""Tests for NoC-level power/area estimation (repro.power.estimator)."""

import pytest

from repro.core.removal import remove_deadlocks
from repro.power.estimator import (
    NocAreaReport,
    NocPowerReport,
    area_overhead,
    estimate_area,
    estimate_power,
    estimate_power_and_area,
    power_overhead,
)
from repro.power.orion import TechnologyParameters
from repro.routing.ordering import apply_resource_ordering


class TestEstimatePower:
    def test_every_router_and_link_reported(self, ring_design_fixture):
        report = estimate_power(ring_design_fixture)
        assert set(report.router_power_mw) == set(ring_design_fixture.topology.switches)
        assert set(report.link_power_mw) == set(ring_design_fixture.topology.links)

    def test_totals_are_sums(self, ring_design_fixture):
        report = estimate_power(ring_design_fixture)
        assert report.total_power_mw == pytest.approx(
            sum(report.router_power_mw.values()) + sum(report.link_power_mw.values())
        )

    def test_power_is_positive(self, d26_design_14sw):
        assert estimate_power(d26_design_14sw).total_power_mw > 0

    def test_summary_mentions_mw(self, ring_design_fixture):
        assert "mW" in estimate_power(ring_design_fixture).summary()

    def test_adding_vcs_increases_power(self, ring_design_fixture):
        base = estimate_power(ring_design_fixture).total_power_mw
        modified = ring_design_fixture.copy()
        for link in modified.topology.links:
            modified.topology.add_virtual_channel(link)
        assert estimate_power(modified).total_power_mw > base

    def test_custom_technology(self, ring_design_fixture):
        small = estimate_power(
            ring_design_fixture, tech=TechnologyParameters(tech_nm=45)
        ).total_power_mw
        big = estimate_power(
            ring_design_fixture, tech=TechnologyParameters(tech_nm=90)
        ).total_power_mw
        assert small < big


class TestEstimateArea:
    def test_totals_are_sums(self, ring_design_fixture):
        report = estimate_area(ring_design_fixture)
        assert report.total_area_mm2 == pytest.approx(
            report.total_router_area_mm2 + report.total_link_area_mm2
        )

    def test_adding_vcs_increases_area(self, ring_design_fixture):
        base = estimate_area(ring_design_fixture).total_area_mm2
        modified = ring_design_fixture.copy()
        for link in modified.topology.links:
            modified.topology.add_virtual_channel(link)
        assert estimate_area(modified).total_area_mm2 > base

    def test_summary_mentions_mm2(self, ring_design_fixture):
        assert "mm²" in estimate_area(ring_design_fixture).summary()


class TestPaperShapedComparisons:
    """The ratios the paper's evaluation relies on."""

    def test_ordering_costs_more_power_than_removal(self, d36_8_design_14sw):
        design = d36_8_design_14sw.copy()
        removal = remove_deadlocks(design)
        ordering = apply_resource_ordering(design)
        removal_power = estimate_power(removal.design).total_power_mw
        ordering_power = estimate_power(ordering.design).total_power_mw
        assert ordering_power > removal_power

    def test_ordering_costs_more_area_than_removal(self, d36_8_design_14sw):
        design = d36_8_design_14sw.copy()
        removal = remove_deadlocks(design)
        ordering = apply_resource_ordering(design)
        assert (
            estimate_area(ordering.design).total_area_mm2
            > estimate_area(removal.design).total_area_mm2
        )

    def test_removal_overhead_vs_unprotected_is_small(self, d36_8_design_14sw):
        design = d36_8_design_14sw.copy()
        removal = remove_deadlocks(design)
        base_power = estimate_power(design)
        removal_power = estimate_power(removal.design)
        assert power_overhead(base_power, removal_power) < 0.10

    def test_overhead_helpers_signs(self, ring_design_fixture):
        base_power = estimate_power(ring_design_fixture)
        base_area = estimate_area(ring_design_fixture)
        assert power_overhead(base_power, base_power) == pytest.approx(0.0)
        assert area_overhead(base_area, base_area) == pytest.approx(0.0)
        bigger = ring_design_fixture.copy()
        for link in bigger.topology.links:
            bigger.topology.add_virtual_channel(link)
        assert power_overhead(base_power, estimate_power(bigger)) > 0
        assert area_overhead(base_area, estimate_area(bigger)) > 0

    def test_zero_reference_power_raises_value_error(self, ring_design_fixture):
        """Regression: a powerless reference must raise a clear ValueError
        instead of failing with a division error or silently reporting 0."""
        empty = NocPowerReport(design_name="empty")
        candidate = estimate_power(ring_design_fixture)
        with pytest.raises(ValueError, match="0 mW"):
            power_overhead(empty, candidate)

    def test_zero_reference_area_raises_value_error(self, ring_design_fixture):
        empty = NocAreaReport(design_name="empty")
        candidate = estimate_area(ring_design_fixture)
        with pytest.raises(ValueError, match="0 mm"):
            area_overhead(empty, candidate)


class TestFusedEstimation:
    def test_fused_reports_equal_standalone(self, d36_8_design_14sw):
        """estimate_power_and_area shares one derivation pass but must be
        value-identical to the two standalone entry points."""
        power, area = estimate_power_and_area(d36_8_design_14sw)
        assert power.router_power_mw == estimate_power(d36_8_design_14sw).router_power_mw
        assert power.link_power_mw == estimate_power(d36_8_design_14sw).link_power_mw
        assert area.router_area_mm2 == estimate_area(d36_8_design_14sw).router_area_mm2
        assert area.link_area_mm2 == estimate_area(d36_8_design_14sw).link_area_mm2

    def test_fused_honours_custom_tech(self, ring_design_fixture):
        tech = TechnologyParameters(tech_nm=45.0, voltage=0.9)
        power, area = estimate_power_and_area(ring_design_fixture, tech=tech)
        assert power.total_power_mw == pytest.approx(
            estimate_power(ring_design_fixture, tech=tech).total_power_mw
        )
        assert area.total_area_mm2 == pytest.approx(
            estimate_area(ring_design_fixture, tech=tech).total_area_mm2
        )
