"""Tests for runtime deadlock detection (repro.simulation.deadlock)."""

from repro.core.removal import remove_deadlocks
from repro.simulation.deadlock import DeadlockMonitor, find_wait_cycle
from repro.simulation.network import WormholeNetwork
from repro.simulation.flit import Packet
from repro.simulation.simulator import SimulationConfig, simulate_design
from repro.simulation.stats import SimulationStats


def saturate_ring(design, size=8, buffer_depth=1):
    """Inject one long packet per flow into a fresh network of ``design``."""
    network = WormholeNetwork(design, buffer_depth=buffer_depth)
    stats = SimulationStats(design.name)
    for i, flow in enumerate(design.traffic.flows):
        route = design.routes.route(flow.name)
        network.inject(Packet(i, flow.name, route.channels, size, created_cycle=0))
    return network, stats


class TestWaitCycle:
    def test_saturated_paper_ring_reaches_cyclic_wait(self, ring_design_fixture):
        network, stats = saturate_ring(ring_design_fixture)
        for cycle in range(200):
            network.step(cycle, stats)
        cycle_channels = find_wait_cycle(network)
        assert cycle_channels is not None
        assert len(cycle_channels) >= 2

    def test_empty_network_has_no_wait_cycle(self, ring_design_fixture):
        network = WormholeNetwork(ring_design_fixture)
        assert find_wait_cycle(network) is None

    def test_line_network_never_waits_cyclically(self, simple_line_design):
        network, stats = saturate_ring(simple_line_design, size=6)
        for cycle in range(50):
            network.step(cycle, stats)
        assert find_wait_cycle(network) is None


class TestMonitor:
    def test_monitor_fires_only_after_watchdog_window(self, ring_design_fixture):
        network, stats = saturate_ring(ring_design_fixture)
        monitor = DeadlockMonitor(watchdog_cycles=10)
        verdict = None
        fired_at = None
        for cycle in range(300):
            transfers = network.step(cycle, stats)
            verdict = monitor.record_cycle(network, transfers)
            if verdict is not None:
                fired_at = cycle
                break
        assert verdict is not None
        assert fired_at >= 10

    def test_monitor_resets_on_progress(self, simple_line_design):
        network, stats = saturate_ring(simple_line_design, size=4)
        monitor = DeadlockMonitor(watchdog_cycles=5)
        for cycle in range(60):
            transfers = network.step(cycle, stats)
            assert monitor.record_cycle(network, transfers) is None

    def test_idle_empty_network_never_flags(self, simple_line_design):
        network = WormholeNetwork(simple_line_design)
        stats = SimulationStats("idle")
        monitor = DeadlockMonitor(watchdog_cycles=3)
        for cycle in range(20):
            transfers = network.step(cycle, stats)
            assert monitor.record_cycle(network, transfers) is None
        assert monitor.idle_cycles == 0


class TestEndToEnd:
    def test_cyclic_design_deadlocks_under_pressure(self, ring_design_fixture):
        config = SimulationConfig(injection_scale=6.0, buffer_depth=2, seed=1)
        stats = simulate_design(ring_design_fixture, max_cycles=5000, config=config)
        assert stats.deadlock_detected
        assert stats.deadlocked_channels

    def test_removed_design_does_not_deadlock(self, ring_design_fixture):
        config = SimulationConfig(injection_scale=6.0, buffer_depth=2, seed=1)
        fixed = remove_deadlocks(ring_design_fixture).design
        stats = simulate_design(fixed, max_cycles=5000, config=config)
        assert not stats.deadlock_detected
        assert stats.packets_delivered > 0
