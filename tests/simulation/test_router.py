"""Tests for per-switch router state (repro.simulation.router)."""

from repro.model.channels import Channel, Link
from repro.simulation.flit import Packet, make_flits
from repro.simulation.router import Router, buffer_source, injection_source


def sample_channel():
    return Channel(Link("A", "B"))


def sample_packet():
    return Packet(1, "f0", (sample_channel(),), 2, created_cycle=0)


class TestRouterSetup:
    def test_input_channel_creates_buffer(self):
        router = Router("B", buffer_depth=4)
        router.add_input_channel(sample_channel())
        assert sample_channel() in router.input_buffers
        assert router.buffered_flits() == 0

    def test_output_channel_creates_ownership_slot(self):
        router = Router("A", buffer_depth=4)
        router.add_output_channel(sample_channel())
        assert router.output_owner[sample_channel()] is None
        assert sample_channel().link in router.link_pointer

    def test_injection_flow_creates_queue(self):
        router = Router("A", buffer_depth=4)
        router.add_injection_flow("f0")
        assert router.pending_injection_flits() == 0


class TestSources:
    def test_all_sources_deterministic_order(self):
        router = Router("B", buffer_depth=4)
        router.add_input_channel(Channel(Link("A", "B")))
        router.add_input_channel(Channel(Link("C", "B")))
        router.add_injection_flow("f1")
        router.add_injection_flow("f0")
        sources = router.all_sources()
        assert sources[0][0] == "buffer"
        assert sources[-2:] == [injection_source("f0"), injection_source("f1")]

    def test_source_head_and_pop(self):
        router = Router("A", buffer_depth=4)
        router.add_injection_flow("f0")
        flits = make_flits(sample_packet())
        router.injection_queues["f0"].extend(flits)
        source = injection_source("f0")
        assert router.source_head(source) is flits[0]
        assert router.pop_source(source) is flits[0]
        assert router.source_head(source) is flits[1]

    def test_buffer_source_head(self):
        router = Router("B", buffer_depth=4)
        channel = sample_channel()
        router.add_input_channel(channel)
        flit = make_flits(sample_packet())[0]
        router.input_buffers[channel].push(flit)
        assert router.source_head(buffer_source(channel)) is flit
        assert router.occupied_buffers() == [channel]
        assert router.buffered_flits() == 1

    def test_empty_source_head_is_none(self):
        router = Router("B", buffer_depth=4)
        channel = sample_channel()
        router.add_input_channel(channel)
        router.add_injection_flow("f0")
        assert router.source_head(buffer_source(channel)) is None
        assert router.source_head(injection_source("f0")) is None
