"""Tests for the traffic-scenario generators (repro.simulation.scenarios)."""

import pytest

from repro.api.registry import traffic_scenarios
from repro.errors import SimulationError
from repro.simulation.scenarios import (
    BurstyTrafficGenerator,
    HotspotTrafficGenerator,
    TransposeTrafficGenerator,
    UniformTrafficGenerator,
)
from repro.simulation.traffic_gen import FlowTrafficGenerator

ALL_SCENARIOS = ("flows", "uniform", "hotspot", "transpose", "bursty")


def make_generator(design, scenario, **kwargs):
    """Build a scenario generator the way the simulator does: by registry name."""
    return traffic_scenarios.get(scenario)(design, **kwargs)


class TestRegistry:
    def test_builtins_registered(self):
        assert set(traffic_scenarios.names()) >= set(ALL_SCENARIOS)

    def test_flows_is_the_paper_generator(self):
        assert traffic_scenarios.get("flows") is FlowTrafficGenerator

    def test_make_generator_dispatches(self, simple_line_design):
        generator = make_generator(simple_line_design, "uniform", injection_scale=2.0)
        assert isinstance(generator, UniformTrafficGenerator)


class TestDeterminism:
    @pytest.mark.parametrize("scenario", ALL_SCENARIOS)
    def test_same_seed_same_packets(self, simple_line_design, scenario):
        a = make_generator(simple_line_design, scenario, injection_scale=20.0, seed=7)
        b = make_generator(simple_line_design, scenario, injection_scale=20.0, seed=7)
        for cycle in range(100):
            packets_a = [(p.flow_name, p.packet_id) for p in a.generate(cycle)]
            packets_b = [(p.flow_name, p.packet_id) for p in b.generate(cycle)]
            assert packets_a == packets_b

    @pytest.mark.parametrize("scenario", ALL_SCENARIOS)
    def test_different_seeds_diverge_eventually(self, simple_line_design, scenario):
        a = make_generator(simple_line_design, scenario, injection_scale=5.0, seed=1)
        b = make_generator(simple_line_design, scenario, injection_scale=5.0, seed=2)
        streams_differ = any(
            [(p.flow_name) for p in a.generate(c)] != [(p.flow_name) for p in b.generate(c)]
            for c in range(300)
        )
        assert streams_differ


class TestAggregateLoad:
    @pytest.mark.parametrize("scenario", ("uniform", "hotspot", "transpose"))
    def test_spatial_scenarios_preserve_offered_load(self, simple_line_design, scenario):
        """Re-weighting keeps the aggregate offered flits/cycle comparable."""
        base = FlowTrafficGenerator(simple_line_design, injection_scale=0.5)
        other = make_generator(simple_line_design, scenario, injection_scale=0.5)
        assert other.offered_flits_per_cycle == pytest.approx(
            base.offered_flits_per_cycle
        )

    def test_uniform_rates_equal_flit_load(self, simple_line_design):
        generator = UniformTrafficGenerator(simple_line_design, injection_scale=0.5)
        rates = generator.flow_rates
        traffic = simple_line_design.traffic
        flit_loads = {
            name: rate * traffic.flow(name).packet_size_flits
            for name, rate in rates.items()
        }
        values = list(flit_loads.values())
        assert all(v == pytest.approx(values[0]) for v in values)


class TestHotspot:
    def test_hotspot_flows_get_boosted_weight(self, simple_line_design):
        generator = HotspotTrafficGenerator(
            simple_line_design, injection_scale=0.5, hotspot="A", factor=4.0
        )
        rates = generator.flow_rates
        # f1 (c2 -> c0, destination switch A) is the hotspot flow.
        assert rates["f1"] > rates["f0"]
        assert rates["f1"] == pytest.approx(4.0 * rates["f0"])

    def test_default_hotspot_is_busiest_destination(self, simple_line_design):
        generator = HotspotTrafficGenerator(simple_line_design)
        # f0 (bandwidth 100) ends at C, f1 (bandwidth 50) at A.
        assert generator.hotspot == "C"

    def test_unknown_hotspot_switch_rejected(self, simple_line_design):
        with pytest.raises(SimulationError):
            HotspotTrafficGenerator(simple_line_design, hotspot="NOPE")

    def test_non_positive_factor_rejected(self, simple_line_design):
        with pytest.raises(SimulationError):
            HotspotTrafficGenerator(simple_line_design, factor=0.0)


class TestTranspose:
    def test_transposed_pairs_dominate(self, simple_line_design):
        # Switches sorted: A(0), B(1), C(2); N-1-idx pairs are A<->C.
        generator = TransposeTrafficGenerator(simple_line_design, off_factor=0.1)
        assert generator.is_transposed("f0")  # A -> C
        assert generator.is_transposed("f1")  # C -> A
        rates = generator.flow_rates
        assert all(rate > 0 for rate in rates.values())

    def test_off_factor_scales_inactive_flows(self, small_mesh_design):
        generator = TransposeTrafficGenerator(small_mesh_design, off_factor=0.25)
        rates = generator.flow_rates
        active = [n for n in rates if generator.is_transposed(n)]
        inactive = [n for n in rates if not generator.is_transposed(n)]
        if active and inactive:
            traffic = small_mesh_design.traffic
            load = lambda n: rates[n] * traffic.flow(n).packet_size_flits
            assert load(active[0]) == pytest.approx(load(inactive[0]) / 0.25)

    def test_negative_off_factor_rejected(self, simple_line_design):
        with pytest.raises(SimulationError):
            TransposeTrafficGenerator(simple_line_design, off_factor=-0.5)


class TestBursty:
    def test_long_run_rate_approximates_nominal(self, simple_line_design):
        nominal = FlowTrafficGenerator(simple_line_design, injection_scale=10.0)
        bursty = BurstyTrafficGenerator(simple_line_design, injection_scale=10.0, seed=4)
        cycles = 20_000
        nominal_count = sum(len(nominal.generate(c)) for c in range(cycles))
        bursty_count = sum(len(bursty.generate(c)) for c in range(cycles))
        assert bursty_count == pytest.approx(nominal_count, rel=0.15)

    def test_packets_cluster_in_bursts(self, simple_line_design):
        """Bursty inter-arrival variance exceeds the Bernoulli baseline."""
        bursty = BurstyTrafficGenerator(
            simple_line_design, injection_scale=5.0, seed=3, duty=0.2
        )
        active_cycles = [bool(bursty.generate(c)) for c in range(5000)]
        # Count ON->OFF style runs: bursts imply long idle gaps.
        longest_gap = 0
        gap = 0
        for active in active_cycles:
            gap = 0 if active else gap + 1
            longest_gap = max(longest_gap, gap)
        assert longest_gap > 50

    def test_invalid_parameters_rejected(self, simple_line_design):
        with pytest.raises(SimulationError):
            BurstyTrafficGenerator(simple_line_design, burst_length=0.5)
        with pytest.raises(SimulationError):
            BurstyTrafficGenerator(simple_line_design, duty=1.5)


class TestSeedThreading:
    def test_generator_never_uses_module_level_randomness(self, simple_line_design):
        """Seeding the global RNG differently must not change the stream."""
        import random as random_module

        random_module.seed(123)
        a = make_generator(simple_line_design, "bursty", injection_scale=10.0, seed=5)
        stream_a = [len(a.generate(c)) for c in range(200)]
        random_module.seed(456)
        b = make_generator(simple_line_design, "bursty", injection_scale=10.0, seed=5)
        stream_b = [len(b.generate(c)) for c in range(200)]
        assert stream_a == stream_b
