"""Tests for the pluggable recovery-policy registry (repro.simulation.recovery).

Two layers: unit tests drive a :class:`RecoveryController` directly
(with a stub network) to pin each policy's route-set semantics — idle's
park/reinstate cycle, protection's candidate swap — and engine-equivalence
tests run every policy through ``simulate_design(..., cross_check=True)``
on a fat-tree ``k=2`` design under a fail/restore schedule, so compiled
and legacy engines are proven field-identical per policy.
"""

from __future__ import annotations

import pytest

from repro.api.registry import recovery_policies
from repro.benchmarks.registry import get_benchmark
from repro.core.cdg import build_cdg
from repro.core.cycles import count_cycles
from repro.core.removal import remove_deadlocks
from repro.errors import SimulationError
from repro.simulation.events import EventSchedule
from repro.simulation.recovery import (
    BACKUP_SUFFIX,
    RecoveryController,
    _disjoint_path,
)
from repro.simulation.simulator import SimulationConfig, simulate_design
from repro.simulation.stats import SimulationStats
from repro.synthesis.families import family_design
from repro.synthesis.regular import mesh_design

POLICIES = ["idle", "protection", "removal", "reroute"]


class _StubNetwork:
    """The slice of the network interface the controller touches."""

    def drop_flows(self, names):
        return (0, 0)

    def sync_with_design(self):
        pass

    def live_packet_ids(self):
        return set()

    def is_packet_live(self, pid):
        return False


def _protected_mesh():
    return remove_deadlocks(mesh_design(3, 3)).design


def _severable(design):
    """A (flow name, link) pair where the link carries the flow's route."""
    routes = design.routes
    for name in routes.flow_names:
        links = routes.route(name).links
        if links:
            return name, links[0]
    raise AssertionError("mesh design has no routed inter-switch flow")


class TestRegistry:
    def test_canonical_names(self):
        assert recovery_policies.names() == POLICIES


class TestIdlePolicy:
    def test_parks_severed_route_and_reinstates_on_restore(self):
        design = _protected_mesh()
        name, link = _severable(design)
        original = design.routes.route(name)
        schedule = (
            EventSchedule()
            .fail_link(10, link.src, link.dst, link.index)
            .restore_link(50, link.src, link.dst, link.index)
        )
        controller = RecoveryController(design, schedule, mode="idle")
        stats = SimulationStats(design_name=design.name)
        network = _StubNetwork()

        controller.on_cycle(10, network, stats)
        assert not controller.design.routes.has_route(name)
        assert controller.policy._parked[name] == original
        # Quiesced, never re-routed: the live CDG shrank, so still acyclic.
        assert count_cycles(build_cdg(controller.design), limit=1) == 0

        controller.on_cycle(50, network, stats)
        assert controller.design.routes.route(name) == original
        assert name not in controller.policy._parked

    def test_route_stays_parked_while_any_link_is_down(self):
        design = _protected_mesh()
        name, link = _severable(design)
        other = next(
            l for l in design.topology.links if l != link
        )
        schedule = (
            EventSchedule()
            .fail_link(10, link.src, link.dst, link.index)
            .fail_link(10, other.src, other.dst, other.index)
            .restore_link(40, other.src, other.dst, other.index)
        )
        controller = RecoveryController(design, schedule, mode="idle")
        stats = SimulationStats(design_name=design.name)
        controller.on_cycle(10, _StubNetwork(), stats)
        controller.on_cycle(40, _StubNetwork(), stats)
        # The restore batch did not bring `link` back, so `name` stays parked.
        assert name in controller.policy._parked


class TestProtectionPolicy:
    def test_prepare_provisions_disjoint_candidates(self):
        design = _protected_mesh()
        controller = RecoveryController(
            design, EventSchedule().fail_link(10, "sw0", "sw1"), mode="protection"
        )
        candidates = controller.policy._candidates
        assert set(candidates) == set(design.routes.flow_names)
        protected = 0
        for name, routes in candidates.items():
            assert 1 <= len(routes) <= 2
            if len(routes) == 2:
                protected += 1
                primary, backup = routes
                assert not (set(primary.links) & set(backup.links))
        assert protected, "a 3x3 mesh offers disjoint paths for some flows"

    def test_ported_design_keeps_traffic_and_stays_acyclic(self):
        design = _protected_mesh()
        controller = RecoveryController(
            design, EventSchedule().fail_link(10, "sw0", "sw1"), mode="protection"
        )
        ported = controller.design
        assert ported.traffic is design.traffic
        assert sorted(ported.routes.flow_names) == sorted(design.routes.flow_names)
        assert not any(
            name.endswith(BACKUP_SUFFIX) for name in ported.routes.flow_names
        )
        assert count_cycles(build_cdg(ported), limit=1) == 0

    def test_failure_swaps_backup_in_without_rerouting(self):
        design = _protected_mesh()
        controller = RecoveryController(design, EventSchedule(), mode="protection")
        # Pick a protected flow and fail its primary's first link.
        name = next(
            n for n, c in sorted(controller.policy._candidates.items()) if len(c) == 2
        )
        primary, backup = controller.policy._candidates[name]
        link = primary.links[0]
        schedule = EventSchedule().fail_link(10, link.src, link.dst, link.index)
        controller = RecoveryController(design, schedule, mode="protection")
        primary, backup = controller.policy._candidates[name]
        stats = SimulationStats(design_name=design.name)
        controller.on_cycle(10, _StubNetwork(), stats)
        routes = controller.design.routes
        if all(controller.design.topology.has_link(l) for l in backup.links):
            assert routes.route(name) == backup
        else:
            assert not routes.has_route(name)
        # Any primary/backup mixture is a subset of the jointly removed
        # route set, so the degraded CDG must still be acyclic.
        assert count_cycles(build_cdg(controller.design), limit=1) == 0
        assert stats.post_fault_deadlock_free is True

    def test_backup_namespace_collision_rejected(self):
        design = _protected_mesh()
        victim = design.routes.flow_names[0]
        flow = design.traffic.flow(victim)
        design.traffic.add_flow(
            victim + BACKUP_SUFFIX, flow.src, flow.dst, bandwidth=flow.bandwidth
        )
        with pytest.raises(SimulationError, match="backup namespace"):
            RecoveryController(
                design, EventSchedule().fail_link(10, "sw0", "sw1"), mode="protection"
            )

    def test_disjoint_path_avoids_the_avoid_set(self):
        design = _protected_mesh()
        name, _ = _severable(design)
        primary = design.routes.route(name)
        flow = design.traffic.flow(name)
        path = _disjoint_path(
            design.topology,
            design.switch_of(flow.src),
            design.switch_of(flow.dst),
            set(primary.links),
        )
        if path is not None:
            assert not (set(path) & set(primary.links))


class TestEngineEquivalencePerPolicy:
    @pytest.fixture(scope="class")
    def fat_tree(self):
        traffic = get_benchmark("D26_media", seed=0)
        return remove_deadlocks(family_design("fat_tree", traffic, {"k": 2})).design

    @pytest.mark.parametrize("policy", POLICIES)
    def test_cross_check_on_fat_tree(self, fat_tree, policy):
        schedule = EventSchedule.random(
            fat_tree.topology,
            seed=3,
            link_failures=2,
            start_cycle=40,
            end_cycle=200,
            restore_after=100,
        )
        config = SimulationConfig(
            injection_scale=1.0,
            seed=0,
            fault_schedule=schedule,
            fault_recovery=policy,
        )
        stats = simulate_design(fat_tree, max_cycles=400, config=config, cross_check=True)
        assert stats.fault_events_applied > 0
        assert stats.post_fault_deadlock_free is not None

    @pytest.mark.parametrize("policy", ["idle", "protection"])
    def test_never_rerouting_policies_stay_deadlock_free(self, fat_tree, policy):
        schedule = EventSchedule.random(
            fat_tree.topology, seed=5, link_failures=3, start_cycle=30, end_cycle=150
        )
        config = SimulationConfig(
            injection_scale=1.0,
            seed=0,
            fault_schedule=schedule,
            fault_recovery=policy,
        )
        stats = simulate_design(fat_tree, max_cycles=400, config=config, cross_check=True)
        assert stats.post_fault_deadlock_free is True
