"""Tests for the correlated fault-model registry (repro.simulation.fault_models).

Every generator must be a *pure seeded function* of ``(design, seed,
parameters)``: the experiment cache fingerprints only the spec, so any
hidden state (wallclock, iteration order over an unsorted container)
would silently poison cached results.  The hypothesis suites here pin
that purity plus each model's defining structural property — uniform's
byte-identity with :meth:`EventSchedule.random`, spatial bursts'
radius-bounded footprint, the cascade's load-before-idle ordering and
the MTBF renewal process's per-link fail/restore alternation.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api.registry import fault_models
from repro.errors import RegistryError, SimulationError
from repro.simulation.events import EventSchedule
from repro.simulation.fault_models import (
    _hop_distances,
    build_fault_schedule,
    cascade_model,
    mtbf_model,
    spatial_burst_model,
    uniform_model,
)
from repro.synthesis.regular import mesh_design

SETTINGS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

SEEDS = st.integers(min_value=0, max_value=2**32 - 1)


@pytest.fixture(scope="module")
def design():
    return mesh_design(3, 3)


class TestRegistry:
    def test_canonical_names(self):
        assert fault_models.names() == ["cascade", "mtbf", "spatial_burst", "uniform"]

    def test_unknown_model_rejected(self):
        with pytest.raises(RegistryError, match="fault model"):
            fault_models.get("meteor_strike")


class TestUniformModel:
    @SETTINGS
    @given(seed=SEEDS)
    def test_byte_identical_to_event_schedule_random(self, design, seed):
        generated = uniform_model(
            design, seed=seed, link_failures=2, router_failures=1, restore_after=120
        )
        reference = EventSchedule.random(
            design.topology,
            seed=seed,
            link_failures=2,
            router_failures=1,
            restore_after=120,
        )
        assert generated.to_dict() == reference.to_dict()


class TestSpatialBurstModel:
    @SETTINGS
    @given(seed=SEEDS, radius=st.integers(min_value=0, max_value=3))
    def test_footprint_within_radius_of_one_epicentre(self, design, seed, radius):
        schedule = spatial_burst_model(design, seed=seed, bursts=1, radius=radius)
        failed = {event.link for event in schedule.events if event.action == "fail_link"}
        assert failed, "a burst on a connected mesh must fail at least one link"
        # Some switch explains every failed link as within-radius.
        topology = design.topology
        assert any(
            all(
                min(
                    _hop_distances(topology, switch).get(link.src, radius + 1),
                    _hop_distances(topology, switch).get(link.dst, radius + 1),
                )
                <= radius
                for link in failed
            )
            for switch in topology.switches
        )

    @SETTINGS
    @given(seed=SEEDS, radius=st.integers(min_value=0, max_value=2))
    def test_footprint_grows_monotonically_with_radius(self, design, seed, radius):
        # The epicentre and cycle draws happen before radius is consulted,
        # so the same seed grows the same burst outward.
        smaller = spatial_burst_model(design, seed=seed, bursts=1, radius=radius)
        larger = spatial_burst_model(design, seed=seed, bursts=1, radius=radius + 1)
        links = lambda schedule: {
            event.link for event in schedule.events if event.action == "fail_link"
        }
        assert links(smaller) <= links(larger)

    @SETTINGS
    @given(seed=SEEDS)
    def test_restore_after_repairs_every_failed_link(self, design, seed):
        schedule = spatial_burst_model(
            design, seed=seed, bursts=2, radius=1, restore_after=77
        )
        fails = {e.link for e in schedule.events if e.action == "fail_link"}
        restores = {e.link for e in schedule.events if e.action == "restore_link"}
        assert fails == restores

    def test_negative_radius_rejected(self, design):
        with pytest.raises(SimulationError, match="radius"):
            spatial_burst_model(design, radius=-1)

    def test_inverted_window_rejected(self, design):
        with pytest.raises(SimulationError, match="end_cycle"):
            spatial_burst_model(design, start_cycle=500, end_cycle=500)


class TestCascadeModel:
    @SETTINGS
    @given(seed=SEEDS)
    def test_loaded_links_fail_before_idle_ones(self, design, seed):
        loads = design.link_load()
        all_links = design.topology.links
        schedule = cascade_model(design, seed=seed, failures=len(all_links))
        fail_cycle = {
            event.link: event.cycle
            for event in schedule.events
            if event.action == "fail_link"
        }
        assert set(fail_cycle) == set(all_links)
        loaded = [fail_cycle[l] for l in all_links if loads.get(l, 0.0) > 0]
        idle = [fail_cycle[l] for l in all_links if loads.get(l, 0.0) <= 0]
        if loaded and idle:
            assert max(loaded) <= min(idle)

    @SETTINGS
    @given(seed=SEEDS, failures=st.integers(min_value=1, max_value=5))
    def test_draws_distinct_links_within_window(self, design, seed, failures):
        schedule = cascade_model(
            design, seed=seed, failures=failures, start_cycle=200, end_cycle=300
        )
        events = schedule.events
        assert len(events) == min(failures, len(design.topology.links))
        assert len({event.link for event in events}) == len(events)
        assert all(200 <= event.cycle < 300 for event in events)


class TestMtbfModel:
    @SETTINGS
    @given(seed=SEEDS)
    def test_per_link_renewal_structure(self, design, seed):
        horizon = 2000
        schedule = mtbf_model(design, seed=seed, mtbf=400.0, mttr=100.0, horizon=horizon)
        per_link = {}
        for event in schedule.events:
            assert event.cycle < horizon
            per_link.setdefault(event.link, []).append(event)
        assert per_link, "mtbf=400 over 2000 cycles should fail something"
        for events in per_link.values():
            cycles = [event.cycle for event in events]
            assert cycles == sorted(set(cycles)), "strictly increasing per link"
            actions = [event.action for event in events]
            # Strict alternation starting with a failure; only the *last*
            # event may be an unmatched fail (repair past the horizon).
            expected = ["fail_link", "restore_link"] * len(actions)
            assert actions == expected[: len(actions)]

    def test_invalid_parameters_rejected(self, design):
        with pytest.raises(SimulationError, match="mtbf"):
            mtbf_model(design, mtbf=0.0)
        with pytest.raises(SimulationError, match="mtbf"):
            mtbf_model(design, mttr=-1.0)
        with pytest.raises(SimulationError, match="horizon"):
            mtbf_model(design, horizon=0)


class TestDeterminism:
    @pytest.mark.parametrize("model", fault_models.names())
    def test_pure_function_of_seed_and_params(self, design, model):
        generator = fault_models.get(model)
        first = generator(design, seed=7)
        second = generator(design, seed=7)
        assert first.to_dict() == second.to_dict()

    @pytest.mark.parametrize("model", fault_models.names())
    def test_every_schedule_validates_against_topology(self, design, model):
        schedule = fault_models.get(model)(design, seed=3)
        # validate_targets raises on any event naming a foreign component.
        assert schedule.validate_targets(design.topology) is schedule


class TestBuildFaultSchedule:
    def test_no_request_yields_none(self, design):
        assert build_fault_schedule(design) is None

    def test_model_and_schedule_are_mutually_exclusive(self, design):
        with pytest.raises(SimulationError, match="mutually exclusive"):
            build_fault_schedule(
                design, fault_model="uniform", fault_schedule={"events": []}
            )

    def test_params_without_model_rejected(self, design):
        with pytest.raises(SimulationError, match="without a fault_model"):
            build_fault_schedule(design, fault_params={"radius": 1})

    def test_unknown_parameter_reported_as_simulation_error(self, design):
        with pytest.raises(SimulationError, match="parameter"):
            build_fault_schedule(
                design, fault_model="uniform", fault_params={"blast_radius": 3}
            )

    def test_unknown_model_raises_registry_error(self, design):
        with pytest.raises(RegistryError):
            build_fault_schedule(design, fault_model="meteor_strike")

    def test_spec_seed_feeds_the_generator(self, design):
        via_spec = build_fault_schedule(design, fault_model="uniform", seed=11)
        direct = uniform_model(design, seed=11)
        assert via_spec.to_dict() == direct.to_dict()

    def test_explicit_param_seed_wins_over_spec_seed(self, design):
        schedule = build_fault_schedule(
            design, fault_model="uniform", fault_params={"seed": 5}, seed=11
        )
        assert schedule.to_dict() == uniform_model(design, seed=5).to_dict()

    def test_schedule_document_still_resolves(self, design):
        schedule = build_fault_schedule(
            design, fault_schedule={"random": {"link_failures": 1, "seed": 4}}
        )
        assert len(schedule) == 1
