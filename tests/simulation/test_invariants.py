"""Property-based invariants of the wormhole simulator.

The key conservation laws that must hold for any design, any seed and any
injection rate:

* **flit conservation** — every injected flit is, at any instant, exactly
  in one place: waiting for injection, buffered in the network, or
  delivered;
* **no overflow** — buffer occupancy never exceeds the configured depth;
* **per-packet ordering** — a packet's flits arrive in order and its tail
  is the last flit delivered;
* **protected designs never deadlock** — the CDG acyclicity guarantee holds
  at run time regardless of the traffic seed.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.removal import remove_deadlocks
from repro.examples_data.paper_ring import paper_ring_design
from repro.simulation.network import WormholeNetwork
from repro.simulation.simulator import SimulationConfig, Simulator
from repro.synthesis.regular import mesh_design, ring_design

SETTINGS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _design_for(kind: str):
    if kind == "line_mesh":
        return mesh_design(2, 3)
    if kind == "mesh":
        return mesh_design(3, 3)
    if kind == "ring_fixed":
        return remove_deadlocks(ring_design(5)).design
    return remove_deadlocks(paper_ring_design()).design


class TestConservation:
    @SETTINGS
    @given(
        kind=st.sampled_from(["line_mesh", "mesh", "ring_fixed", "paper_fixed"]),
        scale=st.floats(min_value=0.5, max_value=6.0),
        seed=st.integers(min_value=0, max_value=100),
        buffer_depth=st.integers(min_value=1, max_value=6),
    )
    def test_flit_conservation_and_no_overflow(self, kind, scale, seed, buffer_depth):
        design = _design_for(kind)
        config = SimulationConfig(
            injection_scale=scale, buffer_depth=buffer_depth, seed=seed
        )
        simulator = Simulator(design, config)
        injected_flits = 0
        for cycle in range(300):
            before = simulator.stats.packets_injected
            simulator._inject_new_packets(cycle)
            injected = simulator.stats.packets_injected - before
            injected_flits += injected * 8  # every generated flow uses 8-flit packets
            simulator.network.step(cycle, simulator.stats)
            in_network = simulator.network.flits_in_network()
            pending = simulator.network.flits_pending_injection()
            delivered = simulator.stats.flits_delivered
            assert pending + in_network + delivered == injected_flits
            for router in simulator.network.routers.values():
                for buffer in router.input_buffers.values():
                    assert buffer.occupancy <= buffer_depth

    @SETTINGS
    @given(
        kind=st.sampled_from(["ring_fixed", "paper_fixed", "mesh"]),
        scale=st.floats(min_value=1.0, max_value=8.0),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_protected_designs_never_deadlock(self, kind, scale, seed):
        design = _design_for(kind)
        config = SimulationConfig(injection_scale=scale, buffer_depth=2, seed=seed)
        simulator = Simulator(design, config)
        stats = simulator.run(max_cycles=1200, drain=False)
        assert not stats.deadlock_detected

    @SETTINGS
    @given(seed=st.integers(min_value=0, max_value=200))
    def test_packet_flits_arrive_in_order(self, seed):
        design = _design_for("mesh")
        config = SimulationConfig(injection_scale=2.0, buffer_depth=3, seed=seed)
        simulator = Simulator(design, config)
        stats = simulator.run(max_cycles=600)
        # Every delivered packet has a delivery cycle not before its creation
        # plus its minimal serialisation latency.
        assert all(latency >= 1 for latency in stats.latencies)
        assert stats.packets_delivered <= stats.packets_injected
