"""Tests for the fault event schedule (repro.simulation.events)."""

from __future__ import annotations

import json

import pytest

from repro.errors import SimulationError
from repro.simulation.events import ACTIONS, EventSchedule, FaultEvent
from repro.synthesis.regular import mesh_design


class TestFaultEvent:
    def test_link_event_round_trip(self):
        event = FaultEvent(42, "fail_link", ("a", "b", 1))
        assert FaultEvent.from_dict(event.to_dict()) == event
        assert event.is_link_event
        assert event.link.src == "a" and event.link.dst == "b"
        assert event.link.index == 1

    def test_router_event_round_trip(self):
        event = FaultEvent(7, "restore_router", ("sw3",))
        assert FaultEvent.from_dict(event.to_dict()) == event
        assert not event.is_link_event
        assert event.switch == "sw3"

    def test_events_order_by_cycle_first(self):
        late = FaultEvent(100, "fail_link", ("a", "b", 0))
        early = FaultEvent(5, "restore_router", ("z",))
        assert early < late

    @pytest.mark.parametrize("cycle", [-1, 1.5, "10", True])
    def test_invalid_cycle_rejected(self, cycle):
        with pytest.raises(SimulationError):
            FaultEvent(cycle, "fail_link", ("a", "b", 0))

    def test_unknown_action_rejected(self):
        with pytest.raises(SimulationError, match="unknown fault action"):
            FaultEvent(0, "explode", ("a", "b", 0))

    def test_mismatched_target_arity_rejected(self):
        with pytest.raises(SimulationError):
            FaultEvent(0, "fail_link", ("a",))
        with pytest.raises(SimulationError):
            FaultEvent(0, "fail_router", ("a", "b", 0))

    def test_from_dict_rejects_malformed_documents(self):
        with pytest.raises(SimulationError):
            FaultEvent.from_dict("not a mapping")
        with pytest.raises(SimulationError):
            FaultEvent.from_dict({"cycle": 1, "action": "fail_link"})
        with pytest.raises(SimulationError):
            FaultEvent.from_dict({"cycle": 1, "action": "fail_router"})

    def test_link_index_defaults_to_zero(self):
        event = FaultEvent.from_dict(
            {"cycle": 1, "action": "fail_link", "link": {"src": "a", "dst": "b"}}
        )
        assert event.target == ("a", "b", 0)


class TestEventSchedule:
    def _sample(self) -> EventSchedule:
        return (
            EventSchedule()
            .fail_link(50, "a", "b")
            .fail_router(50, "sw1")
            .restore_link(90, "a", "b")
            .restore_router(120, "sw1")
        )

    def test_builders_chain_and_count(self):
        schedule = self._sample()
        assert len(schedule) == 4
        assert bool(schedule)
        assert not EventSchedule()

    def test_events_come_back_in_canonical_order(self):
        forward = self._sample()
        backward = EventSchedule(reversed(forward.events))
        assert forward == backward
        cycles = [event.cycle for event in forward]
        assert cycles == sorted(cycles)

    def test_json_round_trip(self):
        schedule = self._sample()
        payload = json.dumps(schedule.to_dict())
        assert EventSchedule.from_dict(json.loads(payload)) == schedule

    def test_from_dict_rejects_malformed(self):
        with pytest.raises(SimulationError):
            EventSchedule.from_dict([1, 2])
        with pytest.raises(SimulationError):
            EventSchedule.from_dict({"events": "nope"})


class TestRandomSchedules:
    def _topology(self):
        return mesh_design(3, 3).topology

    def test_same_seed_same_schedule(self):
        topology = self._topology()
        a = EventSchedule.random(topology, seed=3, link_failures=2, router_failures=1)
        b = EventSchedule.random(topology, seed=3, link_failures=2, router_failures=1)
        assert a == b

    def test_different_seeds_diverge(self):
        topology = self._topology()
        schedules = {
            EventSchedule.random(topology, seed=seed, link_failures=2).events
            for seed in range(8)
        }
        assert len(schedules) > 1

    def test_cycles_within_window_and_targets_exist(self):
        topology = self._topology()
        links = set(topology.links)
        schedule = EventSchedule.random(
            topology, seed=1, link_failures=3, start_cycle=10, end_cycle=40
        )
        assert len(schedule) == 3
        for event in schedule:
            assert event.action == "fail_link"
            assert 10 <= event.cycle < 40
            assert event.link in links

    def test_restore_after_pairs_every_failure(self):
        topology = self._topology()
        schedule = EventSchedule.random(
            topology,
            seed=2,
            link_failures=2,
            router_failures=1,
            restore_after=500,
        )
        fails = [e for e in schedule if e.action.startswith("fail")]
        restores = [e for e in schedule if e.action.startswith("restore")]
        assert len(fails) == len(restores) == 3
        by_target = {e.target: e.cycle for e in fails}
        for event in restores:
            assert event.cycle == by_target[event.target] + 500

    def test_failure_counts_clamped_to_topology(self):
        topology = self._topology()
        schedule = EventSchedule.random(
            topology, seed=0, link_failures=10_000, router_failures=10_000
        )
        fails = [e for e in schedule if e.action == "fail_link"]
        routers = [e for e in schedule if e.action == "fail_router"]
        assert len(fails) == len(topology.links)
        assert len(routers) == len(topology.switches)
        assert len({e.target for e in fails}) == len(fails)

    def test_empty_window_rejected(self):
        with pytest.raises(SimulationError):
            EventSchedule.random(self._topology(), start_cycle=10, end_cycle=10)


class TestFromSpec:
    def test_none_passes_through(self):
        assert EventSchedule.from_spec(None) is None

    def test_schedule_passes_through(self):
        schedule = EventSchedule().fail_link(1, "a", "b")
        assert EventSchedule.from_spec(schedule) is schedule

    def test_events_document(self):
        schedule = EventSchedule().fail_link(5, "a", "b")
        resolved = EventSchedule.from_spec(schedule.to_dict())
        assert resolved == schedule

    def test_random_request_uses_surrounding_seed_by_default(self):
        topology = mesh_design(2, 2).topology
        request = {"random": {"link_failures": 1}}
        a = EventSchedule.from_spec(request, topology=topology, seed=4)
        b = EventSchedule.random(topology, seed=4, link_failures=1)
        assert a == b
        pinned = EventSchedule.from_spec(
            {"random": {"link_failures": 1, "seed": 9}}, topology=topology, seed=4
        )
        assert pinned == EventSchedule.random(topology, seed=9, link_failures=1)

    def test_random_request_needs_topology(self):
        with pytest.raises(SimulationError, match="topology"):
            EventSchedule.from_spec({"random": {}})

    @pytest.mark.parametrize(
        "value",
        [
            "faults",
            {"events": [], "random": {}},
            {"random": "nope"},
            {"neither": 1},
        ],
    )
    def test_malformed_specs_rejected(self, value):
        with pytest.raises(SimulationError):
            EventSchedule.from_spec(value, topology=mesh_design(2, 2).topology)


def test_actions_constant_is_complete():
    assert set(ACTIONS) == {"fail_link", "fail_router", "restore_link", "restore_router"}
