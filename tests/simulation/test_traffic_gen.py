"""Tests for traffic generation (repro.simulation.traffic_gen)."""

import pytest

from repro.power.orion import TechnologyParameters
from repro.simulation.traffic_gen import FlowTrafficGenerator


class TestRates:
    def test_rates_proportional_to_bandwidth(self, simple_line_design):
        generator = FlowTrafficGenerator(simple_line_design)
        rates = generator.flow_rates
        assert rates["f0"] == pytest.approx(2 * rates["f1"])

    def test_rates_scale_with_injection_scale(self, simple_line_design):
        base = FlowTrafficGenerator(simple_line_design).flow_rates
        double = FlowTrafficGenerator(simple_line_design, injection_scale=2.0).flow_rates
        for name in base:
            assert double[name] == pytest.approx(min(2 * base[name], 1.0))

    def test_rates_capped_at_one_packet_per_cycle(self, simple_line_design):
        generator = FlowTrafficGenerator(simple_line_design, injection_scale=1e6)
        assert all(rate <= 1.0 for rate in generator.flow_rates.values())

    def test_unrouted_flows_are_skipped(self, simple_line_design):
        design = simple_line_design.copy()
        design.routes.remove_route("f1")
        generator = FlowTrafficGenerator(design)
        assert "f1" not in generator.flow_rates

    def test_rate_uses_technology_capacity(self, simple_line_design):
        slow = FlowTrafficGenerator(
            simple_line_design, tech=TechnologyParameters(frequency_hz=250e6)
        ).flow_rates
        fast = FlowTrafficGenerator(
            simple_line_design, tech=TechnologyParameters(frequency_hz=1000e6)
        ).flow_rates
        assert slow["f0"] > fast["f0"]


class TestGeneration:
    def test_deterministic_for_seed(self, simple_line_design):
        a = FlowTrafficGenerator(simple_line_design, injection_scale=50.0, seed=3)
        b = FlowTrafficGenerator(simple_line_design, injection_scale=50.0, seed=3)
        for cycle in range(50):
            packets_a = [(p.flow_name, p.packet_id) for p in a.generate(cycle)]
            packets_b = [(p.flow_name, p.packet_id) for p in b.generate(cycle)]
            assert packets_a == packets_b

    def test_packet_ids_are_unique_and_increasing(self, simple_line_design):
        generator = FlowTrafficGenerator(simple_line_design, injection_scale=100.0, seed=1)
        ids = []
        for cycle in range(100):
            ids.extend(p.packet_id for p in generator.generate(cycle))
        assert ids == sorted(ids)
        assert len(ids) == len(set(ids))

    def test_packets_carry_route_and_size(self, simple_line_design):
        generator = FlowTrafficGenerator(simple_line_design, injection_scale=100.0, seed=1)
        packets = []
        for cycle in range(50):
            packets.extend(generator.generate(cycle))
        assert packets, "high injection scale must produce packets"
        for packet in packets:
            assert packet.size_flits == 8
            assert len(packet.route) >= 1

    def test_higher_rate_generates_more_packets(self, simple_line_design):
        low = FlowTrafficGenerator(simple_line_design, injection_scale=5.0, seed=2)
        high = FlowTrafficGenerator(simple_line_design, injection_scale=50.0, seed=2)
        low_count = sum(len(low.generate(c)) for c in range(200))
        high_count = sum(len(high.generate(c)) for c in range(200))
        assert high_count > low_count
