"""Tests for simulation statistics (repro.simulation.stats)."""

import pytest

from repro.model.channels import Channel, Link
from repro.simulation.stats import SimulationStats


class TestDerivedMetrics:
    def test_empty_stats(self):
        stats = SimulationStats("x")
        assert stats.average_latency == 0.0
        assert stats.max_latency == 0
        assert stats.throughput_flits_per_cycle == 0.0
        assert not stats.deadlock_detected

    def test_average_and_max_latency(self):
        stats = SimulationStats("x", latencies=[10, 20, 30])
        assert stats.average_latency == pytest.approx(20.0)
        assert stats.max_latency == 30

    def test_throughput(self):
        stats = SimulationStats("x", cycles_run=100, flits_delivered=50)
        assert stats.throughput_flits_per_cycle == pytest.approx(0.5)

    def test_packets_in_flight(self):
        stats = SimulationStats("x", packets_injected=10, packets_delivered=7)
        assert stats.packets_in_flight == 3

    def test_channel_utilization(self):
        channel = Channel(Link("A", "B"))
        stats = SimulationStats("x", cycles_run=100, channel_busy_cycles={channel: 25})
        assert stats.channel_utilization(channel) == pytest.approx(0.25)
        assert stats.channel_utilization(Channel(Link("B", "A"))) == 0.0

    def test_deadlock_flag(self):
        stats = SimulationStats("x", deadlock_cycle=500)
        assert stats.deadlock_detected

    def test_summary_mentions_deadlock_when_present(self):
        channel = Channel(Link("A", "B"))
        stats = SimulationStats("x", deadlock_cycle=5, deadlocked_channels=[channel])
        assert "DEADLOCK" in stats.summary()

    def test_summary_without_deadlock(self):
        assert "DEADLOCK" not in SimulationStats("x").summary()
