"""Tests for trace-driven traffic (repro.simulation.trace)."""

from __future__ import annotations

import json

import pytest

from repro.analysis.performance import measure_load_point
from repro.api.registry import traffic_scenarios
from repro.errors import SimulationError
from repro.simulation.trace import (
    TRACE_FORMAT_VERSION,
    TraceTrafficGenerator,
    load_trace,
    save_trace,
    synthesize_trace,
    validate_trace,
)
from repro.simulation.traffic_gen import FlowTrafficGenerator


def _packet_tuples(packets):
    return [
        (p.packet_id, p.flow_name, p.route, p.size_flits, p.created_cycle)
        for p in packets
    ]


class TestValidateTrace:
    def test_canonicalization_sorts_and_merges(self, small_mesh_design):
        flow = small_mesh_design.traffic.flows[0].name
        other = small_mesh_design.traffic.flows[1].name
        document = {
            "cycles": 10,
            "events": [
                {"cycle": 5, "flow": other},
                {"cycle": 2, "flow": flow, "packets": 1},
                {"cycle": 2, "flow": flow, "packets": 2},
            ],
        }
        canonical = validate_trace(document)
        assert canonical["format_version"] == TRACE_FORMAT_VERSION
        assert canonical["events"] == [
            {"cycle": 2, "flow": flow, "packets": 3},
            {"cycle": 5, "flow": other, "packets": 1},
        ]
        # Any permutation of the same events is the same trace.
        reversed_doc = dict(document)
        reversed_doc["events"] = list(reversed(document["events"]))
        assert validate_trace(reversed_doc) == canonical

    @pytest.mark.parametrize(
        "document, match",
        [
            ({"cycles": 0, "events": []}, "positive integer"),
            ({"cycles": 5, "events": [{"cycle": 7, "flow": "f0"}]}, "horizon"),
            ({"cycles": 5, "events": [{"cycle": -1, "flow": "f0"}]}, "non-negative"),
            ({"cycles": 5, "events": [{"cycle": 1, "flow": ""}]}, "non-empty"),
            ({"cycles": 5, "events": [{"cycle": 1, "flow": "f0", "packets": 0}]}, "positive"),
            ({"cycles": 5, "events": [{"cycle": 1, "flow": "f0", "pkts": 1}]}, "unknown trace event field"),
            ({"cycles": 5, "events": [], "extra": 1}, "unknown trace field"),
            ({"cycles": 5, "events": [], "format_version": 99}, "unsupported trace format"),
            ("not a mapping", "must be a mapping"),
        ],
    )
    def test_malformed_traces_rejected(self, document, match):
        with pytest.raises(SimulationError, match=match):
            validate_trace(document)

    def test_unknown_flow_rejected_up_front(self, small_mesh_design):
        with pytest.raises(SimulationError, match="not an eligible flow"):
            TraceTrafficGenerator(
                small_mesh_design,
                trace={"cycles": 5, "events": [{"cycle": 1, "flow": "phantom"}]},
            )


class TestSyntheticTraceEquivalence:
    def test_replay_matches_flows_scenario_packet_for_packet(self, small_mesh_design):
        flows = FlowTrafficGenerator(small_mesh_design, injection_scale=0.8, seed=5)
        trace = TraceTrafficGenerator(
            small_mesh_design, injection_scale=0.8, seed=5, trace_cycles=250
        )
        for cycle in range(250):
            assert _packet_tuples(flows.generate(cycle)) == _packet_tuples(
                trace.generate(cycle)
            )

    def test_simulation_stats_identical_to_flows(self, small_mesh_design):
        flows = measure_load_point(
            small_mesh_design, injection_scale=0.5, max_cycles=400, seed=3
        )
        trace = measure_load_point(
            small_mesh_design,
            injection_scale=0.5,
            max_cycles=400,
            seed=3,
            traffic_scenario="trace",
            scenario_params={"trace_cycles": 400},
        )
        assert trace["packets_delivered"] == flows["packets_delivered"]
        assert trace["average_latency"] == flows["average_latency"]
        assert trace["deadlocked"] == flows["deadlocked"]

    def test_synthetic_trace_is_seed_deterministic(self, small_mesh_design):
        one = synthesize_trace(small_mesh_design, cycles=100, seed=9)
        two = synthesize_trace(small_mesh_design, cycles=100, seed=9)
        other = synthesize_trace(small_mesh_design, cycles=100, seed=10)
        assert one == two
        assert one != other


class TestExplicitTraces:
    def test_round_trip_through_file(self, small_mesh_design, tmp_path):
        document = synthesize_trace(small_mesh_design, cycles=60, seed=2)
        path = tmp_path / "demand.json"
        save_trace(document, path)
        loaded = load_trace(path)
        assert loaded == validate_trace(document)
        generator = TraceTrafficGenerator(small_mesh_design, trace=str(path))
        assert generator.trace == loaded

    def test_injection_scale_scales_event_counts(self, small_mesh_design):
        flow = small_mesh_design.traffic.flows[0].name
        document = {
            "cycles": 4,
            "events": [{"cycle": 1, "flow": flow, "packets": 10}],
        }
        doubled = TraceTrafficGenerator(
            small_mesh_design, trace=document, injection_scale=2.0
        )
        packets = [p for c in range(4) for p in doubled.generate(c)]
        assert len(packets) == 20

    def test_invalid_json_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(SimulationError, match="invalid trace JSON"):
            load_trace(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(SimulationError, match="could not read"):
            load_trace(tmp_path / "absent.json")

    def test_saved_trace_is_canonical_json(self, small_mesh_design, tmp_path):
        flow = small_mesh_design.traffic.flows[0].name
        path = save_trace(
            {"cycles": 3, "events": [{"cycle": 1, "flow": flow}]},
            tmp_path / "t.json",
        )
        on_disk = json.loads(path.read_text())
        assert on_disk["format_version"] == TRACE_FORMAT_VERSION


class TestScenarioRegistration:
    def test_trace_scenario_registered(self):
        assert traffic_scenarios.get("trace") is TraceTrafficGenerator

    def test_offered_load_reflects_trace(self, small_mesh_design):
        generator = TraceTrafficGenerator(
            small_mesh_design, injection_scale=0.5, seed=0, trace_cycles=200
        )
        assert generator.offered_flits_per_cycle > 0

    def test_cross_check_engines_agree_under_trace(self, small_mesh_design):
        metrics = measure_load_point(
            small_mesh_design,
            injection_scale=0.5,
            max_cycles=300,
            seed=1,
            traffic_scenario="trace",
            scenario_params={"trace_cycles": 300},
            cross_check=True,
        )
        assert metrics["packets_delivered"] >= 0
